//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses — `SmallRng` / `StdRng` seeded
//! via [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over half-open
//! integer and float ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`] — on top of a fixed xoshiro256**
//! generator. Deterministic for a given seed, which is all the workload
//! generators and tests require; no cryptographic claims.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** — the algorithm behind the real crate's `SmallRng` on
/// 64-bit platforms.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

/// Named generators.
pub mod rngs {
    /// The small, fast generator (xoshiro256**).
    pub type SmallRng = super::Xoshiro256;
    /// The default generator; same algorithm in this stand-in.
    pub type StdRng = super::Xoshiro256;
}

/// Ranges that can sample a `T`. Generic over the sampled type (like the
/// real crate's `SampleRange<T>`) so integer-literal inference flows from
/// the use site into the range — `Value::Int(rng.gen_range(0..5))` must
/// infer `Range<i64>`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling; the tiny modulo bias of
                // plain `% span` would be harmless here, but this is as
                // cheap and exact enough for test workloads.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, available on every generator.
pub trait Rng: RngCore {
    /// A value drawn uniformly from a half-open (or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Slice helpers.
pub mod seq {
    use super::Rng;

    /// In-place random reordering.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }
}
