//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, throughput
//! annotation, and the `criterion_group!` / `criterion_main!` macros — as
//! a plain wall-clock runner. No statistical analysis, HTML reports, or
//! baseline comparison; each benchmark prints its mean time per iteration
//! (and throughput when configured). Good enough to keep `cargo bench`
//! compiling and producing comparable numbers without crates.io access.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle passed to each benchmark function.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Work-per-iteration annotation for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's display identity: function name plus parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for measurement.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Wall-clock budget for warm-up.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Runs a benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group. (Reports print as benchmarks run.)
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: let the closure run until the warm-up budget expires,
        // growing the iteration count to estimate a per-sample size.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut bencher);
            if bencher.elapsed < Duration::from_millis(1) {
                bencher.iterations = (bencher.iterations * 2).min(1 << 20);
            }
        }

        // Measurement: collect samples within the time budget.
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            f(&mut bencher);
            total += bencher.elapsed;
            iters += bencher.iterations;
            if measure_start.elapsed() > self.measurement_time {
                break;
            }
        }

        if iters == 0 {
            println!("  {id}: no iterations recorded");
            return;
        }
        let ns_per_iter = total.as_nanos() as f64 / iters as f64;
        match self.throughput {
            Some(Throughput::Elements(n)) if ns_per_iter > 0.0 => {
                let per_sec = n as f64 * 1e9 / ns_per_iter;
                println!("  {id}: {ns_per_iter:.1} ns/iter ({per_sec:.0} elem/s)");
            }
            Some(Throughput::Bytes(n)) if ns_per_iter > 0.0 => {
                let per_sec = n as f64 * 1e9 / ns_per_iter;
                println!("  {id}: {ns_per_iter:.1} ns/iter ({per_sec:.0} B/s)");
            }
            _ => println!("  {id}: {ns_per_iter:.1} ns/iter"),
        }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the harness-chosen number of times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_reports_and_terminates() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(10));
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        group.bench_with_input(BenchmarkId::new("mul", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
    }
}
