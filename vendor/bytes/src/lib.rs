//! Offline stand-in for the `bytes` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! the handful of external dependencies are vendored as minimal,
//! API-compatible subsets. This crate provides exactly the [`Buf`] /
//! [`BufMut`] surface `sp-core` uses for wire encoding: big-endian integer
//! accessors over `&[u8]` readers and `Vec<u8>` writers. Semantics match
//! the real crate for that subset (including the panic-on-underflow
//! contract of `get_*`, which callers guard with [`Buf::remaining`]).

/// A cursor-like byte reader.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes into `dst`, advancing.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt);
    }
}

/// A growable byte writer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u16(0xBEEF);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(u64::MAX - 1);
        buf.put_i64(-42);
        buf.put_f64(1.5);
        buf.put_slice(b"xyz");
        let mut r = buf.as_slice();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), u64::MAX - 1);
        assert_eq!(r.get_i64(), -42);
        assert_eq!(r.get_f64(), 1.5);
        let mut dst = [0u8; 3];
        r.copy_to_slice(&mut dst);
        assert_eq!(&dst, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn big_endian_layout() {
        let mut buf = Vec::new();
        buf.put_u32(1);
        assert_eq!(buf, vec![0, 0, 0, 1]);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut r = &data[..];
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
    }
}
