//! String strategies from a regex subset.
//!
//! Supports the constructs the workspace's tests use: literals, escapes,
//! `.` and `\PC` (any printable char), character classes (ranges,
//! negation, escapes), groups, alternation, and the `*` `+` `?` `{m}`
//! `{m,}` `{m,n}` quantifiers. Unbounded quantifiers are capped at a
//! small repeat count, which is what generation needs.

use std::fmt;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Regex-parse failure from [`string_regex`].
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported regex: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A parsed pattern usable as a `String` strategy.
#[derive(Clone, Debug)]
pub struct RegexGeneratorStrategy {
    node: Node,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;

    fn generate(&self, rng: &mut SmallRng) -> String {
        let mut out = String::new();
        self.node.emit(rng, &mut out);
        out
    }
}

/// Parses `pattern` into a strategy that generates matching strings.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let mut parser = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
    };
    let node = parser.parse_alternation()?;
    if parser.pos != parser.chars.len() {
        return Err(Error(format!(
            "trailing input at offset {} in {pattern:?}",
            parser.pos
        )));
    }
    Ok(RegexGeneratorStrategy { node })
}

/// Cap for `*`, `+`, and `{m,}` during generation.
const UNBOUNDED_CAP: u32 = 7;

#[derive(Clone, Debug)]
enum Node {
    Literal(char),
    /// `.` or `\PC`: any printable character.
    AnyPrintable,
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
    Concat(Vec<Node>),
    Alt(Vec<Node>),
    Repeat {
        node: Box<Node>,
        min: u32,
        max: u32,
    },
}

impl Node {
    fn emit(&self, rng: &mut SmallRng, out: &mut String) {
        match self {
            Node::Literal(c) => out.push(*c),
            Node::AnyPrintable => out.push(printable(rng)),
            Node::Class { negated, ranges } => {
                out.push(class_char(rng, *negated, ranges));
            }
            Node::Concat(parts) => {
                for part in parts {
                    part.emit(rng, out);
                }
            }
            Node::Alt(options) => {
                options[rng.gen_range(0..options.len())].emit(rng, out);
            }
            Node::Repeat { node, min, max } => {
                let n = rng.gen_range(*min..=*max);
                for _ in 0..n {
                    node.emit(rng, out);
                }
            }
        }
    }
}

/// A printable character: mostly ASCII, occasionally multi-byte, so
/// generated text exercises UTF-8 handling.
fn printable(rng: &mut SmallRng) -> char {
    if rng.gen_bool(0.9) {
        char::from(rng.gen_range(0x20u8..0x7F))
    } else {
        const EXTRA: [char; 8] = ['à', 'é', 'ü', 'ß', 'λ', 'Ω', '中', '→'];
        EXTRA[rng.gen_range(0..EXTRA.len())]
    }
}

fn class_char(rng: &mut SmallRng, negated: bool, ranges: &[(char, char)]) -> char {
    let contains = |c: char| ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&c));
    if negated {
        // Rejection-sample printable chars; classes in practice exclude
        // only a few characters, so this terminates fast. The fallback
        // covers a pathological class that excludes everything we draw.
        for _ in 0..256 {
            let c = printable(rng);
            if !contains(c) {
                return c;
            }
        }
        '\u{FFFD}'
    } else {
        // Uniform over ranges then within the range: simple, and close
        // enough to uniform for test generation.
        let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
        let span = hi as u32 - lo as u32;
        for _ in 0..256 {
            if let Some(c) = char::from_u32(lo as u32 + rng.gen_range(0..=span)) {
                return c;
            }
        }
        lo
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_alternation(&mut self) -> Result<Node, Error> {
        let mut options = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.next();
            options.push(self.parse_concat()?);
        }
        Ok(if options.len() == 1 {
            options.pop().expect("non-empty")
        } else {
            Node::Alt(options)
        })
    }

    fn parse_concat(&mut self) -> Result<Node, Error> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom()?;
            parts.push(self.parse_quantifier(atom)?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Node::Concat(parts)
        })
    }

    fn parse_atom(&mut self) -> Result<Node, Error> {
        match self.next() {
            None => Err(Error("unexpected end of pattern".into())),
            Some('(') => {
                let inner = self.parse_alternation()?;
                match self.next() {
                    Some(')') => Ok(inner),
                    _ => Err(Error("unclosed group".into())),
                }
            }
            Some('[') => self.parse_class(),
            Some('.') => Ok(Node::AnyPrintable),
            Some('\\') => self.parse_escape(),
            Some(c @ ('*' | '+' | '?')) => {
                Err(Error(format!("dangling quantifier {c:?}")))
            }
            Some(c) => Ok(Node::Literal(c)),
        }
    }

    fn parse_escape(&mut self) -> Result<Node, Error> {
        match self.next() {
            None => Err(Error("dangling backslash".into())),
            // `\PC`: any printable character (proptest idiom).
            Some('P') => match self.next() {
                Some('C') => Ok(Node::AnyPrintable),
                other => Err(Error(format!("unsupported \\P{other:?}"))),
            },
            Some('d') => Ok(Node::Class {
                negated: false,
                ranges: vec![('0', '9')],
            }),
            Some('w') => Ok(Node::Class {
                negated: false,
                ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
            }),
            Some('s') => Ok(Node::Literal(' ')),
            Some('n') => Ok(Node::Literal('\n')),
            Some('t') => Ok(Node::Literal('\t')),
            // Everything else escapes to itself: \\ \[ \] \( \) \| \. \- …
            Some(c) => Ok(Node::Literal(c)),
        }
    }

    fn parse_class(&mut self) -> Result<Node, Error> {
        let negated = if self.peek() == Some('^') {
            self.next();
            true
        } else {
            false
        };
        let mut ranges: Vec<(char, char)> = Vec::new();
        loop {
            let c = match self.next() {
                None => return Err(Error("unclosed character class".into())),
                Some(']') if !ranges.is_empty() || negated => break,
                Some(']') if ranges.is_empty() => {
                    // A `]` first in a class is a literal member.
                    ']'
                }
                Some('\\') => match self.next() {
                    None => return Err(Error("dangling backslash in class".into())),
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some(e) => e,
                },
                Some(c) => c,
            };
            // `a-z` forms a range unless the `-` is last (then literal).
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.next();
                let hi = match self.next() {
                    None => return Err(Error("unclosed range in class".into())),
                    Some('\\') => self
                        .next()
                        .ok_or_else(|| Error("dangling backslash in class".into()))?,
                    Some(h) => h,
                };
                if (c as u32) > (hi as u32) {
                    return Err(Error(format!("inverted range {c}-{hi}")));
                }
                ranges.push((c, hi));
            } else {
                ranges.push((c, c));
            }
        }
        if ranges.is_empty() {
            return Err(Error("empty character class".into()));
        }
        Ok(Node::Class { negated, ranges })
    }

    fn parse_quantifier(&mut self, atom: Node) -> Result<Node, Error> {
        let (min, max) = match self.peek() {
            Some('*') => (0, UNBOUNDED_CAP),
            Some('+') => (1, 1 + UNBOUNDED_CAP),
            Some('?') => (0, 1),
            Some('{') => {
                // `{` not opening a quantifier is a literal.
                if !matches!(self.chars.get(self.pos + 1), Some(c) if c.is_ascii_digit()) {
                    return Ok(atom);
                }
                self.next();
                let min = self.parse_number()?;
                let max = match self.next() {
                    Some('}') => min,
                    Some(',') => {
                        let max = if self.peek() == Some('}') {
                            min + UNBOUNDED_CAP
                        } else {
                            self.parse_number()?
                        };
                        if self.next() != Some('}') {
                            return Err(Error("unclosed quantifier".into()));
                        }
                        max
                    }
                    _ => return Err(Error("malformed quantifier".into())),
                };
                if min > max {
                    return Err(Error(format!("inverted quantifier {{{min},{max}}}")));
                }
                return Ok(Node::Repeat {
                    node: Box::new(atom),
                    min,
                    max,
                });
            }
            _ => return Ok(atom),
        };
        self.next();
        Ok(Node::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    fn parse_number(&mut self) -> Result<u32, Error> {
        let mut value: u32 = 0;
        let mut digits = 0;
        while let Some(c) = self.peek() {
            let Some(d) = c.to_digit(10) else { break };
            self.next();
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(d))
                .ok_or_else(|| Error("quantifier overflow".into()))?;
            digits += 1;
        }
        if digits == 0 {
            return Err(Error("expected number in quantifier".into()));
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn samples(pattern: &str, n: usize) -> Vec<String> {
        let strat = string_regex(pattern).expect(pattern);
        let mut rng = SmallRng::seed_from_u64(0xDE5);
        (0..n).map(|_| strat.generate(&mut rng)).collect()
    }

    #[test]
    fn bounded_repeat_respects_counts() {
        for s in samples("[abc01]{0,8}", 300) {
            assert!(s.chars().count() <= 8);
            assert!(s.chars().all(|c| "abc01".contains(c)));
        }
    }

    #[test]
    fn printable_class_stays_printable() {
        for s in samples("\\PC{0,120}", 100) {
            assert!(s.chars().count() <= 120);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn negated_class_excludes_members() {
        for s in samples("[^'\\\\]{0,20}", 300) {
            assert!(!s.contains('\'') && !s.contains('\\'), "{s:?}");
        }
    }

    #[test]
    fn alternation_and_groups() {
        let pattern = r"([abc01.]|\[abc\]|<[0-9]-[0-9][0-9]>|\|)*";
        for s in samples(pattern, 200) {
            // Every emitted fragment is one of the four alternatives;
            // spot-check the structured ones.
            if s.contains('<') {
                assert!(s.contains('>'));
            }
            if s.contains("[") {
                assert!(s.contains("[abc]"), "{s:?}");
            }
        }
    }

    #[test]
    fn class_with_unicode_and_trailing_dash() {
        for s in samples("[a-zA-Z0-9 àéü]{0,16}", 200) {
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' ' || "àéü".contains(c)));
        }
        for s in samples("[a-zA-Z0-9_*+.()\\[\\]{}|<>\\\\-]{0,12}", 200) {
            assert!(s.chars().count() <= 12);
        }
    }

    #[test]
    fn exact_count_quantifier() {
        for s in samples("[0-9]{3}", 50) {
            assert_eq!(s.len(), 3);
            assert!(s.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn bad_patterns_error() {
        assert!(string_regex("[").is_err());
        assert!(string_regex("(abc").is_err());
        assert!(string_regex("*").is_err());
        assert!(string_regex("a{2,1}").is_err());
    }
}
