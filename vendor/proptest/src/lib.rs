//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! reimplements the proptest API subset the workspace's property tests
//! use: the [`strategy::Strategy`] trait (`prop_map`, `boxed`,
//! `prop_recursive`), range / tuple / `Just` / regex-string strategies,
//! `prop_oneof!`, `proptest::collection::vec`, `proptest::option::of`,
//! `proptest::bool::ANY`, [`string::string_regex`], and the `proptest!` /
//! `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **generation-only** — no shrinking; a failing case reports its case
//!   number and the deterministic run seed instead of a minimized input;
//! * **deterministic** — every run draws from a seed derived from the
//!   configured case count, so failures reproduce exactly;
//! * regression files (`*.proptest-regressions`) are ignored.

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines property tests (block form) or runs one inline (closure form).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($cfg:expr, |($($args:tt)*)| $body:block) => {
        $crate::__proptest_case!{ @cfg ($cfg) @args [] $($args)* ; $body }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case!{ @cfg ($cfg) @args [] $($args)* ; $body }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: parses the argument list into
/// (pattern, strategy) pairs, then emits the case loop.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    (@cfg ($cfg:expr) @args [$((($p:pat) ($s:expr)))*] ; $body:block) => {{
        let __config: $crate::test_runner::ProptestConfig = $cfg;
        let __strategy = ($( $s, )*);
        let mut __rng = $crate::test_runner::fresh_rng(&__config);
        for __case in 0..__config.cases {
            let __values =
                $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
            let __outcome = ::std::panic::catch_unwind(
                ::core::panic::AssertUnwindSafe(move || {
                    let ($($p,)*) = __values;
                    $body
                }),
            );
            if let Err(__payload) = __outcome {
                eprintln!(
                    "proptest: case {}/{} failed (deterministic seed {:#x})",
                    __case + 1,
                    __config.cases,
                    __config.seed(),
                );
                ::std::panic::resume_unwind(__payload);
            }
        }
    }};
    (@cfg ($cfg:expr) @args [$($acc:tt)*] $p:ident: $t:ty, $($rest:tt)*) => {
        $crate::__proptest_case!{
            @cfg ($cfg)
            @args [$($acc)* (($p) ($crate::arbitrary::any::<$t>()))]
            $($rest)*
        }
    };
    (@cfg ($cfg:expr) @args [$($acc:tt)*] $p:ident: $t:ty; $body:block) => {
        $crate::__proptest_case!{
            @cfg ($cfg)
            @args [$($acc)* (($p) ($crate::arbitrary::any::<$t>()))]
            ; $body
        }
    };
    (@cfg ($cfg:expr) @args [$($acc:tt)*] $p:pat in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_case!{ @cfg ($cfg) @args [$($acc)* (($p) ($s))] $($rest)* }
    };
    (@cfg ($cfg:expr) @args [$($acc:tt)*] $p:pat in $s:expr; $body:block) => {
        $crate::__proptest_case!{ @cfg ($cfg) @args [$($acc)* (($p) ($s))] ; $body }
    };
}
