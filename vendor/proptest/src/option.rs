//! `Option` strategies.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// The strategy returned by [`of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
        // Matches the real crate's default 1-in-4 None weight.
        if rng.gen_bool(0.25) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `Some` of `inner` three times out of four, otherwise `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
