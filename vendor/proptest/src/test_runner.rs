//! Run configuration and the deterministic RNG behind `proptest!`.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for a `proptest!` run. Only `cases` is honoured by this
/// stand-in; the remaining knobs of the real crate are absent.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The deterministic seed this run draws from. Derived from the case
    /// count so a given test binary reproduces byte-for-byte.
    pub fn seed(&self) -> u64 {
        0x5EED_CAFE_0000_0000 ^ u64::from(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator positioned at the start of the configured run.
pub fn fresh_rng(config: &ProptestConfig) -> SmallRng {
    SmallRng::seed_from_u64(config.seed())
}
