//! `any::<T>()` — canonical strategies for primitive types.

use core::marker::PhantomData;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// One arbitrary value. Implementations bias occasionally toward edge
    /// values (zero, extremes) since uniform draws almost never hit them.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> AnyStrategy<T> {
    /// Const-constructible so modules can expose `ANY` constants.
    pub const fn new() -> Self {
        Self(PhantomData)
    }
}

impl<T> Default for AnyStrategy<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy::new()
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                // 1-in-8 draws pick an edge value.
                if rng.gen_bool(0.125) {
                    let edges = [<$t>::MIN, <$t>::MAX, 0, 1];
                    edges[rng.gen_range(0..edges.len())]
                } else {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen_bool(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ints_hit_edges_eventually() {
        let mut rng = SmallRng::seed_from_u64(9);
        let strat = any::<u64>();
        let mut saw_extreme = false;
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            saw_extreme |= v == u64::MAX || v == 0;
        }
        assert!(saw_extreme);
    }
}
