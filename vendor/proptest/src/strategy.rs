//! The [`Strategy`] trait and the core combinators.

use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{Rng, SampleRange};

/// A recipe for generating values of one type.
///
/// The real crate separates strategies from value trees to support
/// shrinking; this stand-in generates directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursive strategy: `self` generates leaves and `recurse`
    /// wraps an inner strategy one nesting level deeper, applied up to
    /// `depth` times. The `_desired_size` / `_expected_branch_size` hints
    /// of the real crate are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth.max(1) {
            let deeper = recurse(strat).boxed();
            // 1/3 leaf keeps expected size finite at every level.
            strat = OneOf::new(vec![leaf.clone(), deeper.clone(), deeper]).boxed();
        }
        strat
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice among same-typed strategies; built by `prop_oneof!`.
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Wraps a non-empty set of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    T: Clone,
    core::ops::Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    T: Clone,
    core::ops::RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// A string literal is a regex-subset strategy, as in the real crate.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut SmallRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn map_and_oneof_compose() {
        let mut rng = SmallRng::seed_from_u64(1);
        let strat = crate::prop_oneof![
            (0u32..10).prop_map(|n| n * 2),
            Just(99u32),
        ];
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v == 99 || (v < 20 && v % 2 == 0), "{v}");
        }
    }

    #[test]
    fn full_u64_range_generates() {
        let mut rng = SmallRng::seed_from_u64(2);
        let strat = 0u64..u64::MAX;
        for _ in 0..100 {
            let _ = strat.generate(&mut rng);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn size(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(size).sum::<usize>(),
            }
        }
        let strat = (0u8..255)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 3, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            assert!(size(&strat.generate(&mut rng)) < 1000);
        }
    }
}
