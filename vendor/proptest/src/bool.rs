//! Boolean strategies.

use crate::arbitrary::AnyStrategy;

/// A fair coin, as `prop::bool::ANY`.
pub const ANY: AnyStrategy<bool> = AnyStrategy::new();
