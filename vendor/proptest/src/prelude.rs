//! The names tests import with `use proptest::prelude::*`.

pub use crate::arbitrary::any;
pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

/// Module-style access (`prop::bool::ANY`, `prop::collection::vec`, …).
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::option;
    pub use crate::string;
}
