//! Collection strategies.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::strategy::Strategy;

/// The strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = if self.size.start < self.size.end {
            rng.gen_range(self.size.clone())
        } else {
            self.size.start
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_respect_range() {
        let mut rng = SmallRng::seed_from_u64(5);
        let strat = vec(0u8..10, 2..6);
        for _ in 0..300 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
