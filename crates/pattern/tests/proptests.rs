//! Property tests: the compiled VM must agree with the naive AST
//! interpreter on randomly generated patterns and inputs, and the fast-path
//! matchers must agree with the VM.

use proptest::prelude::*;
use sp_pattern::ast::{naive_match, Ast, ClassSet};
use sp_pattern::vm::Program;
use sp_pattern::Pattern;

/// Random ASTs over a tiny alphabet so matches actually occur.
fn arb_ast(depth: u32) -> BoxedStrategy<Ast> {
    let leaf = prop_oneof![
        Just(Ast::Empty),
        prop_oneof![Just('a'), Just('b'), Just('c'), Just('0'), Just('1')].prop_map(Ast::Char),
        Just(Ast::AnyChar),
        (0u64..30, 0u64..30).prop_map(|(x, y)| Ast::NumRange(x.min(y), x.max(y))),
        prop_oneof![
            Just(ClassSet { ranges: vec![('a', 'b')], negated: false }),
            Just(ClassSet { ranges: vec![('a', 'b')], negated: true }),
            Just(ClassSet { ranges: vec![('0', '9')], negated: false }),
        ]
        .prop_map(Ast::Class),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Ast::Concat),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Ast::Alt),
            (inner, 0u32..3, prop::option::of(0u32..4)).prop_map(|(node, min, max)| {
                let max = max.map(|m| m.max(min));
                Ast::Repeat { node: Box::new(node), min, max }
            }),
        ]
    })
    .boxed()
}

fn arb_input() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[abc01]{0,8}").expect("valid generator regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The compiled VM agrees with the reference interpreter.
    #[test]
    fn vm_agrees_with_naive(ast in arb_ast(3), input in arb_input()) {
        let prog = Program::compile(&ast);
        prop_assert_eq!(prog.matches(&input), naive_match(&ast, &input));
    }

    /// Full `Pattern` (with fast paths) agrees with the raw VM for parseable
    /// pattern sources.
    #[test]
    fn fast_paths_agree_with_vm(
        src in proptest::string::string_regex(
            r"([abc01.]|\[abc\]|<[0-9]-[0-9][0-9]>|\|)*"
        ).expect("valid generator regex"),
        input in arb_input(),
    ) {
        if let Ok(pattern) = Pattern::compile(&src) {
            let ast = sp_pattern::parser::parse(&src).expect("compile implies parse");
            let prog = Program::compile(&ast);
            prop_assert_eq!(pattern.matches(&input), prog.matches(&input),
                "fast path diverged for pattern {:?}", src);
        }
    }

    /// Literal patterns match exactly their own text.
    #[test]
    fn literal_roundtrip(name in "[a-zA-Z0-9_*+.()\\[\\]{}|<>\\\\-]{0,12}") {
        let p = Pattern::literal(&name);
        prop_assert!(p.matches(&name));
        let recompiled = Pattern::compile(p.source()).expect("escaped literal compiles");
        prop_assert!(recompiled.matches(&name));
    }

    /// Numeric-range patterns agree with plain integer comparison.
    #[test]
    fn numeric_range_semantics(lo in 0u64..500, span in 0u64..500, v in 0u64..1500) {
        let hi = lo + span;
        let p = Pattern::numeric_range(lo, hi);
        prop_assert_eq!(p.matches(&v.to_string()), (lo..=hi).contains(&v));
    }
}

#[test]
fn paper_examples() {
    // Stream-level: only the HeartRate stream.
    let p = Pattern::compile("HeartRate").unwrap();
    assert!(p.matches("HeartRate"));
    assert!(!p.matches("BodyTemperature"));

    // Tuple-level: patients with ids between 120 and 133, any stream.
    let p = Pattern::compile("<120-133>").unwrap();
    assert!(p.matches("120"));
    assert!(p.matches("133"));
    assert!(!p.matches("134"));

    // Attribute-level: the temperature and the heart beat.
    let p = Pattern::compile("Temperature|Beats_per_min").unwrap();
    assert!(p.matches("Temperature"));
    assert!(p.matches("Beats_per_min"));
    assert!(!p.matches("Patient_id"));

    // Streams s1, s2 (but not s3).
    let p = Pattern::compile("s1|s2").unwrap();
    assert!(p.matches("s1") && p.matches("s2") && !p.matches("s3"));
}
