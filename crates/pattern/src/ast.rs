//! Abstract syntax tree for DDP/SRP pattern expressions.
//!
//! The pattern language is a small, anchored regular-expression dialect used
//! inside security punctuations to describe sets of object names (stream
//! names, tuple identifiers, attribute names) and role names. It supports:
//!
//! * literals (`HeartRate`),
//! * the any-character atom `.`,
//! * character classes `[a-z0-9_]` and negated classes `[^x]`,
//! * grouping `( ... )` and alternation `a|b|c`,
//! * the quantifiers `*`, `+`, `?` and bounded repetition `{m,n}`,
//! * a numeric-range atom `<120-133>` matching any decimal integer whose
//!   value falls in the inclusive range — the paper's "patients with ids
//!   between 120 and 133" policy compiles to exactly this atom,
//! * glob-friendly relaxation: a `*` with no preceding atom (e.g. the whole
//!   pattern `*`, or `foo|*`) is read as `.*`.
//!
//! Patterns always match the *entire* input (they are implicitly anchored on
//! both ends), because an sp that says `HeartRate` must not accidentally
//! authorize `HeartRateAudit`.

/// A node of the parsed pattern expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string only.
    Empty,
    /// Matches exactly one occurrence of the given character.
    Char(char),
    /// Matches any single character (`.`).
    AnyChar,
    /// A character class: a set of inclusive ranges, possibly negated.
    Class(ClassSet),
    /// `<lo-hi>`: any decimal integer string with value in `lo..=hi`.
    ///
    /// Leading zeros are accepted (`007` matches `<1-10>`), because tuple
    /// identifiers are frequently zero-padded by data providers.
    NumRange(u64, u64),
    /// Concatenation of sub-patterns, in order.
    Concat(Vec<Ast>),
    /// Alternation: matches if any branch matches.
    Alt(Vec<Ast>),
    /// Repetition of the inner pattern between `min` and `max` times
    /// (inclusive); `max == None` means unbounded.
    Repeat {
        /// The repeated sub-pattern.
        node: Box<Ast>,
        /// Minimum number of repetitions.
        min: u32,
        /// Maximum number of repetitions; `None` = unbounded.
        max: Option<u32>,
    },
}

/// A set of inclusive character ranges forming a character class.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClassSet {
    /// Sorted, non-overlapping inclusive ranges.
    pub ranges: Vec<(char, char)>,
    /// If true the class matches any character *not* in `ranges`.
    pub negated: bool,
}

impl ClassSet {
    /// Returns true if `c` is matched by this class.
    #[must_use]
    pub fn contains(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&c));
        inside != self.negated
    }

    /// Adds a range, keeping the internal list sorted and coalesced.
    pub fn push(&mut self, lo: char, hi: char) {
        debug_assert!(lo <= hi, "class range must be ordered");
        self.ranges.push((lo, hi));
        self.normalize();
    }

    fn normalize(&mut self) {
        self.ranges.sort_unstable();
        let mut merged: Vec<(char, char)> = Vec::with_capacity(self.ranges.len());
        for &(lo, hi) in &self.ranges {
            match merged.last_mut() {
                Some(last) if lo as u32 <= last.1 as u32 + 1 => {
                    if hi > last.1 {
                        last.1 = hi;
                    }
                }
                _ => merged.push((lo, hi)),
            }
        }
        self.ranges = merged;
    }
}

impl Ast {
    /// True if this AST can match the empty string.
    #[must_use]
    pub fn matches_empty(&self) -> bool {
        match self {
            Ast::Empty => true,
            Ast::Char(_) | Ast::AnyChar | Ast::Class(_) | Ast::NumRange(..) => false,
            Ast::Concat(parts) => parts.iter().all(Ast::matches_empty),
            Ast::Alt(branches) => branches.iter().any(Ast::matches_empty),
            Ast::Repeat { node, min, .. } => *min == 0 || node.matches_empty(),
        }
    }

    /// If the whole pattern is a plain literal, returns it.
    #[must_use]
    pub fn as_literal(&self) -> Option<String> {
        fn collect(ast: &Ast, out: &mut String) -> bool {
            match ast {
                Ast::Empty => true,
                Ast::Char(c) => {
                    out.push(*c);
                    true
                }
                Ast::Concat(parts) => parts.iter().all(|p| collect(p, out)),
                _ => false,
            }
        }
        let mut s = String::new();
        collect(self, &mut s).then_some(s)
    }

    /// True if the pattern is `.*` (matches every input).
    #[must_use]
    pub fn is_match_all(&self) -> bool {
        match self {
            Ast::Repeat { node, min: 0, max: None } => matches!(**node, Ast::AnyChar),
            Ast::Concat(parts) => !parts.is_empty() && parts.iter().all(Ast::is_match_all),
            Ast::Alt(branches) => branches.iter().any(Ast::is_match_all),
            _ => false,
        }
    }
}

/// A reference "obviously correct" interpreter used by the test-suite to
/// cross-check the compiled VM. It is exponential in the worst case and is
/// **not** used on the query path.
#[must_use]
pub fn naive_match(ast: &Ast, input: &str) -> bool {
    let chars: Vec<char> = input.chars().collect();
    // Returns every suffix position reachable after matching `ast` at `pos`.
    fn run(ast: &Ast, chars: &[char], pos: usize) -> Vec<usize> {
        match ast {
            Ast::Empty => vec![pos],
            Ast::Char(c) => {
                if chars.get(pos) == Some(c) {
                    vec![pos + 1]
                } else {
                    vec![]
                }
            }
            Ast::AnyChar => {
                if pos < chars.len() {
                    vec![pos + 1]
                } else {
                    vec![]
                }
            }
            Ast::Class(set) => match chars.get(pos) {
                Some(&c) if set.contains(c) => vec![pos + 1],
                _ => vec![],
            },
            Ast::NumRange(lo, hi) => {
                let mut out = Vec::new();
                let mut end = pos;
                while end < chars.len() && chars[end].is_ascii_digit() {
                    end += 1;
                    let text: String = chars[pos..end].iter().collect();
                    // Values longer than u64 can never be in range.
                    if let Ok(v) = text.parse::<u64>() {
                        if (*lo..=*hi).contains(&v) {
                            out.push(end);
                        }
                    }
                }
                out
            }
            Ast::Concat(parts) => {
                let mut positions = vec![pos];
                for part in parts {
                    let mut next = Vec::new();
                    for &p in &positions {
                        next.extend(run(part, chars, p));
                    }
                    next.sort_unstable();
                    next.dedup();
                    positions = next;
                    if positions.is_empty() {
                        break;
                    }
                }
                positions
            }
            Ast::Alt(branches) => {
                let mut out = Vec::new();
                for b in branches {
                    out.extend(run(b, chars, pos));
                }
                out.sort_unstable();
                out.dedup();
                out
            }
            Ast::Repeat { node, min, max } => {
                // Iterate the repetition count explicitly. Positions can only
                // take `len + 1` distinct values, so once the count exceeds
                // `min + len + 1` no new (count >= min) position can appear;
                // this caps zero-width inner patterns.
                let cap = max.unwrap_or(min + chars.len() as u32 + 1);
                let mut out = Vec::new();
                if *min == 0 {
                    out.push(pos);
                }
                let mut frontier = vec![pos];
                let mut count = 0u32;
                while count < cap && !frontier.is_empty() {
                    let mut next = Vec::new();
                    for &p in &frontier {
                        next.extend(run(node, chars, p));
                    }
                    next.sort_unstable();
                    next.dedup();
                    count += 1;
                    if count >= *min {
                        out.extend(next.iter().copied());
                    }
                    if next == frontier && count >= *min {
                        break;
                    }
                    frontier = next;
                }
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }
    run(ast, &chars, 0).contains(&chars.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_contains_and_negation() {
        let mut set = ClassSet::default();
        set.push('a', 'f');
        set.push('0', '9');
        assert!(set.contains('c'));
        assert!(set.contains('0'));
        assert!(!set.contains('z'));
        let neg = ClassSet { negated: true, ..set };
        assert!(!neg.contains('c'));
        assert!(neg.contains('z'));
    }

    #[test]
    fn class_ranges_coalesce() {
        let mut set = ClassSet::default();
        set.push('a', 'd');
        set.push('e', 'g');
        set.push('x', 'z');
        assert_eq!(set.ranges, vec![('a', 'g'), ('x', 'z')]);
    }

    #[test]
    fn literal_extraction() {
        let ast = Ast::Concat(vec![Ast::Char('h'), Ast::Char('i')]);
        assert_eq!(ast.as_literal().as_deref(), Some("hi"));
        let ast = Ast::Concat(vec![Ast::Char('h'), Ast::AnyChar]);
        assert_eq!(ast.as_literal(), None);
    }

    #[test]
    fn match_all_detection() {
        let star = Ast::Repeat { node: Box::new(Ast::AnyChar), min: 0, max: None };
        assert!(star.is_match_all());
        assert!(Ast::Concat(vec![star.clone()]).is_match_all());
        assert!(!Ast::Char('a').is_match_all());
    }

    #[test]
    fn naive_numeric_range() {
        let ast = Ast::NumRange(120, 133);
        assert!(naive_match(&ast, "120"));
        assert!(naive_match(&ast, "133"));
        assert!(naive_match(&ast, "0125"));
        assert!(!naive_match(&ast, "134"));
        assert!(!naive_match(&ast, "119"));
        assert!(!naive_match(&ast, "12a"));
        assert!(!naive_match(&ast, ""));
    }

    #[test]
    fn naive_repeat_zero_width_terminates() {
        // (a?)* on "aaa" must terminate and match.
        let ast = Ast::Repeat {
            node: Box::new(Ast::Repeat { node: Box::new(Ast::Char('a')), min: 0, max: Some(1) }),
            min: 0,
            max: None,
        };
        assert!(naive_match(&ast, "aaa"));
        assert!(naive_match(&ast, ""));
    }
}
