//! Recursive-descent parser for the pattern dialect described in [`crate::ast`].

use crate::ast::{Ast, ClassSet};
use crate::PatternError;

/// Parses a pattern expression into an [`Ast`].
///
/// # Errors
///
/// Returns a [`PatternError`] describing the first syntax problem found.
pub fn parse(src: &str) -> Result<Ast, PatternError> {
    let mut p = Parser { chars: src.chars().collect(), pos: 0, src };
    let ast = p.alternation()?;
    if p.pos != p.chars.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(ast)
}

struct Parser<'s> {
    chars: Vec<char>,
    pos: usize,
    src: &'s str,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> PatternError {
        PatternError { pattern: self.src.to_owned(), offset: self.pos, message: msg.to_owned() }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, want: char) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// alternation := concat ('|' concat)*
    fn alternation(&mut self) -> Result<Ast, PatternError> {
        let mut branches = vec![self.concat()?];
        while self.eat('|') {
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alt(branches)
        })
    }

    /// concat := quantified*
    fn concat(&mut self) -> Result<Ast, PatternError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.quantified()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    /// quantified := atom ('*' | '+' | '?' | '{m,n}')*
    fn quantified(&mut self) -> Result<Ast, PatternError> {
        // Glob-friendly relaxation: a `*` with no preceding atom is treated
        // as `.*` (the paper writes bare `*` for "all objects").
        let mut node = if self.peek() == Some('*') {
            self.bump();
            Ast::Repeat { node: Box::new(Ast::AnyChar), min: 0, max: None }
        } else {
            self.atom()?
        };
        loop {
            match self.peek() {
                Some('*') => {
                    self.bump();
                    node = Ast::Repeat { node: Box::new(node), min: 0, max: None };
                }
                Some('+') => {
                    self.bump();
                    node = Ast::Repeat { node: Box::new(node), min: 1, max: None };
                }
                Some('?') => {
                    self.bump();
                    node = Ast::Repeat { node: Box::new(node), min: 0, max: Some(1) };
                }
                Some('{') => {
                    self.bump();
                    let (min, max) = self.bounds()?;
                    if let Some(m) = max {
                        if m < min {
                            return Err(self.err("repetition bounds out of order"));
                        }
                    }
                    node = Ast::Repeat { node: Box::new(node), min, max };
                }
                _ => break,
            }
        }
        Ok(node)
    }

    /// bounds := int (',' int?)? '}'
    fn bounds(&mut self) -> Result<(u32, Option<u32>), PatternError> {
        let min = self.integer()? as u32;
        let max = if self.eat(',') {
            if self.peek() == Some('}') {
                None
            } else {
                Some(self.integer()? as u32)
            }
        } else {
            Some(min)
        };
        if !self.eat('}') {
            return Err(self.err("expected '}' to close repetition bounds"));
        }
        Ok((min, max))
    }

    fn integer(&mut self) -> Result<u64, PatternError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected a decimal integer"));
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse().map_err(|_| self.err("integer too large"))
    }

    /// atom := '(' alternation ')' | '[' class ']' | '<' range '>' | '.' | escaped | literal char
    fn atom(&mut self) -> Result<Ast, PatternError> {
        match self.peek() {
            None => Err(self.err("expected an atom, found end of pattern")),
            Some('(') => {
                self.bump();
                let inner = self.alternation()?;
                if !self.eat(')') {
                    return Err(self.err("unclosed group: expected ')'"));
                }
                Ok(inner)
            }
            Some('[') => {
                self.bump();
                self.class()
            }
            Some('<') => {
                self.bump();
                let lo = self.integer()?;
                if !self.eat('-') {
                    return Err(self.err("expected '-' in numeric range"));
                }
                let hi = self.integer()?;
                if !self.eat('>') {
                    return Err(self.err("unclosed numeric range: expected '>'"));
                }
                if hi < lo {
                    return Err(self.err("numeric range bounds out of order"));
                }
                Ok(Ast::NumRange(lo, hi))
            }
            Some('.') => {
                self.bump();
                Ok(Ast::AnyChar)
            }
            Some('\\') => {
                self.bump();
                match self.bump() {
                    Some('d') => Ok(Ast::Class(digit_class(false))),
                    Some('D') => Ok(Ast::Class(digit_class(true))),
                    Some('w') => Ok(Ast::Class(word_class(false))),
                    Some('W') => Ok(Ast::Class(word_class(true))),
                    Some('s') => Ok(Ast::Class(space_class(false))),
                    Some('S') => Ok(Ast::Class(space_class(true))),
                    Some(c) => Ok(Ast::Char(c)),
                    None => Err(self.err("dangling escape at end of pattern")),
                }
            }
            Some(c) if "*+?{}".contains(c) => Err(self.err("quantifier with nothing to repeat")),
            Some(c) if ")]>".contains(c) => Err(self.err("unbalanced closing delimiter")),
            Some(c) => {
                self.bump();
                Ok(Ast::Char(c))
            }
        }
    }

    /// class := '^'? (char | char '-' char)+ ']'
    fn class(&mut self) -> Result<Ast, PatternError> {
        let mut set = ClassSet { negated: self.eat('^'), ..ClassSet::default() };
        let mut any = false;
        loop {
            match self.peek() {
                None => return Err(self.err("unclosed character class: expected ']'")),
                Some(']') if any => {
                    self.bump();
                    return Ok(Ast::Class(set));
                }
                Some(']') => return Err(self.err("empty character class")),
                Some(_) => {
                    let lo = self.class_char()?;
                    if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                        self.bump();
                        let hi = self.class_char()?;
                        if hi < lo {
                            return Err(self.err("class range bounds out of order"));
                        }
                        set.push(lo, hi);
                    } else {
                        set.push(lo, lo);
                    }
                    any = true;
                }
            }
        }
    }

    fn class_char(&mut self) -> Result<char, PatternError> {
        match self.bump() {
            Some('\\') => {
                self.bump().ok_or_else(|| self.err("dangling escape inside character class"))
            }
            Some(c) => Ok(c),
            None => Err(self.err("unclosed character class")),
        }
    }
}

fn digit_class(negated: bool) -> ClassSet {
    ClassSet { ranges: vec![('0', '9')], negated }
}

fn word_class(negated: bool) -> ClassSet {
    ClassSet { ranges: vec![('0', '9'), ('A', 'Z'), ('_', '_'), ('a', 'z')], negated }
}

fn space_class(negated: bool) -> ClassSet {
    ClassSet { ranges: vec![('\t', '\r'), (' ', ' ')], negated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::naive_match;

    fn ok(src: &str) -> Ast {
        parse(src).unwrap_or_else(|e| panic!("parse failed for {src:?}: {e}"))
    }

    #[test]
    fn parses_literals() {
        assert_eq!(ok("abc").as_literal().as_deref(), Some("abc"));
        assert_eq!(ok("").as_literal().as_deref(), Some(""));
    }

    #[test]
    fn parses_alternation_of_literals() {
        let ast = ok("Temperature|Beats_per_min");
        assert!(naive_match(&ast, "Temperature"));
        assert!(naive_match(&ast, "Beats_per_min"));
        assert!(!naive_match(&ast, "Frequency"));
    }

    #[test]
    fn parses_bare_star_as_match_all() {
        assert!(ok("*").is_match_all());
        assert!(naive_match(&ok("*"), "anything at all"));
        assert!(naive_match(&ok("*"), ""));
    }

    #[test]
    fn parses_numeric_range() {
        let ast = ok("<120-133>");
        assert!(naive_match(&ast, "120"));
        assert!(naive_match(&ast, "133"));
        assert!(!naive_match(&ast, "134"));
    }

    #[test]
    fn rejects_reversed_numeric_range() {
        assert!(parse("<9-1>").is_err());
    }

    #[test]
    fn parses_quantifiers() {
        let ast = ok("ab*c+d?");
        assert!(naive_match(&ast, "acd"));
        assert!(naive_match(&ast, "abbbcc"));
        assert!(!naive_match(&ast, "ad"));
    }

    #[test]
    fn parses_bounded_repetition() {
        let ast = ok("a{2,3}");
        assert!(!naive_match(&ast, "a"));
        assert!(naive_match(&ast, "aa"));
        assert!(naive_match(&ast, "aaa"));
        assert!(!naive_match(&ast, "aaaa"));
        let ast = ok("b{2}");
        assert!(naive_match(&ast, "bb"));
        assert!(!naive_match(&ast, "b"));
        let ast = ok("c{2,}");
        assert!(naive_match(&ast, "cccc"));
        assert!(!naive_match(&ast, "c"));
    }

    #[test]
    fn rejects_reversed_bounds() {
        assert!(parse("a{3,2}").is_err());
    }

    #[test]
    fn parses_classes() {
        let ast = ok("[a-c1]");
        assert!(naive_match(&ast, "b"));
        assert!(naive_match(&ast, "1"));
        assert!(!naive_match(&ast, "d"));
        let ast = ok("[^a-c]");
        assert!(naive_match(&ast, "z"));
        assert!(!naive_match(&ast, "a"));
    }

    #[test]
    fn class_trailing_dash_is_literal() {
        let ast = ok("[a-]");
        assert!(naive_match(&ast, "-"));
        assert!(naive_match(&ast, "a"));
    }

    #[test]
    fn parses_escapes() {
        assert!(naive_match(&ok(r"\d+"), "42"));
        assert!(!naive_match(&ok(r"\d+"), "4x"));
        assert!(naive_match(&ok(r"\w+"), "ab_9"));
        assert!(naive_match(&ok(r"a\.b"), "a.b"));
        assert!(!naive_match(&ok(r"a\.b"), "axb"));
        assert!(naive_match(&ok(r"\*"), "*"));
    }

    #[test]
    fn parses_groups() {
        let ast = ok("(ab|cd)+e");
        assert!(naive_match(&ast, "abe"));
        assert!(naive_match(&ast, "abcdabe"));
        assert!(!naive_match(&ast, "e"));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("ab(cd").unwrap_err();
        assert!(err.to_string().contains("unclosed group"), "{err}");
        assert!(parse("a)").is_err());
        assert!(parse("[").is_err());
        assert!(parse("[]").is_err());
        assert!(parse(r"a\").is_err());
        assert!(parse("a{2").is_err());
        assert!(parse("<12>").is_err());
    }

    #[test]
    fn plus_without_atom_is_error() {
        assert!(parse("+a").is_err());
        assert!(parse("?").is_err());
    }

    #[test]
    fn star_after_star_atom() {
        // "**" = (.*)* — still match-all, must parse.
        assert!(naive_match(&ok("**"), "xy"));
    }
}
