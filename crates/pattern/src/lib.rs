//! # sp-pattern — pattern expressions for security punctuations
//!
//! Security punctuations (Nehme, Rundensteiner, Bertino; ICDE 2008) describe
//! the objects they govern — streams, tuples, attributes — and the roles they
//! authorize with *regular expressions*, so that one compact punctuation can
//! cover many objects ("patients with ids between 120 and 133", "Temperature
//! or Beats_per_min"). This crate implements that expression dialect from
//! scratch: a recursive-descent parser, a bytecode compiler, a memoized
//! backtracking VM with guaranteed one-visit-per-state behaviour, and fast
//! paths for the overwhelmingly common shapes (match-all, plain literal,
//! literal alternation, single numeric range).
//!
//! Patterns are **anchored**: they must match the entire name. See
//! [`ast`] for the full syntax.
//!
//! ```
//! use sp_pattern::Pattern;
//!
//! let p = Pattern::compile("<120-133>").unwrap();
//! assert!(p.matches("125"));
//! assert!(!p.matches("200"));
//!
//! let p = Pattern::compile("Temperature|Beats_per_min").unwrap();
//! assert!(p.matches("Temperature"));
//!
//! let all = Pattern::compile("*").unwrap();
//! assert!(all.is_match_all());
//! ```

pub mod ast;
pub mod parser;
pub mod vm;

use std::fmt;
use std::sync::Arc;

use ast::Ast;
use vm::Program;

/// An error produced while compiling a pattern expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError {
    /// The offending pattern source.
    pub pattern: String,
    /// Character offset of the error.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pattern {:?} at offset {}: {}", self.pattern, self.offset, self.message)
    }
}

impl std::error::Error for PatternError {}

/// Execution strategy selected at compile time.
#[derive(Debug, Clone)]
enum Matcher {
    /// `*` — matches everything, including the empty string.
    All,
    /// A plain literal string.
    Literal(Arc<str>),
    /// An alternation of plain literals (`a|b|c`), kept sorted for binary
    /// search.
    Literals(Arc<[Box<str>]>),
    /// A single `<lo-hi>` numeric range.
    Range(u64, u64),
    /// Anything else: run the compiled VM.
    Vm(Arc<Program>),
}

/// A compiled, immutable, cheaply-cloneable pattern.
///
/// Cloning shares the compiled program via [`Arc`], so patterns can be
/// embedded in punctuations that flow through multi-operator plans without
/// recompilation or deep copies.
#[derive(Clone)]
pub struct Pattern {
    source: Arc<str>,
    matcher: Matcher,
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Pattern").field(&self.source).finish()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

impl PartialEq for Pattern {
    fn eq(&self, other: &Self) -> bool {
        self.source == other.source
    }
}

impl Eq for Pattern {}

impl std::hash::Hash for Pattern {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.source.hash(state);
    }
}

impl Pattern {
    /// Compiles a pattern expression.
    ///
    /// # Errors
    ///
    /// Returns a [`PatternError`] if the expression is syntactically invalid.
    pub fn compile(src: &str) -> Result<Self, PatternError> {
        let ast = parser::parse(src)?;
        let matcher = select_matcher(&ast);
        Ok(Self { source: Arc::from(src), matcher })
    }

    /// A pattern that matches every name (`*`).
    #[must_use]
    pub fn match_all() -> Self {
        Self { source: Arc::from("*"), matcher: Matcher::All }
    }

    /// A pattern matching exactly the given name, with all metacharacters
    /// escaped. Never fails.
    #[must_use]
    pub fn literal(name: &str) -> Self {
        let mut escaped = String::with_capacity(name.len());
        for c in name.chars() {
            if "\\|*+?{}()[]<>.".contains(c) {
                escaped.push('\\');
            }
            escaped.push(c);
        }
        Self { source: Arc::from(escaped.as_str()), matcher: Matcher::Literal(Arc::from(name)) }
    }

    /// A pattern matching any decimal integer in `lo..=hi`. Never fails.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn numeric_range(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "numeric range bounds out of order");
        Self { source: Arc::from(format!("<{lo}-{hi}>").as_str()), matcher: Matcher::Range(lo, hi) }
    }

    /// The original pattern source text.
    #[must_use]
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Tests whether `input` is matched (full-string, anchored).
    #[must_use]
    pub fn matches(&self, input: &str) -> bool {
        match &self.matcher {
            Matcher::All => true,
            Matcher::Literal(lit) => lit.as_ref() == input,
            Matcher::Literals(lits) => {
                lits.binary_search_by(|probe| probe.as_ref().cmp(input)).is_ok()
            }
            Matcher::Range(lo, hi) => match_decimal_in_range(input, *lo, *hi),
            Matcher::Vm(prog) => prog.matches(input),
        }
    }

    /// Tests a decimal integer without allocating its string form.
    ///
    /// Identifiers such as tuple ids are integers on the hot path; the
    /// match-all and numeric-range shapes — the common cases in security
    /// punctuations — are decided with plain comparisons. Other shapes fall
    /// back to formatting into a stack buffer.
    #[must_use]
    pub fn matches_u64(&self, value: u64) -> bool {
        match &self.matcher {
            Matcher::All => true,
            Matcher::Range(lo, hi) => (*lo..=*hi).contains(&value),
            _ => {
                let mut buf = [0u8; 20];
                self.matches(format_u64(value, &mut buf))
            }
        }
    }

    /// True if this pattern matches every possible name.
    #[must_use]
    pub fn is_match_all(&self) -> bool {
        matches!(self.matcher, Matcher::All)
    }

    /// If the pattern matches exactly one literal name, returns it.
    #[must_use]
    pub fn as_literal(&self) -> Option<&str> {
        match &self.matcher {
            Matcher::Literal(lit) => Some(lit),
            _ => None,
        }
    }

    /// The paper's `eval(N, e)` helper: the subset of `names` matching `e`.
    pub fn eval<'n, I>(&self, names: I) -> Vec<&'n str>
    where
        I: IntoIterator<Item = &'n str>,
    {
        names.into_iter().filter(|n| self.matches(n)).collect()
    }
}

/// Formats `value` as decimal into `buf`, returning the written prefix.
fn format_u64(mut value: u64, buf: &mut [u8; 20]) -> &str {
    let mut end = buf.len();
    loop {
        end -= 1;
        buf[end] = b'0' + (value % 10) as u8;
        value /= 10;
        if value == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[end..]).expect("decimal digits are valid UTF-8")
}

/// Matches a full string as a decimal integer within `lo..=hi`, accepting
/// leading zeros (zero-padded tuple identifiers are common).
fn match_decimal_in_range(input: &str, lo: u64, hi: u64) -> bool {
    if input.is_empty() || !input.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    let trimmed = input.trim_start_matches('0');
    let value = if trimmed.is_empty() {
        0
    } else if trimmed.len() > 20 {
        return false; // longer than any u64
    } else {
        match trimmed.parse::<u64>() {
            Ok(v) => v,
            Err(_) => return false,
        }
    };
    (lo..=hi).contains(&value)
}

fn select_matcher(ast: &Ast) -> Matcher {
    if ast.is_match_all() {
        return Matcher::All;
    }
    if let Some(lit) = ast.as_literal() {
        return Matcher::Literal(Arc::from(lit.as_str()));
    }
    if let Ast::NumRange(lo, hi) = ast {
        return Matcher::Range(*lo, *hi);
    }
    if let Ast::Alt(branches) = ast {
        let lits: Option<Vec<Box<str>>> =
            branches.iter().map(|b| b.as_literal().map(String::into_boxed_str)).collect();
        if let Some(mut lits) = lits {
            lits.sort_unstable();
            lits.dedup();
            return Matcher::Literals(lits.into());
        }
    }
    Matcher::Vm(Arc::new(Program::compile(ast)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_path_selection() {
        assert!(matches!(Pattern::compile("*").unwrap().matcher, Matcher::All));
        assert!(matches!(Pattern::compile("HeartRate").unwrap().matcher, Matcher::Literal(_)));
        assert!(matches!(Pattern::compile("a|b|c").unwrap().matcher, Matcher::Literals(_)));
        assert!(matches!(Pattern::compile("<1-9>").unwrap().matcher, Matcher::Range(1, 9)));
        assert!(matches!(Pattern::compile("a.c").unwrap().matcher, Matcher::Vm(_)));
    }

    #[test]
    fn literal_constructor_escapes_metacharacters() {
        let p = Pattern::literal("a*b(c)");
        assert!(p.matches("a*b(c)"));
        assert!(!p.matches("ab(c)"));
        // Round-trips through the compiler.
        let recompiled = Pattern::compile(p.source()).unwrap();
        assert!(recompiled.matches("a*b(c)"));
        assert!(!recompiled.matches("aXb(c)"));
    }

    #[test]
    fn numeric_range_constructor() {
        let p = Pattern::numeric_range(5, 7);
        assert!(p.matches("6"));
        assert!(!p.matches("8"));
        assert_eq!(p.source(), "<5-7>");
    }

    #[test]
    #[should_panic(expected = "numeric range bounds out of order")]
    fn numeric_range_constructor_rejects_reversed() {
        let _ = Pattern::numeric_range(7, 5);
    }

    #[test]
    fn decimal_range_edge_cases() {
        assert!(match_decimal_in_range("0", 0, 0));
        assert!(match_decimal_in_range("000", 0, 5));
        assert!(!match_decimal_in_range("", 0, 5));
        assert!(!match_decimal_in_range("1a", 0, 5));
        assert!(match_decimal_in_range("18446744073709551615", 0, u64::MAX));
        assert!(!match_decimal_in_range("99999999999999999999999", 0, u64::MAX));
    }

    #[test]
    fn matches_u64_all_shapes() {
        assert!(Pattern::match_all().matches_u64(42));
        let range = Pattern::numeric_range(10, 20);
        assert!(range.matches_u64(10) && range.matches_u64(20));
        assert!(!range.matches_u64(9) && !range.matches_u64(21));
        let lit = Pattern::compile("120").unwrap();
        assert!(lit.matches_u64(120));
        assert!(!lit.matches_u64(12));
        let vm = Pattern::compile("1.0").unwrap();
        assert!(vm.matches_u64(120));
        assert!(vm.matches_u64(100));
        assert!(!vm.matches_u64(200));
        assert!(Pattern::compile("0").unwrap().matches_u64(0));
        let big = Pattern::compile(r"\d+").unwrap();
        assert!(big.matches_u64(u64::MAX));
    }

    #[test]
    fn eval_filters_name_sets() {
        let p = Pattern::compile("s[12]").unwrap();
        let names = ["s1", "s2", "s3"];
        assert_eq!(p.eval(names), vec!["s1", "s2"]);
    }

    #[test]
    fn equality_and_display_use_source() {
        let a = Pattern::compile("a|b").unwrap();
        let b = Pattern::compile("a|b").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "a|b");
    }

    #[test]
    fn literal_alternation_is_sorted_and_deduped() {
        let p = Pattern::compile("c|a|b|a").unwrap();
        assert!(p.matches("a"));
        assert!(p.matches("b"));
        assert!(p.matches("c"));
        assert!(!p.matches("d"));
    }
}
