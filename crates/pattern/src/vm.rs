//! Bytecode compiler and matcher for pattern expressions.
//!
//! The AST is compiled into a compact instruction sequence in the style of a
//! Thompson/Pike VM. Because the dialect contains the multi-character
//! [`NumRange`](crate::ast::Ast::NumRange) atom (which cannot advance in
//! lock-step with single-character instructions), matching is performed by a
//! depth-first search over `(pc, position)` states with memoization of failed
//! states. Inputs are object and role names — short strings — so the
//! `O(program × input)` state space is tiny; memoization guarantees linear
//! behaviour even for pathological patterns like `(a|a)*b`.

use crate::ast::{Ast, ClassSet};

/// A single VM instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// Consume one specific character.
    Char(char),
    /// Consume any one character.
    Any,
    /// Consume one character matched by the class.
    Class(ClassSet),
    /// Consume a run of ASCII digits whose decimal value lies in `lo..=hi`.
    /// Tries every plausible run length (longest first).
    NumRange(u64, u64),
    /// Try `pc + 1` first; on failure continue at the absolute target.
    Split(usize),
    /// Jump unconditionally to the absolute target.
    Jmp(usize),
    /// Accept if the whole input has been consumed.
    Match,
}

/// A compiled pattern program.
#[derive(Debug, Clone)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// Compiles an AST into a program.
    #[must_use]
    pub fn compile(ast: &Ast) -> Self {
        let mut insts = Vec::new();
        emit(ast, &mut insts);
        insts.push(Inst::Match);
        Self { insts }
    }

    /// Number of instructions (used by cost accounting and tests).
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program is empty (never the case after `compile`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Runs the program against `input`, anchored at both ends.
    #[must_use]
    pub fn matches(&self, input: &str) -> bool {
        let chars: Vec<char> = input.chars().collect();
        // `visited[pc * (n + 1) + pos]` marks states already entered by the
        // depth-first search. Re-entering a visited state is pruned: either
        // the state already failed (memoization), or it is an ancestor on the
        // current stack (a zero-width cycle, which cannot contribute a match
        // that some acyclic path would not). Because a success unwinds the
        // whole search immediately, over-marking on the successful path is
        // harmless. This bounds matching to one visit per (pc, pos) state.
        let width = chars.len() + 1;
        let mut visited = vec![false; self.insts.len() * width];
        self.run(0, 0, &chars, width, &mut visited)
    }

    fn run(
        &self,
        mut pc: usize,
        mut pos: usize,
        chars: &[char],
        width: usize,
        visited: &mut [bool],
    ) -> bool {
        // Iterative on the hot straight-line path; recursion only at Split
        // and NumRange branch points.
        loop {
            let key = pc * width + pos;
            if visited[key] {
                return false;
            }
            visited[key] = true;
            match &self.insts[pc] {
                Inst::Char(c) => {
                    if chars.get(pos) == Some(c) {
                        pc += 1;
                        pos += 1;
                    } else {
                        return false;
                    }
                }
                Inst::Any => {
                    if pos < chars.len() {
                        pc += 1;
                        pos += 1;
                    } else {
                        return false;
                    }
                }
                Inst::Class(set) => match chars.get(pos) {
                    Some(&c) if set.contains(c) => {
                        pc += 1;
                        pos += 1;
                    }
                    _ => return false,
                },
                Inst::NumRange(lo, hi) => {
                    // Longest digit run first: ranges are usually followed by
                    // end-of-pattern, so greedy is almost always right.
                    let mut end = pos;
                    while end < chars.len() && chars[end].is_ascii_digit() {
                        end += 1;
                    }
                    for stop in (pos + 1..=end).rev() {
                        let text: String = chars[pos..stop].iter().collect();
                        if let Ok(v) = text.parse::<u64>() {
                            if (*lo..=*hi).contains(&v)
                                && self.run(pc + 1, stop, chars, width, visited)
                            {
                                return true;
                            }
                        }
                    }
                    return false;
                }
                Inst::Split(alt) => {
                    if self.run(pc + 1, pos, chars, width, visited) {
                        return true;
                    }
                    // Continue in the alternative branch without recursing.
                    pc = *alt;
                }
                Inst::Jmp(target) => {
                    pc = *target;
                }
                Inst::Match => {
                    return pos == chars.len();
                }
            }
        }
    }
}

/// Emits code for `ast` starting at the current end of `insts`.
fn emit(ast: &Ast, insts: &mut Vec<Inst>) {
    match ast {
        Ast::Empty => {}
        Ast::Char(c) => insts.push(Inst::Char(*c)),
        Ast::AnyChar => insts.push(Inst::Any),
        Ast::Class(set) => insts.push(Inst::Class(set.clone())),
        Ast::NumRange(lo, hi) => insts.push(Inst::NumRange(*lo, *hi)),
        Ast::Concat(parts) => {
            for part in parts {
                emit(part, insts);
            }
        }
        Ast::Alt(branches) => {
            // split L2; <b1>; jmp END; L2: split L3; <b2>; ... <bn>
            let mut jmp_slots = Vec::new();
            for (i, branch) in branches.iter().enumerate() {
                if i + 1 < branches.len() {
                    let split_at = insts.len();
                    insts.push(Inst::Split(0)); // patched below
                    emit(branch, insts);
                    jmp_slots.push(insts.len());
                    insts.push(Inst::Jmp(0)); // patched below
                    let next = insts.len();
                    insts[split_at] = Inst::Split(next);
                } else {
                    emit(branch, insts);
                }
            }
            let end = insts.len();
            for slot in jmp_slots {
                insts[slot] = Inst::Jmp(end);
            }
        }
        Ast::Repeat { node, min, max } => emit_repeat(node, *min, *max, insts),
    }
}

fn emit_repeat(node: &Ast, min: u32, max: Option<u32>, insts: &mut Vec<Inst>) {
    // Mandatory prefix: `min` copies.
    for _ in 0..min {
        emit(node, insts);
    }
    match max {
        Some(max) => {
            // Optional suffix: (max - min) copies of `split END; <node>`.
            let mut split_slots = Vec::new();
            for _ in min..max {
                split_slots.push(insts.len());
                insts.push(Inst::Split(0)); // patched below
                emit(node, insts);
            }
            let end = insts.len();
            for slot in split_slots {
                insts[slot] = Inst::Split(end);
            }
        }
        None => {
            // Kleene tail: L: split END; <node>; jmp L; END:
            let loop_start = insts.len();
            insts.push(Inst::Split(0)); // patched below
            emit(node, insts);
            insts.push(Inst::Jmp(loop_start));
            let end = insts.len();
            insts[loop_start] = Inst::Split(end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn prog(src: &str) -> Program {
        Program::compile(&parse(src).expect("pattern parses"))
    }

    #[test]
    fn literal_matching_is_anchored() {
        let p = prog("HeartRate");
        assert!(p.matches("HeartRate"));
        assert!(!p.matches("HeartRateAudit"));
        assert!(!p.matches("xHeartRate"));
        assert!(!p.matches(""));
    }

    #[test]
    fn alternation() {
        let p = prog("doctor|nurse|cardiologist");
        assert!(p.matches("doctor"));
        assert!(p.matches("cardiologist"));
        assert!(!p.matches("insurance"));
    }

    #[test]
    fn kleene_star_and_plus() {
        let p = prog("(ab)+c*");
        assert!(p.matches("ab"));
        assert!(p.matches("ababccc"));
        assert!(!p.matches("c"));
        assert!(!p.matches("abx"));
    }

    #[test]
    fn bounded_repeat() {
        let p = prog("x{2,4}");
        assert!(!p.matches("x"));
        assert!(p.matches("xx"));
        assert!(p.matches("xxxx"));
        assert!(!p.matches("xxxxx"));
    }

    #[test]
    fn numeric_range_basic() {
        let p = prog("<120-133>");
        for v in 120..=133u32 {
            assert!(p.matches(&v.to_string()), "{v} should match");
        }
        assert!(!p.matches("119"));
        assert!(!p.matches("134"));
        assert!(!p.matches("12"));
        assert!(!p.matches("1200"));
        assert!(p.matches("0121"), "leading zeros are accepted");
    }

    #[test]
    fn numeric_range_in_context() {
        // e.g. tuple ids like "patient-<100-199>"
        let p = prog("patient-<100-199>");
        assert!(p.matches("patient-150"));
        assert!(!p.matches("patient-200"));
        // Range followed by more digits via concatenation is ambiguous but
        // must still be resolved by backtracking: <1-12>3 on "123" can split
        // as 12|3.
        let p = prog("<1-12>3");
        assert!(p.matches("123"));
        assert!(p.matches("13"));
        assert!(!p.matches("3"));
    }

    #[test]
    fn match_all() {
        let p = prog("*");
        assert!(p.matches(""));
        assert!(p.matches("literally anything"));
    }

    #[test]
    fn pathological_pattern_is_fast() {
        // (a|a)* a^n — classic exponential blowup for naive backtrackers.
        let p = prog("(a|a)*b");
        let input = "a".repeat(200);
        assert!(!p.matches(&input));
        let mut with_b = input.clone();
        with_b.push('b');
        assert!(p.matches(&with_b));
    }

    #[test]
    fn empty_pattern_matches_only_empty() {
        let p = prog("");
        assert!(p.matches(""));
        assert!(!p.matches("a"));
    }

    #[test]
    fn unicode_input() {
        let p = prog("räle.");
        assert!(p.matches("räles"));
        assert!(!p.matches("räle"));
    }
}
