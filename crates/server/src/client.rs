//! The client side: a load driver speaking the framed ingest protocol.
//!
//! [`LoadClient`] replays a prepared element sequence into the server,
//! honoring (or deliberately ignoring — for negative-control tests) the
//! server's `Overloaded` retry hints with seeded, jittered exponential
//! backoff. Reconnects resume from the server-authoritative `HelloAck`
//! cursor, so a storm of deliberate mid-stream disconnects still delivers
//! every element exactly once.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sp_core::wire::{Control, Message, StreamDecoder, WireFrame};
use sp_core::{QuarantineCode, StreamElement, StreamId, Timestamp};

/// Seeded, jittered exponential backoff parameters.
#[derive(Debug, Clone, Copy)]
pub struct BackoffConfig {
    /// First backoff step in (stream-time) milliseconds.
    pub base_ms: u64,
    /// Backoff ceiling.
    pub max_ms: u64,
    /// Jitter as a percentage of the step (0–100).
    pub jitter_pct: u8,
    /// Deterministic jitter seed.
    pub seed: u64,
    /// Cap on *wall-clock* sleeping per backoff. Stream time (which is
    /// what admission meters) always advances by the full step; real
    /// time only pauses briefly so tests and benches stay fast.
    pub sleep_cap_ms: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        Self { base_ms: 8, max_ms: 2_000, jitter_pct: 20, seed: 7, sleep_cap_ms: 2 }
    }
}

/// Client behavior knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Tenant to authenticate as.
    pub tenant: u32,
    /// Elements per data frame.
    pub frame_elements: usize,
    /// Honor `Overloaded` retry hints by backing off. Setting this to
    /// `false` builds the negative control: a client that hammers on
    /// regardless and must get *shed*, not serviced.
    pub honor_retry_hints: bool,
    /// Backoff shape (used only when honoring hints).
    pub backoff: BackoffConfig,
    /// Socket read deadline per reply, milliseconds.
    pub read_timeout_ms: u64,
    /// Reconnect budget (covers both deliberate and suffered drops).
    pub max_reconnects: u32,
    /// Deliberately drop the connection every N frames (0 = never) —
    /// the disconnect-storm knob.
    pub disconnect_every_frames: u64,
    /// When non-zero, restamp elements from a virtual stream clock that
    /// ticks this many ms per element — and advances by each backoff —
    /// so honoring hints actually refills the stream-time token bucket.
    /// Zero sends the input's original timestamps untouched.
    pub restamp_tick_ms: u64,
    /// Failover target: where to re-home when the current server sends
    /// a `Fence` frame (it was deposed) or stops answering entirely.
    /// The resume cursor comes from the new server's `HelloAck`, so
    /// delivery stays exactly-once across the switch.
    pub failover: Option<SocketAddr>,
    /// How long to keep retrying a refused TCP connect before giving
    /// up (0 = fail fast). Failover needs patience: promotion may lag
    /// the moment the primary stopped answering.
    pub connect_patience_ms: u64,
    /// Send a `Control::Trace` causal context ahead of every data frame,
    /// rooting the server-side span tree in this client's frame identity.
    /// Purely observational — the server never replies to it.
    pub trace: bool,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            tenant: 0,
            frame_elements: 16,
            honor_retry_hints: true,
            backoff: BackoffConfig::default(),
            read_timeout_ms: 2_000,
            max_reconnects: 64,
            disconnect_every_frames: 0,
            restamp_tick_ms: 0,
            failover: None,
            connect_patience_ms: 0,
            trace: true,
        }
    }
}

/// What one client run observed.
#[derive(Debug, Clone, Default)]
pub struct ClientReport {
    /// Data frames written to the wire.
    pub frames_sent: u64,
    /// `Ack` replies received.
    pub acks: u64,
    /// `Overloaded` replies received.
    pub overloads: u64,
    /// Backoffs actually taken (honoring clients only).
    pub backoff_events: u64,
    /// Total stream-time backed off, ms.
    pub backoff_stream_ms: u64,
    /// Successful reconnects (deliberate or suffered).
    pub reconnects: u32,
    /// Connections refused by the server's concurrency cap.
    pub refused: u64,
    /// Final server-side input position.
    pub final_pos: u64,
    /// Set when the server quarantined this tenant.
    pub quarantined: Option<QuarantineCode>,
    /// True when the server announced a drain mid-run.
    pub drained: bool,
    /// Times this client re-homed to the failover address.
    pub failovers: u32,
    /// True when every input element was delivered (per the server's
    /// cursor — shed elements count as delivered).
    pub completed: bool,
}

/// SplitMix64 — deterministic jitter without external dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

enum Reply {
    Ctrl(Control),
    Eof,
    TimedOut,
}

/// Reads until one control frame decodes (data frames from the server
/// would be a protocol violation and are ignored).
fn read_ctrl(stream: &mut TcpStream, dec: &mut StreamDecoder, deadline_ms: u64) -> Reply {
    let start = Instant::now();
    let mut buf = [0u8; 4096];
    loop {
        if start.elapsed() >= Duration::from_millis(deadline_ms) {
            return Reply::TimedOut;
        }
        match stream.read(&mut buf) {
            Ok(0) => return Reply::Eof,
            Ok(n) => {
                for frame in dec.feed(&buf[..n]) {
                    if let WireFrame::Control(c) = frame {
                        return Reply::Ctrl(c);
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return Reply::Eof,
        }
    }
}

fn restamp(elem: &StreamElement, ts: Timestamp) -> StreamElement {
    match elem {
        StreamElement::Tuple(t) => {
            let mut t = (**t).clone();
            t.ts = ts;
            StreamElement::Tuple(Arc::new(t))
        }
        StreamElement::Punctuation(sp) => {
            let mut sp = (**sp).clone();
            sp.ts = ts;
            StreamElement::Punctuation(Arc::new(sp))
        }
    }
}

/// A framed-protocol client that replays one element sequence.
pub struct LoadClient {
    cfg: ClientConfig,
    rng: Rng,
    /// Virtual stream clock (ms) used when `restamp_tick_ms > 0`.
    vclock: u64,
    attempt: u32,
    report: ClientReport,
    /// The address currently being spoken to (switches on failover).
    active: Option<SocketAddr>,
}

impl LoadClient {
    /// A client with the given behavior.
    #[must_use]
    pub fn new(cfg: ClientConfig) -> Self {
        Self {
            cfg,
            rng: Rng(cfg.backoff.seed ^ u64::from(cfg.tenant).wrapping_mul(0x6C62_272E_07BB_0142)),
            vclock: 0,
            attempt: 0,
            report: ClientReport::default(),
            active: None,
        }
    }

    /// Re-homes to the failover address if one is configured and not
    /// already active. Returns true when the switch happened.
    fn try_failover(&mut self) -> bool {
        let Some(fb) = self.cfg.failover else { return false };
        if self.active == Some(fb) {
            return false;
        }
        self.active = Some(fb);
        self.report.failovers += 1;
        true
    }

    /// One jittered exponential step for the current attempt count.
    fn backoff_step(&mut self) -> u64 {
        let b = self.cfg.backoff;
        let exp = b.base_ms.saturating_mul(1u64 << self.attempt.min(20)).min(b.max_ms);
        if b.jitter_pct == 0 || exp == 0 {
            return exp;
        }
        let span = exp * u64::from(b.jitter_pct) / 100;
        let jitter = self.rng.next() % (2 * span + 1);
        (exp + jitter).saturating_sub(span).min(b.max_ms).max(1)
    }

    /// Backs off after an `Overloaded` reply: stream time advances by
    /// `max(server hint, jittered exponential step)`; wall-clock sleeps
    /// at most `sleep_cap_ms`.
    fn back_off(&mut self, hint_ms: u64) {
        let step = self.backoff_step().max(hint_ms);
        self.vclock += step;
        self.attempt = self.attempt.saturating_add(1);
        self.report.backoff_events += 1;
        self.report.backoff_stream_ms += step;
        let sleep = step.min(self.cfg.backoff.sleep_cap_ms);
        if sleep > 0 {
            std::thread::sleep(Duration::from_millis(sleep));
        }
    }

    fn connect(&mut self, addr: SocketAddr) -> Option<(TcpStream, StreamDecoder, u64)> {
        let deadline = Instant::now() + Duration::from_millis(self.cfg.connect_patience_ms);
        loop {
            let mut stream = match TcpStream::connect(addr) {
                Ok(s) => s,
                Err(_) => {
                    // A refused connect during failover usually means
                    // promotion is still in flight: retry with patience.
                    if Instant::now() >= deadline {
                        return None;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            };
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
            let hello = Control::Hello { tenant: self.cfg.tenant, acked: self.report.final_pos };
            if stream.write_all(&hello.encode_to_vec()).is_err() {
                return None;
            }
            let mut dec = StreamDecoder::new(1 << 20);
            match read_ctrl(&mut stream, &mut dec, self.cfg.read_timeout_ms) {
                Reply::Ctrl(Control::HelloAck { resume_from }) => {
                    return Some((stream, dec, resume_from));
                }
                // The concurrency cap answers with a bare retry hint
                // before any handshake; honor it and try again.
                Reply::Ctrl(Control::Overloaded { retry_after_ms, .. }) => {
                    self.report.refused += 1;
                    let wait = retry_after_ms.clamp(1, 50);
                    std::thread::sleep(Duration::from_millis(wait));
                    if self.report.refused > 1_000 {
                        return None;
                    }
                }
                Reply::Ctrl(Control::Quarantined { code }) => {
                    self.report.quarantined = Some(code);
                    return None;
                }
                Reply::Ctrl(Control::Draining { .. }) => {
                    self.report.drained = true;
                    return None;
                }
                // A fenced (deposed) server: give up on this address —
                // the caller re-homes to the failover.
                Reply::Ctrl(Control::Fence { .. }) => return None,
                Reply::Ctrl(_) | Reply::Eof | Reply::TimedOut => return None,
            }
        }
    }

    /// Replays `input` into the server at `addr` until every element is
    /// delivered, the reconnect budget is spent, or the server ends the
    /// session (quarantine / drain).
    pub fn run(mut self, addr: SocketAddr, input: &[(StreamId, StreamElement)]) -> ClientReport {
        self.active = Some(addr);
        'sessions: loop {
            let target = self.active.unwrap_or(addr);
            let Some((mut stream, mut dec, resume_from)) = self.connect(target) else {
                // The server is gone or fenced: re-home once to the
                // failover (the promoted standby) and keep going.
                if self.try_failover() {
                    continue 'sessions;
                }
                break;
            };
            let mut pos = usize::try_from(resume_from).unwrap_or(usize::MAX).min(input.len());
            self.report.final_pos = resume_from;
            let mut frames_this_session = 0u64;
            while pos < input.len() {
                if self.cfg.disconnect_every_frames > 0
                    && frames_this_session >= self.cfg.disconnect_every_frames
                {
                    // Deliberate mid-stream disconnect: drop without
                    // ceremony, then reconnect and trust the cursor.
                    drop(stream);
                    if self.report.reconnects >= self.cfg.max_reconnects {
                        break 'sessions;
                    }
                    self.report.reconnects += 1;
                    continue 'sessions;
                }
                let stream_id = input[pos].0;
                let end = input[pos..]
                    .iter()
                    .take(self.cfg.frame_elements.max(1))
                    .take_while(|(s, _)| *s == stream_id)
                    .count()
                    + pos;
                let elements: Vec<StreamElement> = input[pos..end]
                    .iter()
                    .map(|(_, e)| {
                        if self.cfg.restamp_tick_ms > 0 {
                            self.vclock += self.cfg.restamp_tick_ms;
                            restamp(e, Timestamp(self.vclock))
                        } else {
                            e.clone()
                        }
                    })
                    .collect();
                let msg = Message { stream: stream_id, elements };
                let mut wire = Vec::new();
                if self.cfg.trace {
                    // The client-side root of the causal chain: a
                    // deterministic context derived from (tenant, stream,
                    // frame position), so replays and reconnects produce
                    // the same trace ids.
                    let ctx =
                        sp_core::TraceContext::derive(self.cfg.tenant, stream_id.0, pos as u64);
                    let trace =
                        Control::Trace { trace_id: ctx.trace_id, parent_span: ctx.parent_span };
                    wire.extend_from_slice(&trace.encode_to_vec());
                }
                wire.extend_from_slice(&msg.encode_to_vec());
                if stream.write_all(&wire).is_err() {
                    if self.report.reconnects >= self.cfg.max_reconnects {
                        break 'sessions;
                    }
                    self.report.reconnects += 1;
                    continue 'sessions;
                }
                self.report.frames_sent += 1;
                frames_this_session += 1;
                match read_ctrl(&mut stream, &mut dec, self.cfg.read_timeout_ms) {
                    Reply::Ctrl(Control::Ack { pos: p }) => {
                        self.report.acks += 1;
                        self.report.final_pos = p;
                        pos = usize::try_from(p).unwrap_or(pos).min(input.len());
                        self.attempt = 0;
                    }
                    Reply::Ctrl(Control::Overloaded { retry_after_ms, pos: p }) => {
                        self.report.overloads += 1;
                        self.report.final_pos = p;
                        pos = usize::try_from(p).unwrap_or(pos).min(input.len());
                        if self.cfg.honor_retry_hints {
                            self.back_off(retry_after_ms);
                        }
                    }
                    Reply::Ctrl(Control::Quarantined { code }) => {
                        self.report.quarantined = Some(code);
                        break 'sessions;
                    }
                    Reply::Ctrl(Control::Draining { pos: p }) => {
                        self.report.drained = true;
                        self.report.final_pos = self.report.final_pos.max(p);
                        break 'sessions;
                    }
                    Reply::Ctrl(Control::Fence { .. }) => {
                        // This server was deposed mid-stream. Its engine
                        // refused the frame (fail closed), so re-home and
                        // resend from the new server's cursor.
                        if self.try_failover() {
                            continue 'sessions;
                        }
                        break 'sessions;
                    }
                    Reply::Ctrl(_) => break 'sessions,
                    Reply::Eof | Reply::TimedOut => {
                        if self.report.reconnects >= self.cfg.max_reconnects {
                            break 'sessions;
                        }
                        self.report.reconnects += 1;
                        continue 'sessions;
                    }
                }
            }
            break;
        }
        self.report.completed = self.report.final_pos as usize >= input.len();
        self.report
    }
}
