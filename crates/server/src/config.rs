//! Server tuning knobs.

use std::net::SocketAddr;

use sp_engine::LinkFaultPlan;

/// Deliberate panic injection for chaos tests: the named tenant's worker
/// panics when its session reaches the given input position. Exercises
/// the supervisor's promise that a panicking pipeline quarantines only
/// its own tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPanic {
    /// The tenant whose worker should panic.
    pub tenant: u32,
    /// Input position (element count) at which the panic fires.
    pub at_pos: u64,
}

/// Configuration of the front-door server.
///
/// Per-tenant *engine* behavior (admission control, telemetry, queries)
/// is configured by the session factory that builds each tenant's
/// [`sp_query::Dsms`]; this struct configures the *transport*: deadlines,
/// connection limits, frame bounds and the fail-closed garbage budget.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Port to bind on 127.0.0.1 (0 = ephemeral).
    pub port: u16,
    /// Maximum concurrent connections; excess connects are refused with
    /// a retry hint, never silently dropped.
    pub max_conns: usize,
    /// Per-read socket deadline in milliseconds. Bounds how long a stall
    /// (or a length-lying frame header) can hold a connection thread.
    pub read_timeout_ms: u64,
    /// A connection silent this long is reaped (idle deadline).
    pub idle_timeout_ms: u64,
    /// Largest frame body accepted; a header claiming more is treated as
    /// corruption immediately.
    pub max_frame_len: usize,
    /// Corrupted frames tolerated per connection before the tenant's
    /// session is quarantined (fail closed): resync absorbs line noise,
    /// but a byte-garbage-spewing client is a security event.
    pub garbage_quarantine: u64,
    /// Checkpoint the tenant session every N consumed frames
    /// (0 = checkpoint only on drain). Periodic checkpoints bound how
    /// much replay a hard kill costs.
    pub checkpoint_every_frames: u64,
    /// Spin up a `/metrics` + `/healthz` listener on an ephemeral port.
    pub metrics: bool,
    /// Chaos-test knob: deliberate worker panic (see [`ChaosPanic`]).
    pub chaos_panic: Option<ChaosPanic>,
    /// Replication target: the standby's replication listener. When set,
    /// every persisted tenant checkpoint is shipped there as
    /// `CheckpointSegment` + `CheckpointCommit` control frames.
    pub replicate_to: Option<SocketAddr>,
    /// This incarnation's fencing epoch. Every replication frame carries
    /// it; a frame (or echo) bearing a *higher* epoch means another node
    /// was promoted and this one must fence itself: stop releasing
    /// tuples, refuse all input, audit the refusals. Promotion always
    /// picks `highest seen + 1`.
    pub fencing_epoch: u64,
    /// Checkpoint bytes per `CheckpointSegment` frame.
    pub repl_chunk_bytes: usize,
    /// Chaos-test knob: deterministic partition / lag / duplicate faults
    /// injected into the replication link (see
    /// [`sp_engine::LinkFaultPlan`]).
    pub repl_faults: Option<LinkFaultPlan>,
    /// Chaos-test knob: the replication shipper goes silent after this
    /// many frames (0 = never) — a primary dying mid-checkpoint-ship.
    pub chaos_repl_stop_after_frames: u64,
    /// Chaos-test knob: a tenant worker observes a deposing fencing
    /// epoch just before consuming its Nth frame (0 = never) — a fence
    /// racing a frame already in flight past the connection-level check.
    /// Exercises the worker-level fail-closed gate deterministically.
    pub chaos_fence_at_frame: u64,
    /// Capacity of each tenant worker's ingress span recorder (wire-frame
    /// arrival spans for `/trace`); 0 disables ingress spans. Engine-side
    /// span capacity is configured per tenant by the session factory's
    /// `TelemetryConfig`.
    pub trace_capacity: usize,
    /// Shard replicas per tenant session (0 = the factory's own
    /// [`sp_query::Dsms::shards`] setting stands). `n ≥ 2` overrides
    /// every tenant to run `n` key-partitioned shard replicas behind the
    /// deterministic exchange; released sets, audit trails, and
    /// checkpoints stay byte-identical to sequential execution, and
    /// checkpoints re-shard on resume. A tenant whose plan cannot be
    /// sharded (joins, aggregation) fails closed at spawn and is
    /// quarantined, exactly like a resume failure.
    pub shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            port: 0,
            max_conns: 256,
            read_timeout_ms: 25,
            idle_timeout_ms: 2_000,
            max_frame_len: 1 << 20,
            garbage_quarantine: 64,
            checkpoint_every_frames: 0,
            metrics: false,
            chaos_panic: None,
            replicate_to: None,
            fencing_epoch: 1,
            repl_chunk_bytes: 4096,
            repl_faults: None,
            chaos_repl_stop_after_frames: 0,
            chaos_fence_at_frame: 0,
            trace_capacity: 1024,
            shards: 0,
        }
    }
}
