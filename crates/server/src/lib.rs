//! Multi-tenant network front door for the security-punctuation DSMS.
//!
//! This crate turns the in-process [`sp_query::Dsms`] into a network
//! service with the robustness properties a mutually-untrusted,
//! many-client deployment needs:
//!
//! * **Supervised tenant isolation** — every tenant's session runs on
//!   its own worker thread behind `catch_unwind`. A panicking pipeline,
//!   a corrupt checkpoint, or a byte-garbage-spewing connection
//!   quarantines exactly that tenant (fail closed: the session stops
//!   consuming and its last good checkpoint stands); neighbors never
//!   notice.
//! * **Deadlines everywhere** — per-read socket timeouts bound stalls
//!   and length-lying frame headers; silent connections are reaped by
//!   an idle deadline; a wedged tenant worker reads as quarantine
//!   rather than hanging its connections.
//! * **Backpressure as protocol** — per-tenant admission verdicts
//!   travel back as `Overloaded` control frames carrying retry hints;
//!   the connection cap refuses loudly with the same frame.
//! * **Exactly-once across reconnects** — `HelloAck` carries the
//!   server-authoritative replay cursor (the session input position,
//!   which counts shed elements), so clients resume without duplicates
//!   and per-tenant audit trails stay byte-identical across kill,
//!   drain, and reconnect storms.
//! * **Graceful drain vs hard kill** — [`ServerHandle::drain`]
//!   checkpoints every tenant and reports; [`ServerHandle::kill`]
//!   models a crash, after which a new server over the same
//!   [`StoreMap`] resumes from the last periodic checkpoints.
//!
//! The wire format is the CRC-framed protocol of [`sp_core::wire`]
//! (data frames) plus its control frames ([`sp_core::wire::Control`]).
//! [`LoadClient`] is the matching client/load driver.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod config;
mod metrics;
mod replication;
mod server;
mod tenant;

pub use client::{BackoffConfig, ClientConfig, ClientReport, LoadClient};
pub use config::{ChaosPanic, ServerConfig};
pub use replication::{Standby, StandbyHandle};
pub use server::{DrainReport, Server, ServerHandle};
pub use tenant::{FrameOutcome, SessionFactory, SharedStore, StoreMap, TenantReport};
