//! Supervised per-tenant sessions.
//!
//! Every tenant gets an isolated pipeline: a dedicated worker thread
//! owning its own [`sp_query::RunningDsms`], fed through a bounded
//! channel by whatever connections the tenant has open. The worker is
//! the tenant's *blast radius*: a panic inside its engine, a resume
//! failure, or a garbage verdict from the transport quarantines exactly
//! this session — the session stops consuming (fail closed, its last
//! good checkpoint stands) and every other tenant is untouched.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use sp_core::trace::{site, trace_id_for_sp, trace_id_for_tuple};
use sp_core::{QuarantineCode, StreamElement, StreamId, TraceContext};
use sp_engine::telemetry::NO_TUPLE;
use sp_engine::{
    AuditEvent, AuditOp, AuditTrail, CheckpointStore, EngineError, FlightRecorder, MemStore,
    MetricsRegistry, SpanRecord, SpanRecorder, SpanSheet,
};
use sp_query::{Dsms, RunningDsms};

use crate::config::ServerConfig;
use crate::replication::{ReplState, ShipRequest};

/// Builds a fresh (unstarted) [`Dsms`] for a tenant: streams, roles,
/// queries, admission and telemetry configuration. Called once per
/// tenant per server incarnation; the session itself is then started via
/// [`Dsms::resume`] against the tenant's checkpoint store.
pub type SessionFactory = Arc<dyn Fn(u32) -> Dsms + Send + Sync>;

/// A tenant checkpoint store that survives server restarts: an
/// [`MemStore`] behind an `Arc`, cloneable into each server incarnation.
/// (A production deployment would use [`sp_engine::FileStore`]; tests
/// and the load bench kill and resurrect servers in-process.)
#[derive(Debug, Clone, Default)]
pub struct SharedStore(Arc<Mutex<MemStore>>);

fn unpoison<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl CheckpointStore for SharedStore {
    fn save(&mut self, ckpt: &sp_engine::Checkpoint) -> Result<(), EngineError> {
        unpoison(self.0.lock()).save(ckpt)
    }

    fn load_latest(&self) -> Option<sp_engine::Checkpoint> {
        unpoison(self.0.lock()).load_latest()
    }

    fn count(&self) -> usize {
        unpoison(self.0.lock()).count()
    }
}

/// The durable side of a server: one checkpoint store per tenant.
/// Clone it, kill the server, start a new one with the clone — every
/// tenant resumes from its last checkpoint.
#[derive(Debug, Clone, Default)]
pub struct StoreMap {
    inner: Arc<Mutex<HashMap<u32, SharedStore>>>,
}

impl StoreMap {
    /// An empty store map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The store for a tenant, created on first use.
    #[must_use]
    pub fn store(&self, tenant: u32) -> SharedStore {
        unpoison(self.inner.lock()).entry(tenant).or_default().clone()
    }
}

/// Outcome of pushing one data frame into a tenant session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameOutcome {
    /// Every element consumed; `pos` is the session position after.
    Ack {
        /// Input position after the frame.
        pos: u64,
    },
    /// Frame consumed, but admission shed at least one tuple; the client
    /// should back off at least `retry_after_ms` of stream time.
    Overloaded {
        /// Largest retry hint admission produced for this frame.
        retry_after_ms: u64,
        /// Input position after the frame (shed tuples counted).
        pos: u64,
    },
    /// The session is quarantined; nothing was (or will be) consumed.
    Quarantined {
        /// Why the session is quarantined.
        code: QuarantineCode,
    },
    /// This node was deposed by a newer fencing epoch; nothing was (or
    /// will be) consumed — reconnect to the promoted standby.
    Fenced {
        /// The fencing epoch that deposed this node.
        fencing_epoch: u64,
    },
}

/// Everything a drained (or live-inspected) tenant session reports.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant id.
    pub tenant: u32,
    /// Elements consumed by the session (the replay cursor).
    pub input_pos: u64,
    /// Whether the session ended quarantined.
    pub quarantined: bool,
    /// The quarantine cause, if any.
    pub quarantine_code: Option<QuarantineCode>,
    /// Data tuples admitted into the plan.
    pub tuples_ingested: u64,
    /// Security punctuations ingested. Sps are never shed or refused.
    pub sps_ingested: u64,
    /// Tuples refused by per-tenant admission control.
    pub admission_rejected: u64,
    /// Per-query released tuples, in release order, keyed by query id.
    pub released: Vec<(u32, Vec<String>)>,
    /// The session's audit trail in canonical byte encoding (empty when
    /// telemetry is off or the session is quarantined).
    pub audit: Vec<u8>,
    /// Checkpoints this incarnation persisted.
    pub checkpoints_taken: u64,
    /// Elements refused because this node was fenced (deposed by a
    /// newer fencing epoch). Fenced refusals are fail-closed: counted,
    /// audited, never processed.
    pub fenced_refused: u64,
    /// Canonical audit bytes of the fence refusals (a supervisor-level
    /// `RecoveryFailClosed` trail; empty while unfenced).
    pub fence_audit: Vec<u8>,
}

/// Commands a tenant worker accepts from connection threads and the
/// server's drain path.
pub(crate) enum Cmd {
    /// Push one decoded data frame; reply with the outcome. `trace` is
    /// the client-supplied causal context for the frame, if any.
    Frame {
        stream: StreamId,
        elements: Vec<StreamElement>,
        trace: Option<TraceContext>,
        reply: SyncSender<FrameOutcome>,
    },
    /// Quarantine the session (transport-level verdict, e.g. garbage).
    Quarantine { code: QuarantineCode },
    /// Report current session state without stopping.
    Report { reply: SyncSender<TenantReport> },
    /// Report current engine metrics without stopping.
    Metrics { reply: SyncSender<MetricsRegistry> },
    /// Report the merged span sheet (ingress + engine) without stopping.
    Trace { reply: SyncSender<SpanSheet> },
    /// Report the rendered audit trail without stopping.
    Audit { reply: SyncSender<String> },
    /// Checkpoint (unless quarantined), report, and stop.
    Drain { reply: SyncSender<TenantReport> },
}

/// Shared view of one tenant's worker.
pub(crate) struct TenantHandle {
    pub tx: SyncSender<Cmd>,
    /// Mirror of the session's input position (the HelloAck cursor).
    pub pos: Arc<AtomicU64>,
    pub quarantined: Arc<AtomicBool>,
    pub join: Mutex<Option<JoinHandle<()>>>,
}

/// The worker's owned state.
struct Worker {
    id: u32,
    dsms: Dsms,
    /// `None` once quarantined — the engine state is untrusted (panic)
    /// or was never trusted (resume failure), so it is dropped rather
    /// than consulted.
    session: Option<RunningDsms>,
    store: SharedStore,
    pos: Arc<AtomicU64>,
    quarantined: Arc<AtomicBool>,
    quarantine_code: Option<QuarantineCode>,
    tuples_ingested: u64,
    sps_ingested: u64,
    epoch: u64,
    frames_seen: u64,
    frames_since_ckpt: u64,
    checkpoints_taken: u64,
    cfg: ServerConfig,
    repl: Arc<ReplState>,
    ship_tx: Option<SyncSender<ShipRequest>>,
    fenced_refused: u64,
    fence_audit: FlightRecorder,
    /// Wire-frame arrival spans (site `WIRE_FRAME`), parented to the
    /// client-supplied trace context when one rode ahead of the frame.
    ingress: SpanRecorder,
}

impl Worker {
    fn quarantine(&mut self, code: QuarantineCode) {
        self.session = None;
        self.quarantine_code.get_or_insert(code);
        self.quarantined.store(true, Ordering::SeqCst);
    }

    /// Pushes one frame's elements, tracking admission refusals.
    /// Runs under `catch_unwind`: a panic anywhere in here quarantines
    /// the tenant (the caller handles the unwind).
    fn push_frame(
        &mut self,
        stream: StreamId,
        elements: Vec<StreamElement>,
        trace: Option<TraceContext>,
    ) -> FrameOutcome {
        self.frames_seen += 1;
        if self.cfg.chaos_fence_at_frame > 0 && self.frames_seen == self.cfg.chaos_fence_at_frame {
            // Chaos: a deposing epoch lands while this frame is already
            // past the connection-level fence check — the worker-level
            // gate below must fail closed on it.
            let epoch = self.repl.fencing_epoch.load(Ordering::SeqCst) + 1;
            self.repl.observe_epoch(epoch);
        }
        if self.repl.fenced.load(Ordering::SeqCst) {
            // Deposed: a fenced node never feeds another element into
            // its engine, so it can never release another tuple. The
            // refusal is audited the same way the crash supervisor
            // audits a terminal fail-closed state.
            let refused = elements.len() as u64;
            self.fenced_refused += refused;
            self.fence_audit.record(
                NO_TUPLE,
                self.pos.load(Ordering::SeqCst),
                AuditEvent::RecoveryFailClosed { refused },
            );
            return FrameOutcome::Fenced {
                fencing_epoch: self.repl.fencing_epoch.load(Ordering::SeqCst),
            };
        }
        let Some(session) = self.session.as_mut() else {
            return FrameOutcome::Quarantined {
                code: self.quarantine_code.unwrap_or(QuarantineCode::Panicked),
            };
        };
        let mut worst_retry: Option<u64> = None;
        for elem in elements {
            if let Some(chaos) = self.cfg.chaos_panic {
                if chaos.tenant == self.id && session.input_pos() >= chaos.at_pos {
                    panic!("chaos: deliberate tenant worker panic");
                }
            }
            let is_tuple = elem.is_tuple();
            if self.ingress.enabled() {
                // The WIRE_FRAME span: the element's arrival at the front
                // door, keyed to its own deterministic trace id and
                // parented to the client's root span when one was sent.
                let (trace_id, tid, ts) = match &elem {
                    StreamElement::Tuple(t) => (trace_id_for_tuple(t.tid.0), t.tid.0, t.ts.0),
                    StreamElement::Punctuation(sp) => (trace_id_for_sp(sp.ts.0), NO_TUPLE, sp.ts.0),
                };
                let parent = trace.map_or(0, |c| c.parent_span);
                self.ingress.record(SpanRecord::at(trace_id, site::WIRE_FRAME, parent, tid, ts));
            }
            match session.try_push(stream, elem) {
                Ok(()) => {
                    if is_tuple {
                        self.tuples_ingested += 1;
                    } else {
                        self.sps_ingested += 1;
                    }
                }
                Err(EngineError::Overloaded { retry_after_ms }) => {
                    worst_retry = Some(worst_retry.unwrap_or(0).max(retry_after_ms));
                }
                // Any other engine error fails closed per element: the
                // executor already dropped the in-flight elements, and
                // the error stays visible in the session's error log.
                Err(_) => {}
            }
        }
        let pos = session.input_pos();
        self.pos.store(pos, Ordering::SeqCst);
        self.frames_since_ckpt += 1;
        if self.cfg.checkpoint_every_frames > 0
            && self.frames_since_ckpt >= self.cfg.checkpoint_every_frames
        {
            self.checkpoint();
        }
        match worst_retry {
            Some(retry_after_ms) => FrameOutcome::Overloaded { retry_after_ms, pos },
            None => FrameOutcome::Ack { pos },
        }
    }

    fn checkpoint(&mut self) {
        if let Some(session) = self.session.as_mut() {
            self.epoch += 1;
            if session.checkpoint_to(self.epoch, &mut self.store).is_ok() {
                self.checkpoints_taken += 1;
                self.frames_since_ckpt = 0;
                if let Some(tx) = self.ship_tx.as_ref() {
                    // Non-blocking: the shipper always ships the store's
                    // *latest* checkpoint, so a full queue just means
                    // this epoch rides along with the next notification.
                    let _ = tx.try_send(ShipRequest { tenant: self.id });
                }
            }
        }
    }

    /// The merged span sheet: the ingress (wire-frame) section followed
    /// by the engine's analyzer/operator sections, in canonical order.
    fn span_sheet(&mut self) -> SpanSheet {
        let mut sheet = self.session.as_mut().map(RunningDsms::span_sheet).unwrap_or_default();
        if !self.ingress.is_empty() || self.ingress.evicted() > 0 {
            sheet.push_section(AuditOp::Ingress, self.ingress.clone());
        }
        sheet
    }

    fn report(&mut self) -> TenantReport {
        let (released, audit, admission_rejected) = match self.session.as_mut() {
            Some(session) => {
                let released = self
                    .dsms
                    .queries()
                    .iter()
                    .map(|q| {
                        let tuples =
                            session.results(q.id).tuples().map(|t| t.to_string()).collect();
                        (q.id.raw(), tuples)
                    })
                    .collect();
                (
                    released,
                    session.audit_trail().encode_to_vec(),
                    session.degradation().admission_rejected,
                )
            }
            None => (Vec::new(), Vec::new(), 0),
        };
        TenantReport {
            tenant: self.id,
            input_pos: self.pos.load(Ordering::SeqCst),
            quarantined: self.quarantined.load(Ordering::SeqCst),
            quarantine_code: self.quarantine_code,
            tuples_ingested: self.tuples_ingested,
            sps_ingested: self.sps_ingested,
            admission_rejected,
            released,
            audit,
            checkpoints_taken: self.checkpoints_taken,
            fenced_refused: self.fenced_refused,
            fence_audit: if self.fence_audit.is_empty() {
                Vec::new()
            } else {
                let mut trail = AuditTrail::new();
                trail.push_section(AuditOp::Supervisor, self.fence_audit.clone());
                trail.encode_to_vec()
            },
        }
    }

    fn run(mut self, rx: &Receiver<Cmd>) {
        while let Ok(cmd) = rx.recv() {
            match cmd {
                Cmd::Frame { stream, elements, trace, reply } => {
                    let outcome =
                        catch_unwind(AssertUnwindSafe(|| self.push_frame(stream, elements, trace)));
                    let outcome = match outcome {
                        Ok(o) => o,
                        Err(_) => {
                            // The engine state may be mid-mutation:
                            // untrusted. Fail closed — drop it, keep the
                            // last good checkpoint, quarantine.
                            self.quarantine(QuarantineCode::Panicked);
                            FrameOutcome::Quarantined { code: QuarantineCode::Panicked }
                        }
                    };
                    let _ = reply.send(outcome);
                }
                Cmd::Quarantine { code } => self.quarantine(code),
                Cmd::Report { reply } => {
                    let _ = reply.send(self.report());
                }
                Cmd::Metrics { reply } => {
                    let reg = self.session.as_mut().map(RunningDsms::metrics).unwrap_or_default();
                    let _ = reply.send(reg);
                }
                Cmd::Trace { reply } => {
                    let _ = reply.send(self.span_sheet());
                }
                Cmd::Audit { reply } => {
                    let text = self
                        .session
                        .as_mut()
                        .map(|s| s.audit_trail().render(None))
                        .unwrap_or_default();
                    let _ = reply.send(text);
                }
                Cmd::Drain { reply } => {
                    if !self.quarantined.load(Ordering::SeqCst) {
                        self.checkpoint();
                    }
                    let _ = reply.send(self.report());
                    return;
                }
            }
        }
        // All senders dropped without a drain: a hard kill. No final
        // checkpoint — the last periodic one stands, and resume replays
        // from it.
    }
}

/// Spawns the worker thread for a tenant, resuming from its store.
pub(crate) fn spawn_tenant(
    id: u32,
    factory: &SessionFactory,
    store: SharedStore,
    cfg: ServerConfig,
    repl: Arc<ReplState>,
    ship_tx: Option<SyncSender<ShipRequest>>,
) -> TenantHandle {
    let (tx, rx) = mpsc::sync_channel::<Cmd>(256);
    let pos = Arc::new(AtomicU64::new(0));
    let quarantined = Arc::new(AtomicBool::new(false));
    let factory = Arc::clone(factory);
    let (pos_t, quarantined_t) = (Arc::clone(&pos), Arc::clone(&quarantined));
    let join = std::thread::Builder::new().name(format!("tenant-{id}")).spawn(move || {
        let built = catch_unwind(AssertUnwindSafe(|| {
            let mut dsms = factory(id);
            if cfg.shards > 0 {
                // The server-wide shard width overrides the factory's.
                // Checkpoints are canonical across widths, so resuming
                // an existing store under a new width just re-shards.
                dsms.shards = cfg.shards;
            }
            let session = dsms.resume(&store);
            (dsms, session)
        }));
        let mut worker = Worker {
            id,
            dsms: Dsms::new(),
            session: None,
            store,
            pos: pos_t,
            quarantined: quarantined_t,
            quarantine_code: None,
            tuples_ingested: 0,
            sps_ingested: 0,
            epoch: 0,
            frames_seen: 0,
            frames_since_ckpt: 0,
            checkpoints_taken: 0,
            cfg,
            repl,
            ship_tx,
            fenced_refused: 0,
            fence_audit: FlightRecorder::new(1024),
            ingress: SpanRecorder::new(cfg.trace_capacity),
        };
        match built {
            Ok((dsms, Ok(session))) => {
                worker.pos.store(session.input_pos(), Ordering::SeqCst);
                // Epochs stay monotone across incarnations: a resumed
                // session checkpoints *after* the epoch it restored, so
                // replication idempotence (refuse epoch ≤ applied) never
                // mistakes a fresh post-restart checkpoint for a stale
                // duplicate.
                worker.epoch = worker.store.load_latest().map_or(0, |c| c.epoch);
                worker.dsms = dsms;
                worker.session = Some(session);
            }
            // A corrupt checkpoint or a factory panic both fail
            // closed: the tenant starts quarantined rather than
            // half-restored.
            Ok((dsms, Err(_))) => {
                worker.dsms = dsms;
                worker.quarantine(QuarantineCode::ResumeFailed);
            }
            Err(_) => worker.quarantine(QuarantineCode::ResumeFailed),
        }
        worker.run(&rx);
    });
    TenantHandle { tx, pos, quarantined, join: Mutex::new(join.ok()) }
}
