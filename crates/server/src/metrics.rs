//! Dedicated `/metrics` + `/healthz` listener.
//!
//! A deliberately tiny HTTP/1.0 responder on its own port, so operators
//! can scrape telemetry without speaking the framed ingest protocol and
//! without competing with data connections for the accept queue.
//! Readiness fails closed: a draining (or gone) server answers 503.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::server::ServerState;

/// Binds the observability listener on an ephemeral loopback port and
/// serves it until the server drains.
pub(crate) fn spawn(state: Arc<ServerState>) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let join = std::thread::Builder::new().name("sp-metrics".into()).spawn(move || loop {
        if state.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => serve_one(&state, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    })?;
    Ok((addr, join))
}

fn serve_one(state: &ServerState, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut req = [0u8; 1024];
    let n = stream.read(&mut req).unwrap_or(0);
    let line = String::from_utf8_lossy(&req[..n]);
    let path = line.split_whitespace().nth(1).unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", state.metrics().render_prometheus()),
        "/healthz" => {
            let (ready, text) = state.healthz();
            (if ready { "200 OK" } else { "503 Service Unavailable" }, "text/plain", text)
        }
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let resp = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(resp.as_bytes());
}
