//! Dedicated `/metrics` + `/healthz` listener.
//!
//! A deliberately tiny HTTP/1.0 responder on its own port, so operators
//! can scrape telemetry without speaking the framed ingest protocol and
//! without competing with data connections for the accept queue.
//! Readiness fails closed: a draining, fenced, or gone node answers 503.
//! Both the primary/fenced server and the standby serve the same two
//! endpoints through [`Observe`].

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use sp_engine::MetricsRegistry;

use crate::replication::StandbyState;
use crate::server::ServerState;

/// What the observability listener needs from the node it describes.
pub(crate) trait Observe: Send + Sync + 'static {
    /// True once the node stopped (the listener thread exits).
    fn stopped(&self) -> bool;
    /// The `/metrics` body (Prometheus text exposition format).
    fn metrics_text(&self) -> String;
    /// The `/trace` body (Chrome trace-event JSON).
    fn trace_text(&self) -> String;
    /// The `/audit` body (human-readable audit trail + span tree).
    fn audit_text(&self) -> String;
    /// Readiness: `(ready, status line)`.
    fn health(&self) -> (bool, String);
}

impl Observe for ServerState {
    fn stopped(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn metrics_text(&self) -> String {
        self.metrics().render_prometheus()
    }

    fn trace_text(&self) -> String {
        self.trace_json()
    }

    fn audit_text(&self) -> String {
        self.audit_text()
    }

    fn health(&self) -> (bool, String) {
        self.healthz()
    }
}

impl Observe for StandbyState {
    fn stopped(&self) -> bool {
        self.stopping.load(Ordering::SeqCst)
    }

    fn metrics_text(&self) -> String {
        let mut reg = MetricsRegistry::new();
        reg.add_counter(
            "sp_server_role",
            "Replication role of this node (the labeled series is 1)",
            "role=\"standby\"",
            1,
        );
        reg.add_counter(
            "sp_server_fencing_epoch",
            "Highest fencing epoch seen from a primary",
            "",
            self.seen_epoch.load(Ordering::SeqCst),
        );
        reg.add_counter(
            "sp_server_repl_commits_applied_total",
            "Checkpoint commits verified and applied",
            "",
            self.commits_applied.load(Ordering::SeqCst),
        );
        reg.add_counter(
            "sp_server_repl_apply_failures_total",
            "Checkpoint commits refused (bad bytes, stale epoch, failed resume dry run)",
            "",
            self.apply_failures.load(Ordering::SeqCst),
        );
        for (tenant, lag) in self.lag_epochs() {
            reg.add_counter(
                "sp_server_replication_lag_epochs",
                "Checkpoint epochs shipped but not yet applied, per tenant",
                &format!("tenant=\"{tenant}\""),
                lag,
            );
        }
        reg.render_prometheus()
    }

    fn trace_text(&self) -> String {
        self.span_sheet().render_chrome_json()
    }

    fn audit_text(&self) -> String {
        self.span_sheet().render_tree()
    }

    fn health(&self) -> (bool, String) {
        let applied = {
            let map = self.applied.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            map.len()
        };
        (true, format!("ok role=standby tenants_applied={applied}\n"))
    }
}

/// Binds the observability listener on an ephemeral loopback port and
/// serves it until the node stops.
pub(crate) fn spawn<S: Observe>(state: Arc<S>) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let join = std::thread::Builder::new().name("sp-metrics".into()).spawn(move || loop {
        if state.stopped() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => serve_one(&*state, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    })?;
    Ok((addr, join))
}

fn serve_one(state: &dyn Observe, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut req = [0u8; 1024];
    let n = stream.read(&mut req).unwrap_or(0);
    let line = String::from_utf8_lossy(&req[..n]);
    let path = line.split_whitespace().nth(1).unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", state.metrics_text()),
        "/trace" => ("200 OK", "application/json", state.trace_text()),
        "/audit" => ("200 OK", "text/plain", state.audit_text()),
        "/healthz" => {
            let (ready, text) = state.health();
            (if ready { "200 OK" } else { "503 Service Unavailable" }, "text/plain", text)
        }
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let resp = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(resp.as_bytes());
}
