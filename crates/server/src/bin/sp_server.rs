//! Demo entry point: a multi-tenant front door over the moving-objects
//! workload, with an embedded fleet of load clients.
//!
//! ```text
//! sp-server [--port N] [--tenants N] [--objects N] [--ticks N] [--serve-secs N]
//!           [--replicate-to HOST:PORT] [--standby]
//! ```
//!
//! Default mode starts the server plus `--tenants` concurrent clients,
//! each replaying its own punctuated location stream, then drains and
//! prints per-tenant results. With `--serve-secs N` (and `--tenants 0`)
//! it instead serves external clients for N seconds before draining.
//! The `/metrics` + `/healthz` listener is always on.
//!
//! Replication: `--standby` runs a warm standby instead — it prints its
//! replication address, applies checkpoints a primary ships to it for
//! `--serve-secs` (default 30), then reports what it holds. Point a
//! primary at it with `--replicate-to HOST:PORT`; the primary then
//! streams every periodic checkpoint over the same CRC-framed wire.

use std::sync::Arc;

use sp_core::{StreamElement, StreamId};
use sp_engine::{AdmissionConfig, TelemetryConfig};
use sp_mog::{location_stream, MovingObjectSim, WorkloadConfig};
use sp_query::Dsms;
use sp_server::{
    ClientConfig, LoadClient, Server, ServerConfig, SessionFactory, Standby, StoreMap,
};

/// Builds each tenant's DSMS: the LocationUpdates stream, one analyst
/// query over it, stream-time admission control and full telemetry.
fn demo_factory() -> SessionFactory {
    Arc::new(|tenant: u32| {
        let mut dsms = Dsms::new();
        let _ = dsms.register_stream(StreamId(1), MovingObjectSim::location_schema());
        let _ = dsms.register_role("analyst");
        if let Ok(subject) = dsms.register_subject(&format!("tenant-{tenant}"), &["analyst"]) {
            let _ = dsms
                .submit("SELECT obj_id, speed FROM LocationUpdates WHERE speed >= 10.0", subject);
        }
        dsms.admission =
            Some(AdmissionConfig { tokens_per_sec: 2_000, burst: 256, enqueue_deadline_ms: 50 });
        dsms.telemetry = Some(TelemetryConfig::enabled());
        dsms
    })
}

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Standby mode: apply whatever a primary ships for `serve_secs`, then
/// report the replicated state. A real deployment would promote here;
/// the drill in `sp-bench --bin failover_drill` exercises that path.
fn run_standby(serve_secs: u64) {
    let standby = match Standby::start(demo_factory(), StoreMap::new(), true) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("standby bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("sp-server standby: replication on {}", standby.repl_addr);
    if let Some(m) = standby.metrics_addr {
        println!("metrics:   http://{m}/metrics");
        println!("readiness: http://{m}/healthz");
    }
    println!("point a primary at it: sp-server --replicate-to {}", standby.repl_addr);
    std::thread::sleep(std::time::Duration::from_secs(if serve_secs == 0 {
        30
    } else {
        serve_secs
    }));
    for (tenant, epoch) in standby.applied_epochs() {
        println!("  tenant {tenant}: applied checkpoint epoch {epoch}");
    }
    println!(
        "fencing epoch seen {}; apply failures {}",
        standby.seen_fencing_epoch(),
        standby.apply_failures()
    );
    standby.stop();
}

#[allow(clippy::cast_possible_truncation)]
fn main() {
    let port = arg("--port", 0) as u16;
    let tenants = arg("--tenants", 4) as u32;
    let objects = arg("--objects", 60) as usize;
    let ticks = arg("--ticks", 40) as usize;
    let serve_secs = arg("--serve-secs", 0);
    if flag("--standby") {
        run_standby(serve_secs);
        return;
    }
    let replicate_to = match arg_str("--replicate-to") {
        Some(s) => match s.parse() {
            Ok(addr) => Some(addr),
            Err(e) => {
                eprintln!("bad --replicate-to address {s:?}: {e}");
                std::process::exit(1);
            }
        },
        None => None,
    };

    let cfg = ServerConfig {
        port,
        metrics: true,
        checkpoint_every_frames: 32,
        replicate_to,
        ..ServerConfig::default()
    };
    let handle = match Server::start(cfg, demo_factory(), StoreMap::new()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("sp-server listening on {}", handle.addr);
    if let Some(m) = handle.metrics_addr {
        println!("metrics:   http://{m}/metrics");
        println!("readiness: http://{m}/healthz");
    }

    let mut joins = Vec::new();
    for tenant in 0..tenants {
        let addr = handle.addr;
        let workload = location_stream(&WorkloadConfig {
            objects,
            ticks,
            sp_every: 10,
            grant_selectivity: 0.6,
            seed: 42 + u64::from(tenant),
            ..WorkloadConfig::default()
        });
        let input: Vec<(StreamId, StreamElement)> =
            workload.elements.into_iter().map(|e| (workload.stream, e)).collect();
        joins.push(std::thread::spawn(move || {
            let client = LoadClient::new(ClientConfig { tenant, ..ClientConfig::default() });
            (tenant, client.run(addr, &input))
        }));
    }
    for j in joins {
        if let Ok((tenant, r)) = j.join() {
            println!(
                "tenant {tenant}: {} frames, {} acks, {} overloads, pos {}{}",
                r.frames_sent,
                r.acks,
                r.overloads,
                r.final_pos,
                if r.completed { "" } else { " (incomplete)" },
            );
        }
    }
    if tenants == 0 && serve_secs > 0 {
        std::thread::sleep(std::time::Duration::from_secs(serve_secs));
    }

    let report = handle.drain();
    println!(
        "drained clean={} conns={} frames={} corrupted={} repl_shipped={} p99 handle {}us",
        report.clean,
        report.connections_total,
        report.frames,
        report.corrupted_frames,
        report.repl_frames_shipped,
        report.latency.percentile(99.0),
    );
    for t in &report.tenants {
        println!(
            "  tenant {}: pos {} tuples {} sps {} shed {} released {:?} ckpts {} quarantined {}",
            t.tenant,
            t.input_pos,
            t.tuples_ingested,
            t.sps_ingested,
            t.admission_rejected,
            t.released.iter().map(|(q, v)| (*q, v.len())).collect::<Vec<_>>(),
            t.checkpoints_taken,
            t.quarantined,
        );
    }
}
