//! Primary/standby checkpoint-shipping replication with fenced,
//! fail-closed failover.
//!
//! The primary ships every persisted tenant checkpoint to a [`Standby`]
//! over the existing CRC-framed wire envelope: a checkpoint becomes a
//! run of [`Control::CheckpointSegment`] frames followed by one
//! [`Control::CheckpointCommit`] carrying the full length and CRC-32 of
//! the assembled bytes. The standby applies a commit only when the
//! reassembled bytes verify *and* the checkpoint passes a dry run
//! through the tenant's real `Dsms::resume` path — a torn, reordered,
//! or stale checkpoint can never roll a standby's policy table
//! backwards or leave it half-applied. Applied checkpoints land in the
//! standby's [`StoreMap`], so promotion is nothing special: start a
//! normal [`Server`] over the same stores and every tenant resumes
//! exactly as it would after a local crash, with clients re-homed by
//! the server-authoritative resume cursor (exactly-once across the
//! switch).
//!
//! Failover is *fenced*: every replication frame carries a monotone
//! fencing epoch, and [`StandbyHandle::promote`] claims `highest seen +
//! 1`, writing a [`Control::Fence`] to any still-connected primary. A
//! deposed primary that sees a higher epoch — on the replication link
//! or in an echo — fails closed immediately: tenant workers refuse all
//! further input (counted and audited as `RecoveryFailClosed`), client
//! connections get a `Fence` frame so they re-home to the standby, and
//! `/healthz` reports unhealthy. A fenced node never releases another
//! tuple; losing input is acceptable, leaking it is not.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sp_core::trace::{site, trace_id_for_checkpoint};
use sp_core::wire::{crc32, Control, StreamDecoder, WireFrame};
use sp_engine::telemetry::NO_TUPLE;
use sp_engine::{
    AuditOp, Checkpoint, CheckpointStore, LinkFaultInjector, MemStore, SpanRecord, SpanRecorder,
    SpanSheet,
};

use crate::config::ServerConfig;
use crate::server::Server;
use crate::tenant::{SessionFactory, StoreMap};
use crate::ServerHandle;

fn unpoison<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Shared fencing + lag state (lives inside ServerState on the primary)
// ---------------------------------------------------------------------------

/// Replication-facing state shared between the server's workers, its
/// connection threads, the shipper thread, and the metrics listener.
pub(crate) struct ReplState {
    /// This node's fencing epoch. Starts at the configured epoch and
    /// only ever rises (to the highest epoch seen on the link).
    pub fencing_epoch: AtomicU64,
    /// Set the instant a higher epoch is seen: this node is deposed and
    /// must never release another tuple.
    pub fenced: AtomicBool,
    /// Highest checkpoint epoch shipped per tenant.
    pub shipped: Mutex<HashMap<u32, u64>>,
    /// Highest checkpoint epoch the standby acked per tenant.
    pub acked: Mutex<HashMap<u32, u64>>,
    /// Replication frames written to the link.
    pub frames_shipped: AtomicU64,
    /// Whether the shipper currently holds a live standby connection.
    pub standby_connected: AtomicBool,
    /// Set by a hard kill: the shipper dies with the node, abandoning
    /// queued and fault-held frames exactly as a crash would.
    pub killed: AtomicBool,
}

impl ReplState {
    pub(crate) fn new(fencing_epoch: u64) -> Self {
        Self {
            fencing_epoch: AtomicU64::new(fencing_epoch),
            fenced: AtomicBool::new(false),
            shipped: Mutex::new(HashMap::new()),
            acked: Mutex::new(HashMap::new()),
            frames_shipped: AtomicU64::new(0),
            standby_connected: AtomicBool::new(false),
            killed: AtomicBool::new(false),
        }
    }

    /// Observes an epoch from the link; a higher one fences this node.
    pub(crate) fn observe_epoch(&self, epoch: u64) {
        let own = self.fencing_epoch.load(Ordering::SeqCst);
        if epoch > own {
            self.fencing_epoch.fetch_max(epoch, Ordering::SeqCst);
            self.fenced.store(true, Ordering::SeqCst);
        }
    }

    /// Per-tenant replication lag in epochs (shipped − acked).
    pub(crate) fn lag_epochs(&self) -> Vec<(u32, u64)> {
        let shipped = unpoison(self.shipped.lock());
        let acked = unpoison(self.acked.lock());
        let mut lag: Vec<(u32, u64)> = shipped
            .iter()
            .map(|(t, s)| (*t, s.saturating_sub(acked.get(t).copied().unwrap_or(0))))
            .collect();
        lag.sort_unstable();
        lag
    }
}

/// A worker's note to the shipper: this tenant persisted a checkpoint;
/// ship the store's latest (notifications coalesce naturally — the
/// shipper skips epochs it already shipped).
pub(crate) struct ShipRequest {
    pub tenant: u32,
}

// ---------------------------------------------------------------------------
// The shipper (primary side)
// ---------------------------------------------------------------------------

struct Shipper {
    cfg: ServerConfig,
    target: SocketAddr,
    repl: Arc<ReplState>,
    stores: StoreMap,
    conn: Option<(TcpStream, StreamDecoder)>,
    faults: Option<LinkFaultInjector>,
    frames_sent: u64,
}

impl Shipper {
    /// True once the chaos knob silenced the link: the primary "died"
    /// mid-ship as far as the standby can tell.
    fn chaos_silenced(&self) -> bool {
        self.cfg.chaos_repl_stop_after_frames > 0
            && self.frames_sent >= self.cfg.chaos_repl_stop_after_frames
    }

    /// Writes one control frame through the fault injector (if any).
    /// Returns false when the connection died.
    fn write_frame(&mut self, ctrl: &Control) -> bool {
        if self.chaos_silenced() {
            // The link is "dead" but the count still advances so stats
            // show what would have shipped.
            self.frames_sent += 1;
            return true;
        }
        self.frames_sent += 1;
        let bytes = ctrl.encode_to_vec();
        let deliveries = match self.faults.as_mut() {
            Some(inj) => inj.offer(&bytes),
            None => vec![bytes],
        };
        let Some((stream, _)) = self.conn.as_mut() else { return false };
        for frame in deliveries {
            if stream.write_all(&frame).is_err() {
                self.conn = None;
                self.repl.standby_connected.store(false, Ordering::SeqCst);
                return false;
            }
            self.repl.frames_shipped.fetch_add(1, Ordering::SeqCst);
        }
        true
    }

    /// Ensures a live connection with a completed `ReplHello` exchange.
    fn ensure_connected(&mut self) -> bool {
        if self.conn.is_some() {
            return true;
        }
        let Ok(stream) = TcpStream::connect(self.target) else { return false };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(10)));
        self.conn = Some((stream, StreamDecoder::new(self.cfg.max_frame_len)));
        self.repl.standby_connected.store(true, Ordering::SeqCst);
        let epoch = self.repl.fencing_epoch.load(Ordering::SeqCst);
        self.write_frame(&Control::ReplHello { fencing_epoch: epoch })
    }

    /// Drains whatever the standby sent back: commit echoes are acks,
    /// and any frame carrying a higher fencing epoch deposes this node.
    fn poll_replies(&mut self) {
        let Some((stream, dec)) = self.conn.as_mut() else { return };
        let mut buf = [0u8; 4096];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => {
                    self.conn = None;
                    self.repl.standby_connected.store(false, Ordering::SeqCst);
                    return;
                }
                Ok(n) => {
                    for frame in dec.feed(&buf[..n]) {
                        let WireFrame::Control(ctrl) = frame else { continue };
                        match ctrl {
                            Control::CheckpointCommit { tenant, epoch, fencing_epoch, .. } => {
                                self.repl.observe_epoch(fencing_epoch);
                                let mut acked = unpoison(self.repl.acked.lock());
                                let e = acked.entry(tenant).or_insert(0);
                                *e = (*e).max(epoch);
                            }
                            Control::ReplHello { fencing_epoch }
                            | Control::Fence { fencing_epoch } => {
                                self.repl.observe_epoch(fencing_epoch);
                            }
                            _ => {}
                        }
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return;
                }
                Err(_) => {
                    self.conn = None;
                    self.repl.standby_connected.store(false, Ordering::SeqCst);
                    return;
                }
            }
        }
    }

    /// Ships the latest durable checkpoint of one tenant as segments +
    /// commit.
    fn ship(&mut self, tenant: u32) {
        if !self.ensure_connected() {
            return;
        }
        let Some(ckpt) = self.stores.store(tenant).load_latest() else { return };
        let already = unpoison(self.repl.shipped.lock()).get(&tenant).copied().unwrap_or(0);
        if ckpt.epoch <= already {
            return; // A stale notification; this epoch already shipped.
        }
        let bytes = ckpt.encode_to_vec();
        let fencing_epoch = self.repl.fencing_epoch.load(Ordering::SeqCst);
        let chunk = self.cfg.repl_chunk_bytes.max(1);
        let total = u32::try_from(bytes.len().div_ceil(chunk)).unwrap_or(u32::MAX);
        for (seq, part) in bytes.chunks(chunk).enumerate() {
            let seg = Control::CheckpointSegment {
                tenant,
                epoch: ckpt.epoch,
                fencing_epoch,
                seq: seq as u32,
                total,
                bytes: part.to_vec(),
            };
            if !self.write_frame(&seg) {
                return;
            }
        }
        let commit = Control::CheckpointCommit {
            tenant,
            epoch: ckpt.epoch,
            fencing_epoch,
            len: bytes.len() as u32,
            crc: crc32(&bytes),
        };
        if self.write_frame(&commit) {
            let mut shipped = unpoison(self.repl.shipped.lock());
            let e = shipped.entry(tenant).or_insert(0);
            *e = (*e).max(ckpt.epoch);
        }
    }

    fn run(mut self, rx: &Receiver<ShipRequest>) {
        loop {
            if self.repl.killed.load(Ordering::SeqCst) {
                // A hard kill: die mid-whatever, like a real crash.
                return;
            }
            if self.repl.fenced.load(Ordering::SeqCst) {
                // Deposed: never write another replication frame.
                return;
            }
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(req) => {
                    self.ship(req.tenant);
                    self.poll_replies();
                }
                Err(RecvTimeoutError::Timeout) => self.poll_replies(),
                Err(RecvTimeoutError::Disconnected) => {
                    if self.repl.killed.load(Ordering::SeqCst) {
                        return;
                    }
                    // Every worker is gone (drain or kill): flush frames
                    // the fault injector still holds, collect final
                    // acks, and exit.
                    if let Some(held) = self.faults.as_mut().map(LinkFaultInjector::drain) {
                        if !self.chaos_silenced() {
                            if let Some((stream, _)) = self.conn.as_mut() {
                                for frame in held {
                                    if stream.write_all(&frame).is_err() {
                                        break;
                                    }
                                    self.repl.frames_shipped.fetch_add(1, Ordering::SeqCst);
                                }
                            }
                        }
                    }
                    for _ in 0..5 {
                        self.poll_replies();
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    return;
                }
            }
        }
    }
}

/// Spawns the checkpoint-shipping thread on the primary.
pub(crate) fn spawn_shipper(
    cfg: ServerConfig,
    target: SocketAddr,
    repl: Arc<ReplState>,
    stores: StoreMap,
    rx: Receiver<ShipRequest>,
) -> std::io::Result<JoinHandle<()>> {
    let shipper = Shipper {
        cfg,
        target,
        repl,
        stores,
        conn: None,
        faults: cfg.repl_faults.map(LinkFaultInjector::new),
        frames_sent: 0,
    };
    std::thread::Builder::new().name("sp-repl-ship".into()).spawn(move || shipper.run(&rx))
}

// ---------------------------------------------------------------------------
// The standby
// ---------------------------------------------------------------------------

/// Segment reassembly buffers: `(tenant, epoch)` → per-seq slots.
type PendingSegments = HashMap<(u32, u64), Vec<Option<Vec<u8>>>>;

/// Standby-side shared state (also serves the observability listener).
pub(crate) struct StandbyState {
    pub factory: SessionFactory,
    pub stores: StoreMap,
    /// Highest fencing epoch seen from any primary.
    pub seen_epoch: AtomicU64,
    /// Non-zero once promoted: the epoch this node claimed.
    pub promoted_epoch: AtomicU64,
    /// Highest checkpoint epoch applied per tenant.
    pub applied: Mutex<HashMap<u32, u64>>,
    /// Highest checkpoint epoch seen shipped per tenant (lag = shipped
    /// − applied).
    pub shipped: Mutex<HashMap<u32, u64>>,
    /// Segment reassembly buffers: `(tenant, epoch)` → slots.
    pending: Mutex<PendingSegments>,
    /// Commits refused (bad bytes, stale epoch race, resume dry-run
    /// failure) — refusals are fail-closed, never partial applies.
    pub apply_failures: AtomicU64,
    /// Commits verified and applied.
    pub commits_applied: AtomicU64,
    pub stopping: AtomicBool,
    /// Live replication connections (fenced on promote).
    conns: Mutex<Vec<TcpStream>>,
    /// `STANDBY_APPLY` spans: one per verified-and-applied checkpoint,
    /// keyed to the deterministic `(tenant, epoch)` checkpoint trace id.
    pub(crate) spans: Mutex<SpanRecorder>,
}

impl StandbyState {
    /// Per-tenant replication lag in epochs as seen by the standby.
    pub(crate) fn lag_epochs(&self) -> Vec<(u32, u64)> {
        let shipped = unpoison(self.shipped.lock());
        let applied = unpoison(self.applied.lock());
        let mut lag: Vec<(u32, u64)> = shipped
            .iter()
            .map(|(t, s)| (*t, s.saturating_sub(applied.get(t).copied().unwrap_or(0))))
            .collect();
        lag.sort_unstable();
        lag
    }

    /// Verifies and applies one committed checkpoint. The apply is
    /// all-or-nothing: reassembled bytes must match the commit's length
    /// and CRC, decode as a checkpoint for a *newer* epoch than what is
    /// already applied, and pass a dry run through the tenant's real
    /// `Dsms::resume` — only then is it saved into the tenant's store.
    fn apply_commit(&self, tenant: u32, epoch: u64, len: u32, crc: u32) -> bool {
        let assembled = {
            let mut pending = unpoison(self.pending.lock());
            pending.remove(&(tenant, epoch))
        };
        {
            let mut shipped = unpoison(self.shipped.lock());
            let e = shipped.entry(tenant).or_insert(0);
            *e = (*e).max(epoch);
        }
        let applied_epoch = unpoison(self.applied.lock()).get(&tenant).copied().unwrap_or(0);
        if epoch <= applied_epoch {
            // Duplicate or reordered delivery of an old commit: ack it
            // (idempotent) but never roll the store backwards.
            return true;
        }
        let Some(slots) = assembled else {
            self.apply_failures.fetch_add(1, Ordering::SeqCst);
            return false; // Segments lost (partition); await a re-ship.
        };
        if slots.iter().any(Option::is_none) {
            self.apply_failures.fetch_add(1, Ordering::SeqCst);
            return false;
        }
        let bytes: Vec<u8> = slots.into_iter().flatten().flatten().collect();
        if bytes.len() != len as usize || crc32(&bytes) != crc {
            self.apply_failures.fetch_add(1, Ordering::SeqCst);
            return false;
        }
        let Ok(ckpt) = Checkpoint::decode(&mut bytes.as_slice()) else {
            self.apply_failures.fetch_add(1, Ordering::SeqCst);
            return false;
        };
        if ckpt.epoch != epoch {
            self.apply_failures.fetch_add(1, Ordering::SeqCst);
            return false;
        }
        // Dry run through the real resume path: a checkpoint the engine
        // would refuse at failover time is refused *now*, while the
        // primary is still alive to ship a good one.
        let factory = Arc::clone(&self.factory);
        let ok = catch_unwind(AssertUnwindSafe(|| {
            let mut scratch = MemStore::new();
            scratch.save(&ckpt).is_ok() && factory(tenant).resume(&scratch).is_ok()
        }))
        .unwrap_or(false);
        if !ok {
            self.apply_failures.fetch_add(1, Ordering::SeqCst);
            return false;
        }
        if self.stores.store(tenant).save(&ckpt).is_err() {
            self.apply_failures.fetch_add(1, Ordering::SeqCst);
            return false;
        }
        unpoison(self.applied.lock()).insert(tenant, epoch);
        self.commits_applied.fetch_add(1, Ordering::SeqCst);
        {
            // Deterministic apply span: the same checkpoint applied on
            // any standby produces the same record (ts is the epoch —
            // stream-time-like, never wall clock).
            let trace = trace_id_for_checkpoint(tenant, epoch);
            let mut spans = unpoison(self.spans.lock());
            spans.record(SpanRecord::at(trace, site::STANDBY_APPLY, 0, NO_TUPLE, epoch));
        }
        true
    }

    /// The standby's span sheet: one supervisor-level section of
    /// `STANDBY_APPLY` spans.
    pub(crate) fn span_sheet(&self) -> SpanSheet {
        let rec = unpoison(self.spans.lock()).clone();
        let mut sheet = SpanSheet::new();
        if !rec.is_empty() || rec.evicted() > 0 {
            sheet.push_section(AuditOp::Supervisor, rec);
        }
        sheet
    }
}

/// A running standby: applies shipped checkpoints, promotable into a
/// full [`Server`].
pub struct Standby;

/// Handle to a running [`Standby`].
pub struct StandbyHandle {
    /// The replication listener address (the primary's `replicate_to`).
    pub repl_addr: SocketAddr,
    /// `/metrics` + `/healthz` address when enabled.
    pub metrics_addr: Option<SocketAddr>,
    state: Arc<StandbyState>,
    acceptor: Option<JoinHandle<()>>,
    conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>>,
    metrics_join: Option<JoinHandle<()>>,
}

impl Standby {
    /// Starts a standby on a 127.0.0.1 ephemeral port. Checkpoints the
    /// primary ships are verified and applied into `stores`; promotion
    /// starts a normal server over those stores.
    ///
    /// # Errors
    ///
    /// Fails when the replication listener cannot bind.
    pub fn start(
        factory: SessionFactory,
        stores: StoreMap,
        metrics: bool,
    ) -> std::io::Result<StandbyHandle> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let repl_addr = listener.local_addr()?;
        let state = Arc::new(StandbyState {
            factory,
            stores,
            seen_epoch: AtomicU64::new(0),
            promoted_epoch: AtomicU64::new(0),
            applied: Mutex::new(HashMap::new()),
            shipped: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            apply_failures: AtomicU64::new(0),
            commits_applied: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            spans: Mutex::new(SpanRecorder::new(1024)),
        });
        let conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let (metrics_addr, metrics_join) = if metrics {
            let (a, j) = crate::metrics::spawn(Arc::clone(&state))?;
            (Some(a), Some(j))
        } else {
            (None, None)
        };
        let accept_state = Arc::clone(&state);
        let accept_joins = Arc::clone(&conn_joins);
        let acceptor =
            std::thread::Builder::new().name("sp-standby".into()).spawn(move || loop {
                if accept_state.stopping.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        if let Ok(peer) = stream.try_clone() {
                            unpoison(accept_state.conns.lock()).push(peer);
                        }
                        let conn_state = Arc::clone(&accept_state);
                        if let Ok(j) = std::thread::Builder::new()
                            .name("sp-standby-conn".into())
                            .spawn(move || standby_conn(&conn_state, stream))
                        {
                            unpoison(accept_joins.lock()).push(j);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => return,
                }
            })?;
        Ok(StandbyHandle {
            repl_addr,
            metrics_addr,
            state,
            acceptor: Some(acceptor),
            conn_joins,
            metrics_join,
        })
    }
}

fn standby_conn(state: &Arc<StandbyState>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let mut dec = StreamDecoder::new(1 << 24);
    let mut buf = [0u8; 16 * 1024];
    loop {
        if state.stopping.load(Ordering::SeqCst) {
            return;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        for frame in dec.feed(&buf[..n]) {
            let WireFrame::Control(ctrl) = frame else { continue };
            let promoted = state.promoted_epoch.load(Ordering::SeqCst);
            if promoted > 0 {
                // Already promoted: everything a stale primary sends is
                // answered with the fence.
                let _ =
                    stream.write_all(&Control::Fence { fencing_epoch: promoted }.encode_to_vec());
                continue;
            }
            match ctrl {
                Control::ReplHello { fencing_epoch } => {
                    state.seen_epoch.fetch_max(fencing_epoch, Ordering::SeqCst);
                    let seen = state.seen_epoch.load(Ordering::SeqCst);
                    let _ = stream
                        .write_all(&Control::ReplHello { fencing_epoch: seen }.encode_to_vec());
                }
                Control::CheckpointSegment { tenant, epoch, fencing_epoch, seq, total, bytes } => {
                    let prev = state.seen_epoch.fetch_max(fencing_epoch, Ordering::SeqCst);
                    if fencing_epoch < prev {
                        // A frame from a deposed primary: fence it.
                        let _ = stream
                            .write_all(&Control::Fence { fencing_epoch: prev }.encode_to_vec());
                        continue;
                    }
                    let mut pending = unpoison(state.pending.lock());
                    let slots = pending
                        .entry((tenant, epoch))
                        .or_insert_with(|| vec![None; (total as usize).min(1 << 16)]);
                    if let Some(slot) = slots.get_mut(seq as usize) {
                        *slot = Some(bytes);
                    }
                }
                Control::CheckpointCommit { tenant, epoch, fencing_epoch, len, crc } => {
                    let prev = state.seen_epoch.fetch_max(fencing_epoch, Ordering::SeqCst);
                    if fencing_epoch < prev {
                        let _ = stream
                            .write_all(&Control::Fence { fencing_epoch: prev }.encode_to_vec());
                        continue;
                    }
                    if state.apply_commit(tenant, epoch, len, crc) {
                        let ack =
                            Control::CheckpointCommit { tenant, epoch, fencing_epoch, len, crc };
                        let _ = stream.write_all(&ack.encode_to_vec());
                    }
                }
                _ => {}
            }
        }
    }
}

impl StandbyHandle {
    /// Highest fencing epoch seen from a primary.
    #[must_use]
    pub fn seen_fencing_epoch(&self) -> u64 {
        self.state.seen_epoch.load(Ordering::SeqCst)
    }

    /// Highest checkpoint epoch applied per tenant, sorted by tenant.
    #[must_use]
    pub fn applied_epochs(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> =
            unpoison(self.state.applied.lock()).iter().map(|(t, e)| (*t, *e)).collect();
        v.sort_unstable();
        v
    }

    /// Per-tenant replication lag in epochs (highest shipped − applied).
    #[must_use]
    pub fn lag_epochs(&self) -> Vec<(u32, u64)> {
        self.state.lag_epochs()
    }

    /// Commits refused (bad bytes / stale epoch / failed resume dry run).
    #[must_use]
    pub fn apply_failures(&self) -> u64 {
        self.state.apply_failures.load(Ordering::SeqCst)
    }

    /// The standby's `STANDBY_APPLY` span sheet (one span per verified
    /// checkpoint apply).
    #[must_use]
    pub fn span_sheet(&self) -> SpanSheet {
        self.state.span_sheet()
    }

    /// The stores replicated checkpoints are applied into (pass to the
    /// promoted server; tests use it to snapshot the replicated state).
    #[must_use]
    pub fn stores(&self) -> StoreMap {
        self.state.stores.clone()
    }

    /// Promotes the standby: claims fencing epoch `highest seen + 1`,
    /// writes a `Fence` to any still-connected primary (a live deposed
    /// primary fails closed the moment it reads it), stops replication,
    /// and starts a normal [`Server`] over the replicated stores. Every
    /// tenant resumes from its last applied checkpoint; reconnecting
    /// clients get the resume cursor and delivery stays exactly-once.
    ///
    /// # Errors
    ///
    /// Fails when the promoted server cannot bind.
    pub fn promote(mut self, mut cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let new_epoch = self.state.seen_epoch.load(Ordering::SeqCst) + 1;
        self.state.promoted_epoch.store(new_epoch, Ordering::SeqCst);
        for conn in unpoison(self.state.conns.lock()).iter_mut() {
            let _ = conn.write_all(&Control::Fence { fencing_epoch: new_epoch }.encode_to_vec());
        }
        // Let in-flight frames settle so live primaries read the fence.
        std::thread::sleep(Duration::from_millis(20));
        self.shutdown();
        cfg.fencing_epoch = new_epoch;
        cfg.replicate_to = None;
        Server::start(cfg, Arc::clone(&self.state.factory), self.state.stores.clone())
    }

    /// Stops the standby without promoting.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.state.stopping.store(true, Ordering::SeqCst);
        for conn in unpoison(self.state.conns.lock()).drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(j) = self.acceptor.take() {
            let _ = j.join();
        }
        for j in unpoison(self.conn_joins.lock()).drain(..) {
            let _ = j.join();
        }
        if let Some(j) = self.metrics_join.take() {
            let _ = j.join();
        }
    }
}
