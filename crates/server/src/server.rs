//! The TCP front door: accept loop, connection supervision, deadlines,
//! and graceful drain.
//!
//! One thread per connection reads CRC-framed bytes under a read
//! deadline, resynchronizes past garbage with [`StreamDecoder`], and
//! round-trips each decoded data frame through the owning tenant's
//! worker. Responses (`Ack` / `Overloaded` / `Quarantined` / `Draining`)
//! travel back as control frames. Connections that stay silent past the
//! idle deadline are reaped; connections that spew garbage past the
//! budget quarantine their tenant (fail closed); a draining server
//! checkpoints every tenant before closing.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sp_core::wire::{Control, StreamDecoder, WireFrame};
use sp_core::QuarantineCode;
use sp_engine::telemetry::Histogram;
use sp_engine::MetricsRegistry;

use crate::config::ServerConfig;
use crate::replication::{spawn_shipper, ReplState, ShipRequest};
use crate::tenant::{
    spawn_tenant, Cmd, FrameOutcome, SessionFactory, StoreMap, TenantHandle, TenantReport,
};

fn unpoison<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Shared server state: configuration, tenant registry, counters.
pub(crate) struct ServerState {
    pub cfg: ServerConfig,
    pub factory: SessionFactory,
    pub stores: StoreMap,
    pub tenants: Mutex<HashMap<u32, Arc<TenantHandle>>>,
    pub draining: AtomicBool,
    pub conns: AtomicUsize,
    pub connections_total: AtomicU64,
    pub conns_refused: AtomicU64,
    pub idle_reaped: AtomicU64,
    pub protocol_errors: AtomicU64,
    pub corrupted_frames: AtomicU64,
    pub frames: AtomicU64,
    /// Per-frame server-side handling latency (decode → reply), µs.
    pub latency: Mutex<Histogram>,
    /// Fencing + replication-lag state (present even without a standby;
    /// fencing then simply never fires).
    pub repl: Arc<ReplState>,
    /// Checkpoint-ship notifications to the shipper thread (None when
    /// no standby is configured). Taken (dropped) on finish so the
    /// shipper sees disconnect and exits.
    pub ship_tx: Mutex<Option<mpsc::SyncSender<ShipRequest>>>,
}

impl ServerState {
    fn tenant(&self, id: u32) -> Arc<TenantHandle> {
        let mut map = unpoison(self.tenants.lock());
        Arc::clone(map.entry(id).or_insert_with(|| {
            Arc::new(spawn_tenant(
                id,
                &self.factory,
                self.stores.store(id),
                self.cfg,
                Arc::clone(&self.repl),
                unpoison(self.ship_tx.lock()).clone(),
            ))
        }))
    }

    /// Server-level metrics plus every live tenant's engine metrics,
    /// merged into one registry.
    pub(crate) fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let c = |v: &AtomicU64| v.load(Ordering::SeqCst);
        reg.add_counter(
            "sp_server_connections_total",
            "Connections accepted since start",
            "",
            c(&self.connections_total),
        );
        reg.add_counter(
            "sp_server_connections_refused_total",
            "Connections refused at the concurrency cap or while draining",
            "",
            c(&self.conns_refused),
        );
        reg.add_counter(
            "sp_server_idle_reaped_total",
            "Connections closed by the idle deadline",
            "",
            c(&self.idle_reaped),
        );
        reg.add_counter(
            "sp_server_protocol_errors_total",
            "Connections closed for protocol violations",
            "",
            c(&self.protocol_errors),
        );
        reg.add_counter(
            "sp_server_corrupted_frames_total",
            "Frames lost to corruption across all connections",
            "",
            c(&self.corrupted_frames),
        );
        reg.add_counter(
            "sp_server_frames_total",
            "Data frames consumed by tenant sessions",
            "",
            c(&self.frames),
        );
        let quarantined = {
            let map = unpoison(self.tenants.lock());
            map.values().filter(|t| t.quarantined.load(Ordering::SeqCst)).count() as u64
        };
        reg.add_counter(
            "sp_server_tenants_quarantined",
            "Tenant sessions currently quarantined (fail closed)",
            "",
            quarantined,
        );
        let fenced = self.repl.fenced.load(Ordering::SeqCst);
        reg.add_counter(
            "sp_server_role",
            "Replication role of this node (the labeled series is 1)",
            if fenced { "role=\"fenced\"" } else { "role=\"primary\"" },
            1,
        );
        reg.add_counter(
            "sp_server_fencing_epoch",
            "This node's fencing epoch (monotone; a higher epoch elsewhere deposes it)",
            "",
            self.repl.fencing_epoch.load(Ordering::SeqCst),
        );
        reg.add_counter(
            "sp_server_fenced",
            "1 when this node was deposed by a newer fencing epoch (fail closed)",
            "",
            u64::from(fenced),
        );
        for (tenant, lag) in self.repl.lag_epochs() {
            reg.add_counter(
                "sp_server_replication_lag_epochs",
                "Checkpoint epochs shipped to the standby but not yet acked, per tenant",
                &format!("tenant=\"{tenant}\""),
                lag,
            );
        }
        let lat = unpoison(self.latency.lock()).clone();
        reg.merge_histogram(
            "sp_server_frame_handle_us",
            "Server-side frame handling latency in microseconds",
            "",
            &lat,
        );
        let handles: Vec<Arc<TenantHandle>> =
            unpoison(self.tenants.lock()).values().cloned().collect();
        for h in handles {
            let (tx, rx) = mpsc::sync_channel(1);
            if h.tx.send(Cmd::Metrics { reply: tx }).is_ok() {
                if let Ok(m) = rx.recv_timeout(Duration::from_secs(2)) {
                    reg.merge(&m);
                }
            }
        }
        reg
    }

    /// One tenant's merged span sheet, fetched through the worker FIFO.
    pub(crate) fn tenant_spans(&self, tenant: u32) -> Option<sp_engine::SpanSheet> {
        let h = {
            let map = unpoison(self.tenants.lock());
            map.get(&tenant).cloned()
        }?;
        let (tx, rx) = mpsc::sync_channel(1);
        h.tx.send(Cmd::Trace { reply: tx }).ok()?;
        rx.recv_timeout(Duration::from_secs(2)).ok()
    }

    /// Chrome trace-event JSON over every live tenant: each tenant's
    /// span sheet becomes one `pid` lane so merged runs stay readable.
    pub(crate) fn trace_json(&self) -> String {
        let mut ids: Vec<u32> = unpoison(self.tenants.lock()).keys().copied().collect();
        ids.sort_unstable();
        let mut events = Vec::new();
        for id in ids {
            if let Some(sheet) = self.tenant_spans(id) {
                sheet.chrome_events(id, &mut events);
            }
        }
        format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
    }

    /// Human-readable audit + span-tree text over every live tenant.
    pub(crate) fn audit_text(&self) -> String {
        let mut ids: Vec<u32> = unpoison(self.tenants.lock()).keys().copied().collect();
        ids.sort_unstable();
        let mut out = String::new();
        for id in ids {
            out.push_str(&format!("== tenant {id} ==\n"));
            let h = {
                let map = unpoison(self.tenants.lock());
                map.get(&id).cloned()
            };
            if let Some(h) = h {
                let (tx, rx) = mpsc::sync_channel(1);
                if h.tx.send(Cmd::Audit { reply: tx }).is_ok() {
                    if let Ok(text) = rx.recv_timeout(Duration::from_secs(2)) {
                        out.push_str(&text);
                    }
                }
            }
            if let Some(sheet) = self.tenant_spans(id) {
                if !sheet.is_empty() {
                    out.push_str("-- spans --\n");
                    out.push_str(&sheet.render_tree());
                }
            }
        }
        out
    }

    /// Readiness: `(ready, status line)`. Fail closed — anything other
    /// than a live, accepting server is not ready.
    pub(crate) fn healthz(&self) -> (bool, String) {
        let draining = self.draining.load(Ordering::SeqCst);
        let map = unpoison(self.tenants.lock());
        let quarantined = map.values().filter(|t| t.quarantined.load(Ordering::SeqCst)).count();
        let tenants = map.len();
        drop(map);
        if self.repl.fenced.load(Ordering::SeqCst) {
            let epoch = self.repl.fencing_epoch.load(Ordering::SeqCst);
            (false, format!("fenced epoch={epoch} tenants={tenants} quarantined={quarantined}\n"))
        } else if draining {
            (false, format!("draining tenants={tenants} quarantined={quarantined}\n"))
        } else {
            (true, format!("ok tenants={tenants} quarantined={quarantined}\n"))
        }
    }
}

/// What a finished server hands back.
#[derive(Debug, Default)]
pub struct DrainReport {
    /// Final per-tenant reports (empty after a hard [`ServerHandle::kill`]).
    pub tenants: Vec<TenantReport>,
    /// Connections accepted over the server's lifetime.
    pub connections_total: u64,
    /// Connections refused (cap reached or draining).
    pub conns_refused: u64,
    /// Connections reaped by the idle deadline.
    pub idle_reaped: u64,
    /// Connections closed for protocol violations.
    pub protocol_errors: u64,
    /// Frames lost to corruption across all connections.
    pub corrupted_frames: u64,
    /// Data frames consumed.
    pub frames: u64,
    /// Per-frame server-side handling latency, µs.
    pub latency: Histogram,
    /// True when every tenant drained through its checkpoint path.
    pub clean: bool,
    /// This node's fencing epoch at the end of its life.
    pub fencing_epoch: u64,
    /// True when the node ended deposed (fenced by a newer epoch).
    pub fenced: bool,
    /// Replication frames written to the standby link.
    pub repl_frames_shipped: u64,
}

impl DrainReport {
    /// The report of one tenant, if present.
    #[must_use]
    pub fn tenant(&self, id: u32) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.tenant == id)
    }
}

/// A running front-door server.
pub struct ServerHandle {
    /// Ingestion address (127.0.0.1, ephemeral port by default).
    pub addr: SocketAddr,
    /// `/metrics` + `/healthz` address when enabled.
    pub metrics_addr: Option<SocketAddr>,
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
    conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>>,
    metrics_join: Option<JoinHandle<()>>,
    shipper: Option<JoinHandle<()>>,
}

/// The front-door server: binds, accepts, supervises.
pub struct Server;

impl Server {
    /// Starts the server on 127.0.0.1.
    ///
    /// `stores` is the durable side: pass the same [`StoreMap`] to a
    /// later incarnation and every tenant resumes from its checkpoint.
    ///
    /// # Errors
    ///
    /// Fails when the listener cannot bind.
    pub fn start(
        cfg: ServerConfig,
        factory: SessionFactory,
        stores: StoreMap,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let repl = Arc::new(ReplState::new(cfg.fencing_epoch));
        let (ship_tx, shipper) = match cfg.replicate_to {
            Some(target) => {
                let (tx, rx) = mpsc::sync_channel::<ShipRequest>(1024);
                let j = spawn_shipper(cfg, target, Arc::clone(&repl), stores.clone(), rx)?;
                (Some(tx), Some(j))
            }
            None => (None, None),
        };
        let state = Arc::new(ServerState {
            cfg,
            factory,
            stores,
            tenants: Mutex::new(HashMap::new()),
            draining: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            connections_total: AtomicU64::new(0),
            conns_refused: AtomicU64::new(0),
            idle_reaped: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            corrupted_frames: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            latency: Mutex::new(Histogram::new()),
            repl,
            ship_tx: Mutex::new(ship_tx),
        });
        let conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let (metrics_addr, metrics_join) = if cfg.metrics {
            let (a, j) = crate::metrics::spawn(Arc::clone(&state))?;
            (Some(a), Some(j))
        } else {
            (None, None)
        };
        let accept_state = Arc::clone(&state);
        let accept_joins = Arc::clone(&conn_joins);
        let acceptor = std::thread::Builder::new().name("sp-acceptor".into()).spawn(move || {
            accept_loop(&listener, &accept_state, &accept_joins);
        })?;
        Ok(ServerHandle {
            addr,
            metrics_addr,
            state,
            acceptor: Some(acceptor),
            conn_joins,
            metrics_join,
            shipper,
        })
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<ServerState>,
    joins: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if state.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                state.connections_total.fetch_add(1, Ordering::SeqCst);
                let live = state.conns.load(Ordering::SeqCst);
                if live >= state.cfg.max_conns || state.draining.load(Ordering::SeqCst) {
                    // Refuse loudly with a retry hint, then close: a
                    // full house is backpressure, not a black hole.
                    state.conns_refused.fetch_add(1, Ordering::SeqCst);
                    let hint = Control::Overloaded { retry_after_ms: 50, pos: 0 };
                    let _ = stream.write_all(&hint.encode_to_vec());
                    continue;
                }
                state.conns.fetch_add(1, Ordering::SeqCst);
                let conn_state = Arc::clone(state);
                if let Ok(j) = std::thread::Builder::new()
                    .name("sp-conn".into())
                    .spawn(move || handle_conn(&conn_state, stream))
                {
                    unpoison(joins.lock()).push(j);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

fn write_ctrl(stream: &mut TcpStream, ctrl: &Control) -> std::io::Result<()> {
    stream.write_all(&ctrl.encode_to_vec())
}

/// Round-trips one frame through the tenant worker. A dead or wedged
/// worker reads as quarantine — the connection must never hang forever
/// on a tenant that stopped replying.
fn round_trip(
    handle: &TenantHandle,
    stream: sp_core::StreamId,
    elements: Vec<sp_core::StreamElement>,
    trace: Option<sp_core::TraceContext>,
) -> FrameOutcome {
    let (tx, rx) = mpsc::sync_channel(1);
    if handle.tx.send(Cmd::Frame { stream, elements, trace, reply: tx }).is_err() {
        return FrameOutcome::Quarantined { code: QuarantineCode::Panicked };
    }
    match rx.recv_timeout(Duration::from_secs(10)) {
        Ok(outcome) => outcome,
        Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
            FrameOutcome::Quarantined { code: QuarantineCode::Panicked }
        }
    }
}

fn handle_conn(state: &Arc<ServerState>, mut stream: TcpStream) {
    let cfg = state.cfg;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms.max(1))));
    let mut dec = StreamDecoder::new(cfg.max_frame_len);
    let mut tenant: Option<Arc<TenantHandle>> = None;
    let mut pending_trace: Option<sp_core::TraceContext> = None;
    let mut idle_ms = 0u64;
    let mut buf = [0u8; 16 * 1024];
    'conn: loop {
        if state.repl.fenced.load(Ordering::SeqCst) {
            // Deposed: tell the client where it stands (the fence frame
            // is its cue to re-home to the promoted standby) and close.
            let fencing_epoch = state.repl.fencing_epoch.load(Ordering::SeqCst);
            let _ = write_ctrl(&mut stream, &Control::Fence { fencing_epoch });
            break;
        }
        if state.draining.load(Ordering::SeqCst) {
            let pos = tenant.as_ref().map_or(0, |t| t.pos.load(Ordering::SeqCst));
            let _ = write_ctrl(&mut stream, &Control::Draining { pos });
            break;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                idle_ms = 0;
                n
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                idle_ms += cfg.read_timeout_ms;
                if idle_ms >= cfg.idle_timeout_ms {
                    state.idle_reaped.fetch_add(1, Ordering::SeqCst);
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        for frame in dec.feed(&buf[..n]) {
            match frame {
                WireFrame::Control(Control::Hello { tenant: id, .. }) => {
                    let h = state.tenant(id);
                    // Read the cursor through the worker's FIFO queue,
                    // not the atomic mirror: frames a dead connection
                    // left in flight are counted before we answer, so a
                    // reconnecting client can never be told to replay
                    // an element the session is about to consume.
                    let report = {
                        let (tx, rx) = mpsc::sync_channel(1);
                        if h.tx.send(Cmd::Report { reply: tx }).is_ok() {
                            rx.recv_timeout(Duration::from_secs(10)).ok()
                        } else {
                            None
                        }
                    };
                    let resume_from = report
                        .as_ref()
                        .map_or_else(|| h.pos.load(Ordering::SeqCst), |r| r.input_pos);
                    let was_quarantined = h.quarantined.load(Ordering::SeqCst);
                    tenant = Some(h);
                    if was_quarantined {
                        // Answer the handshake itself with the verdict
                        // (no HelloAck first): the client learns the real
                        // cause and stops, instead of racing a replay
                        // against a connection we are about to close.
                        let code = report
                            .and_then(|r| r.quarantine_code)
                            .unwrap_or(QuarantineCode::Panicked);
                        let _ = write_ctrl(&mut stream, &Control::Quarantined { code });
                        break 'conn;
                    }
                    if write_ctrl(&mut stream, &Control::HelloAck { resume_from }).is_err() {
                        break 'conn;
                    }
                }
                WireFrame::Message(msg) => {
                    let Some(h) = tenant.as_ref() else {
                        // Data before Hello is a protocol violation.
                        state.protocol_errors.fetch_add(1, Ordering::SeqCst);
                        break 'conn;
                    };
                    let t0 = Instant::now();
                    let outcome = round_trip(h, msg.stream, msg.elements, pending_trace.take());
                    let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
                    unpoison(state.latency.lock()).record(us);
                    state.frames.fetch_add(1, Ordering::SeqCst);
                    let ctrl = match outcome {
                        FrameOutcome::Ack { pos } => Control::Ack { pos },
                        FrameOutcome::Overloaded { retry_after_ms, pos } => {
                            Control::Overloaded { retry_after_ms, pos }
                        }
                        FrameOutcome::Quarantined { code } => Control::Quarantined { code },
                        FrameOutcome::Fenced { fencing_epoch } => Control::Fence { fencing_epoch },
                    };
                    let terminal =
                        matches!(ctrl, Control::Quarantined { .. } | Control::Fence { .. });
                    if write_ctrl(&mut stream, &ctrl).is_err() || terminal {
                        break 'conn;
                    }
                }
                WireFrame::Control(Control::Trace { trace_id, parent_span }) => {
                    // Causal context for the *next* data frame. Purely
                    // observational: no reply, no state change beyond
                    // remembering it for the frame that follows.
                    pending_trace = Some(sp_core::TraceContext { trace_id, parent_span });
                }
                WireFrame::Control(_) => {
                    // Clients only send Hello and Trace; anything else is
                    // a protocol violation.
                    state.protocol_errors.fetch_add(1, Ordering::SeqCst);
                    break 'conn;
                }
                WireFrame::Cipher(_) => {
                    // The plaintext front door holds no key material and
                    // cannot enforce on ciphertext — accepting it would
                    // mean forwarding tuples whose policy it cannot read.
                    // Fail closed: refuse the connection. (The crypto
                    // path has its own provider → relay → client plane;
                    // see sp-baselines::crypto_enforced.)
                    state.protocol_errors.fetch_add(1, Ordering::SeqCst);
                    break 'conn;
                }
            }
        }
        if dec.corrupted_frames > cfg.garbage_quarantine {
            // Past the garbage budget the client is treated as hostile:
            // its tenant session fails closed.
            if let Some(h) = tenant.as_ref() {
                let _ = h.tx.send(Cmd::Quarantine { code: QuarantineCode::Garbage });
                h.quarantined.store(true, Ordering::SeqCst);
            }
            let _ =
                write_ctrl(&mut stream, &Control::Quarantined { code: QuarantineCode::Garbage });
            break;
        }
    }
    state.corrupted_frames.fetch_add(dec.corrupted_frames, Ordering::SeqCst);
    state.conns.fetch_sub(1, Ordering::SeqCst);
}

impl ServerHandle {
    /// A live tenant report (None when the tenant has no session yet or
    /// its worker died).
    #[must_use]
    pub fn tenant_report(&self, tenant: u32) -> Option<TenantReport> {
        let h = {
            let map = unpoison(self.state.tenants.lock());
            map.get(&tenant).cloned()
        }?;
        let (tx, rx) = mpsc::sync_channel(1);
        h.tx.send(Cmd::Report { reply: tx }).ok()?;
        rx.recv_timeout(Duration::from_secs(5)).ok()
    }

    /// The merged metrics snapshot in Prometheus text exposition format.
    #[must_use]
    pub fn metrics_prometheus(&self) -> String {
        self.state.metrics().render_prometheus()
    }

    /// One tenant's merged span sheet (ingress + engine sections), live.
    #[must_use]
    pub fn tenant_spans(&self, tenant: u32) -> Option<sp_engine::SpanSheet> {
        self.state.tenant_spans(tenant)
    }

    /// Chrome trace-event JSON over every live tenant (what `/trace`
    /// serves).
    #[must_use]
    pub fn trace_json(&self) -> String {
        self.state.trace_json()
    }

    /// Human-readable audit + span-tree text over every live tenant
    /// (what `/audit` serves).
    #[must_use]
    pub fn audit_text(&self) -> String {
        self.state.audit_text()
    }

    /// True when this node was deposed by a newer fencing epoch.
    #[must_use]
    pub fn is_fenced(&self) -> bool {
        self.state.repl.fenced.load(Ordering::SeqCst)
    }

    /// This node's current fencing epoch.
    #[must_use]
    pub fn fencing_epoch(&self) -> u64 {
        self.state.repl.fencing_epoch.load(Ordering::SeqCst)
    }

    /// Per-tenant replication lag in epochs (shipped − acked), sorted
    /// by tenant. Empty without a standby.
    #[must_use]
    pub fn replication_lag(&self) -> Vec<(u32, u64)> {
        self.state.repl.lag_epochs()
    }

    /// Graceful drain: stop accepting, notify connections, checkpoint
    /// every tenant, join every thread, report.
    #[must_use]
    pub fn drain(mut self) -> DrainReport {
        self.finish(true)
    }

    /// Hard kill: stop everything *without* final checkpoints — the last
    /// periodic checkpoint stands, as after a crash. Tenant reports are
    /// not collected (a dead server reports nothing).
    #[must_use]
    pub fn kill(mut self) -> DrainReport {
        self.finish(false)
    }

    fn finish(&mut self, graceful: bool) -> DrainReport {
        if !graceful {
            // A crash takes the shipper with it: queued checkpoints and
            // fault-held frames are abandoned, not flushed.
            self.state.repl.killed.store(true, Ordering::SeqCst);
        }
        self.state.draining.store(true, Ordering::SeqCst);
        if let Some(j) = self.acceptor.take() {
            let _ = j.join();
        }
        for j in unpoison(self.conn_joins.lock()).drain(..) {
            let _ = j.join();
        }
        if let Some(j) = self.metrics_join.take() {
            let _ = j.join();
        }
        let handles: Vec<Arc<TenantHandle>> = {
            let mut map = unpoison(self.state.tenants.lock());
            map.drain().map(|(_, h)| h).collect()
        };
        let mut tenants = Vec::new();
        let mut clean = true;
        for h in handles {
            if graceful {
                let (tx, rx) = mpsc::sync_channel(1);
                if h.tx.send(Cmd::Drain { reply: tx }).is_ok() {
                    match rx.recv_timeout(Duration::from_secs(10)) {
                        Ok(report) => tenants.push(report),
                        Err(_) => clean = false,
                    }
                } else {
                    clean = false;
                }
            }
            // Dropping the handle closes the command channel; a killed
            // worker exits without checkpointing.
            let join = unpoison(h.join.lock()).take();
            drop(h);
            if let Some(j) = join {
                let _ = j.join();
            }
        }
        tenants.sort_by_key(|t| t.tenant);
        // Dropping the ship sender lets the shipper flush its queue of
        // final (drain-time) checkpoints, collect acks, and exit.
        drop(unpoison(self.state.ship_tx.lock()).take());
        if let Some(j) = self.shipper.take() {
            let _ = j.join();
        }
        let c = |v: &AtomicU64| v.load(Ordering::SeqCst);
        DrainReport {
            tenants,
            connections_total: c(&self.state.connections_total),
            conns_refused: c(&self.state.conns_refused),
            idle_reaped: c(&self.state.idle_reaped),
            protocol_errors: c(&self.state.protocol_errors),
            corrupted_frames: c(&self.state.corrupted_frames),
            frames: c(&self.state.frames),
            latency: unpoison(self.state.latency.lock()).clone(),
            clean: clean && graceful,
            fencing_epoch: self.state.repl.fencing_epoch.load(Ordering::SeqCst),
            fenced: self.state.repl.fenced.load(Ordering::SeqCst),
            repl_frames_shipped: c(&self.state.repl.frames_shipped),
        }
    }
}
