//! Failover chaos campaign: primary/standby replication under injected
//! failures.
//!
//! Every scenario kills (or deposes) a replicating primary at a hostile
//! moment — mid-epoch, mid-checkpoint-ship, with the link partitioned,
//! lagging, or duplicating frames — promotes the standby, and checks
//! the paper's guarantee survived the switch:
//!
//! * the promoted standby's released set is a suffix of (⊆) the
//!   unfailed baseline — failover may lose results, never leak them;
//! * its audit trail and policy-table bytes are *identical* to an
//!   unfailed control resumed from the same replicated checkpoint —
//!   replication adds no divergence on top of plain crash recovery;
//! * a fenced ex-primary releases **zero** further tuples (split-brain
//!   negative control), with in-flight refusals audited as
//!   `RecoveryFailClosed`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sp_core::{StreamElement, StreamId};
use sp_engine::{Checkpoint, CheckpointStore, LinkFaultPlan, MemStore, TelemetryConfig};
use sp_mog::{location_stream, MovingObjectSim, WorkloadConfig};
use sp_query::Dsms;
use sp_server::{
    ClientConfig, LoadClient, Server, ServerConfig, SessionFactory, Standby, StandbyHandle,
    StoreMap, TenantReport,
};

// ---------------------------------------------------------------- helpers

fn factory() -> SessionFactory {
    Arc::new(move |tenant: u32| {
        let mut dsms = Dsms::new();
        dsms.register_stream(StreamId(1), MovingObjectSim::location_schema()).unwrap();
        dsms.register_role("analyst").unwrap();
        let subject = dsms.register_subject(&format!("tenant-{tenant}"), &["analyst"]).unwrap();
        dsms.submit("SELECT obj_id, speed FROM LocationUpdates WHERE speed >= 5.0", subject)
            .unwrap();
        dsms.telemetry = Some(TelemetryConfig::enabled());
        dsms
    })
}

fn workload_input(seed: u64) -> Vec<(StreamId, StreamElement)> {
    let w = location_stream(&WorkloadConfig {
        objects: 40,
        ticks: 20,
        sp_every: 8,
        grant_selectivity: 0.6,
        seed,
        ..WorkloadConfig::default()
    });
    w.elements.into_iter().map(|e| (w.stream, e)).collect()
}

fn default_cfg() -> ServerConfig {
    ServerConfig { read_timeout_ms: 10, idle_timeout_ms: 5_000, ..ServerConfig::default() }
}

/// The full unfailed baseline: the whole input through one in-memory run.
fn baseline_released(
    f: &SessionFactory,
    tenant: u32,
    input: &[(StreamId, StreamElement)],
) -> Vec<(u32, Vec<String>)> {
    let dsms = f(tenant);
    let mut running = dsms.start();
    for (s, e) in input {
        let _ = running.try_push(*s, e.clone());
    }
    dsms.queries()
        .iter()
        .map(|q| (q.id.raw(), running.results(q.id).tuples().map(|t| t.to_string()).collect()))
        .collect()
}

/// What an unfailed node would produce from the replicated checkpoint:
/// resume from exactly the bytes the standby applied, replay the input
/// tail. Captures the released set, audit bytes, and the policy-table /
/// operator-state bytes of a fresh cut at the end.
struct Control {
    released: Vec<(u32, Vec<String>)>,
    audit: Vec<u8>,
    analyzers: Vec<Vec<u8>>,
    nodes: Vec<Vec<u8>>,
}

fn resume_control(
    f: &SessionFactory,
    tenant: u32,
    ckpt: Option<&Checkpoint>,
    input: &[(StreamId, StreamElement)],
) -> Control {
    let dsms = f(tenant);
    let mut store = MemStore::new();
    if let Some(c) = ckpt {
        store.save(c).unwrap();
    }
    let mut running = dsms.resume(&store).unwrap();
    let from = usize::try_from(running.input_pos()).unwrap().min(input.len());
    for (s, e) in &input[from..] {
        let _ = running.try_push(*s, e.clone());
    }
    let released = dsms
        .queries()
        .iter()
        .map(|q| (q.id.raw(), running.results(q.id).tuples().map(|t| t.to_string()).collect()))
        .collect();
    let audit = running.audit_trail().encode_to_vec();
    let mut cut = MemStore::new();
    running.checkpoint_to(u64::MAX, &mut cut).unwrap();
    let fin = cut.load_latest().unwrap();
    Control { released, audit, analyzers: fin.analyzers, nodes: fin.nodes }
}

/// The failed-over run leaked nothing and diverged nowhere: released and
/// audit ≡ the unfailed control (same resume, same replay), released ⊆
/// the full baseline (a suffix, per query).
fn assert_failover_invariants(
    label: &str,
    report: &TenantReport,
    control: &Control,
    full_baseline: &[(u32, Vec<String>)],
) {
    assert!(!report.quarantined, "{label}: promoted tenant must be live");
    assert_eq!(
        report.released, control.released,
        "{label}: promoted releases must equal the unfailed control"
    );
    assert_eq!(
        report.audit, control.audit,
        "{label}: audit trail must be byte-identical to the unfailed control"
    );
    assert_eq!(report.released.len(), full_baseline.len());
    for ((qid, got), (want_qid, want)) in report.released.iter().zip(full_baseline) {
        assert_eq!(qid, want_qid);
        assert!(
            want.ends_with(got),
            "{label}: query {qid} releases must be a suffix of the unfailed baseline \
             (got {} baseline {})",
            got.len(),
            want.len(),
        );
    }
}

/// Waits until the standby has applied a checkpoint epoch ≥ `min_epoch`
/// for `tenant` (replication is asynchronous).
fn wait_applied(standby: &StandbyHandle, tenant: u32, min_epoch: u64, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if standby.applied_epochs().iter().any(|(t, e)| *t == tenant && *e >= min_epoch) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes()).unwrap();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

/// Only the engine-recorded sections of a span sheet (the worker's
/// wire-frame ingress section depends on how the client chunked frames,
/// which an in-process control has no counterpart for).
fn engine_sections(sheet: &sp_engine::SpanSheet) -> sp_engine::SpanSheet {
    let mut out = sp_engine::SpanSheet::new();
    for (op, rec) in sheet.sections() {
        if op != sp_engine::AuditOp::Ingress {
            out.push_section(op, rec.clone());
        }
    }
    out
}

/// Total observations across every series of one lag-histogram family.
fn lag_count(text: &str, family: &str) -> u64 {
    let prefix = format!("{family}_count");
    text.lines()
        .filter(|l| l.starts_with(&prefix))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .sum::<f64>() as u64
}

// ------------------------------------------------------------------ tests

/// Clean replication: the standby converges to the primary's durable
/// state, lag reaches zero, and observability tells the story.
#[test]
fn standby_applies_shipped_checkpoints_and_reports_lag() {
    let f = factory();
    let input = workload_input(21);

    let standby = Standby::start(Arc::clone(&f), StoreMap::new(), true).unwrap();
    let cfg = ServerConfig {
        checkpoint_every_frames: 4,
        replicate_to: Some(standby.repl_addr),
        metrics: true,
        ..default_cfg()
    };
    let primary = Server::start(cfg, Arc::clone(&f), StoreMap::new()).unwrap();
    let r = LoadClient::new(ClientConfig::default()).run(primary.addr, &input);
    assert!(r.completed, "{r:?}");
    assert!(wait_applied(&standby, 0, 1, Duration::from_secs(10)), "standby never applied");

    // Observability: the primary is primary, the standby is standby.
    let pm = http_get(primary.metrics_addr.unwrap(), "/metrics");
    assert!(pm.contains("sp_server_role{role=\"primary\"} 1"), "{pm}");
    assert!(pm.contains("sp_server_fencing_epoch 1"), "{pm}");
    assert!(pm.contains("sp_server_fenced 0"), "{pm}");
    let sm = http_get(standby.metrics_addr.unwrap(), "/metrics");
    assert!(sm.contains("sp_server_role{role=\"standby\"} 1"), "{sm}");
    assert!(sm.contains("sp_server_repl_commits_applied_total"), "{sm}");
    let sh = http_get(standby.metrics_addr.unwrap(), "/healthz");
    assert!(sh.starts_with("HTTP/1.0 200"), "{sh}");

    // Drain ships the final checkpoint; the standby converges to the
    // primary's exact durable state.
    let report = primary.drain();
    assert!(report.clean);
    assert!(report.repl_frames_shipped > 0);
    assert!(!report.fenced);
    let t = report.tenant(0).unwrap();
    assert!(t.checkpoints_taken > 0);
    // Worker epochs are 1-based, so the drain checkpoint's epoch equals
    // the number of checkpoints taken.
    let final_epoch = t.checkpoints_taken;
    assert!(
        wait_applied(&standby, 0, final_epoch, Duration::from_secs(10)),
        "standby must converge to the drain checkpoint: applied {:?}, want epoch {final_epoch}",
        standby.applied_epochs(),
    );
    assert_eq!(standby.lag_epochs().iter().map(|(_, l)| *l).max().unwrap_or(0), 0);
    assert_eq!(standby.apply_failures(), 0);
    let replicated = standby.stores().store(0).load_latest().unwrap();
    assert_eq!(replicated.input_pos, input.len() as u64);
    standby.stop();
}

/// One full failover round: deliver part of the input, hard-kill the
/// primary at whatever moment the scenario dictates, promote the
/// standby, finish the run against it, and verify the invariants
/// against the replicated checkpoint.
fn failover_round(label: &str, seed: u64, cfg_mut: impl Fn(&mut ServerConfig)) {
    let f = factory();
    let input = workload_input(seed);
    let full_baseline = baseline_released(&f, 0, &input);

    let standby = Standby::start(Arc::clone(&f), StoreMap::new(), false).unwrap();
    let mut cfg = ServerConfig {
        checkpoint_every_frames: 4,
        replicate_to: Some(standby.repl_addr),
        ..default_cfg()
    };
    cfg_mut(&mut cfg);
    let primary = Server::start(cfg, Arc::clone(&f), StoreMap::new()).unwrap();

    // Kill mid-epoch: the client stops partway through the input,
    // between checkpoint boundaries, and the primary crashes.
    let part = &input[..input.len() * 2 / 3];
    let r1 = LoadClient::new(ClientConfig::default()).run(primary.addr, part);
    assert!(r1.completed, "{label}: {r1:?}");
    // Give asynchronous shipping a moment, then crash. How much actually
    // arrived is the scenario's business — partitions, lag, and the
    // mid-ship chaos knob may have eaten any amount of it.
    std::thread::sleep(Duration::from_millis(120));
    let killed = primary.kill();
    assert!(!killed.clean, "{label}: a kill is not a clean drain");

    // The replicated checkpoint as of the crash — exactly what the
    // promoted server will resume from (`stores()` shares the Arc the
    // promoted incarnation keeps using).
    let repl_stores = standby.stores();
    let replicated = repl_stores.store(0).load_latest();
    if let Some(c) = &replicated {
        assert!(
            c.input_pos <= part.len() as u64,
            "{label}: the standby cannot know a future the primary never had"
        );
    }
    let control = resume_control(&f, 0, replicated.as_ref(), &input);

    let promoted = standby.promote(default_cfg()).unwrap();
    let r2 = LoadClient::new(ClientConfig::default()).run(promoted.addr, &input);
    assert!(r2.completed, "{label}: client must finish against the promoted standby: {r2:?}");

    let report = promoted.drain();
    assert!(report.clean, "{label}");
    assert!(report.fencing_epoch >= 2, "{label}: promotion must raise the fencing epoch");
    assert!(!report.fenced, "{label}: the promoted node is primary, not deposed");
    let t = report.tenant(0).unwrap();
    assert_eq!(t.input_pos, input.len() as u64, "{label}: exactly-once across the switch");
    assert_failover_invariants(label, t, &control, &full_baseline);

    // Policy-table and operator-state bytes of the promoted node's final
    // (drain) checkpoint must match the unfailed control's cut.
    let final_ckpt = repl_stores.store(0).load_latest().unwrap();
    assert_eq!(
        final_ckpt.analyzers, control.analyzers,
        "{label}: policy-table bytes must match the unfailed control"
    );
    assert_eq!(
        final_ckpt.nodes, control.nodes,
        "{label}: operator-state bytes must match the unfailed control"
    );
}

#[test]
fn kill_primary_mid_epoch_standby_takes_over() {
    failover_round("mid-epoch", 22, |_| {});
}

#[test]
fn kill_primary_mid_checkpoint_ship() {
    // The link goes silent after a handful of frames: the last
    // checkpoint ships only partially and must never be applied — the
    // standby stands on the last fully-committed one.
    for stop_after in [3u64, 7, 13] {
        failover_round("mid-ship", 23, |cfg| {
            cfg.chaos_repl_stop_after_frames = stop_after;
            cfg.repl_chunk_bytes = 512; // many segments per checkpoint
        });
    }
}

#[test]
fn partitioned_lagging_duplicating_link_still_fails_over_safely() {
    for seed in [1u64, 2, 3, 4, 5] {
        failover_round("hostile-link", 24, |cfg| {
            cfg.repl_faults = Some(LinkFaultPlan::scenario(seed));
            cfg.repl_chunk_bytes = 1024;
        });
    }
}

/// An aggressively duplicating + lagging (reordering) link: commits
/// arrive twice and out of order. Applied state must stay monotone —
/// an old epoch arriving late is acked but never rolls back a newer one.
#[test]
fn duplicate_and_reordered_delivery_never_rolls_state_backwards() {
    let f = factory();
    let input = workload_input(25);
    let standby = Standby::start(Arc::clone(&f), StoreMap::new(), false).unwrap();
    let cfg = ServerConfig {
        checkpoint_every_frames: 2,
        replicate_to: Some(standby.repl_addr),
        repl_chunk_bytes: 64 * 1024, // one segment per checkpoint: lag reorders whole commits
        repl_faults: Some(LinkFaultPlan {
            seed: 99,
            partition: 0.0,
            partition_len: 0,
            lag: 0.5,
            lag_max: 6,
            duplicate: 0.8,
        }),
        ..default_cfg()
    };
    let primary = Server::start(cfg, Arc::clone(&f), StoreMap::new()).unwrap();
    let r = LoadClient::new(ClientConfig::default()).run(primary.addr, &input);
    assert!(r.completed, "{r:?}");
    let report = primary.drain();
    assert!(report.clean);
    let taken = report.tenant(0).unwrap().checkpoints_taken;
    assert!(taken > 4, "the run must checkpoint a lot: {taken}");
    assert!(
        wait_applied(&standby, 0, 1, Duration::from_secs(10)),
        "standby applied nothing: {:?}",
        standby.applied_epochs()
    );
    // Let stragglers and duplicates land, then check monotonicity held:
    // the store's latest checkpoint is the highest applied epoch — no
    // late duplicate rolled it back — and it resumes cleanly at a
    // position the primary actually checkpointed.
    std::thread::sleep(Duration::from_millis(200));
    let applied = standby.applied_epochs();
    let replicated = standby.stores().store(0).load_latest().unwrap();
    assert_eq!(
        applied,
        vec![(0, replicated.epoch)],
        "the store's latest checkpoint must be the highest applied epoch — no rollback"
    );
    let control = resume_control(&f, 0, Some(&replicated), &input);
    assert!(!control.released.is_empty());
    standby.stop();
}

/// Split-brain negative control: promote the standby while the primary
/// is alive. The deposed primary must fence itself the moment the
/// higher epoch reaches it: zero further releases, fenced healthz and
/// metrics, clients re-homed to the promoted node exactly-once.
#[test]
fn stale_primary_is_fenced_and_releases_nothing() {
    let f = factory();
    let input = workload_input(26);
    let full_baseline = baseline_released(&f, 0, &input);

    let standby = Standby::start(Arc::clone(&f), StoreMap::new(), false).unwrap();
    let cfg = ServerConfig {
        checkpoint_every_frames: 4,
        replicate_to: Some(standby.repl_addr),
        metrics: true,
        ..default_cfg()
    };
    let primary = Server::start(cfg, Arc::clone(&f), StoreMap::new()).unwrap();

    // Deliver part of the stream, let replication catch up.
    let half = &input[..input.len() / 2];
    let r1 = LoadClient::new(ClientConfig::default()).run(primary.addr, half);
    assert!(r1.completed, "{r1:?}");
    assert!(wait_applied(&standby, 0, 1, Duration::from_secs(10)));

    // Promote while the primary is alive and its replication link is up:
    // the standby writes the Fence straight onto that link.
    let replicated = standby.stores().store(0).load_latest();
    let control = resume_control(&f, 0, replicated.as_ref(), &input);
    let promoted = standby.promote(default_cfg()).unwrap();

    // The deposed primary must notice and fail closed.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !primary.is_fenced() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(primary.is_fenced(), "the deposed primary must fence itself");
    assert!(primary.fencing_epoch() >= 2);
    let health = http_get(primary.metrics_addr.unwrap(), "/healthz");
    assert!(health.contains("503"), "fenced node must be unhealthy: {health}");
    assert!(health.contains("fenced"), "{health}");
    let pm = http_get(primary.metrics_addr.unwrap(), "/metrics");
    assert!(pm.contains("sp_server_role{role=\"fenced\"} 1"), "{pm}");
    assert!(pm.contains("sp_server_fenced 1"), "{pm}");

    // Negative control: hammer the fenced primary with the rest of the
    // input — it must refuse the stream and release nothing new.
    let at_fence = primary.tenant_report(0).unwrap();
    let rude = LoadClient::new(ClientConfig { max_reconnects: 2, ..ClientConfig::default() })
        .run(primary.addr, &input);
    assert!(!rude.completed, "a fenced node must not accept the stream: {rude:?}");
    let after = primary.tenant_report(0).unwrap();
    assert_eq!(after.input_pos, at_fence.input_pos, "fenced node consumed input");
    assert_eq!(after.released, at_fence.released, "fenced node released tuples after deposal");

    // A failover-aware client re-homes and finishes exactly-once.
    let r2 = LoadClient::new(ClientConfig {
        failover: Some(promoted.addr),
        connect_patience_ms: 3_000,
        ..ClientConfig::default()
    })
    .run(primary.addr, &input);
    assert!(r2.completed, "failover client must finish on the promoted node: {r2:?}");
    assert_eq!(r2.failovers, 1, "{r2:?}");

    // The deposed primary's post-mortem shows the deposal.
    let dead = primary.drain();
    assert!(dead.fenced);
    assert!(dead.fencing_epoch >= 2);
    let t_dead = dead.tenant(0).unwrap();
    assert_eq!(t_dead.released, at_fence.released, "zero releases after the fence");

    // And the promoted node carries the stream to completion correctly.
    let report = promoted.drain();
    assert!(report.clean);
    let t = report.tenant(0).unwrap();
    assert_eq!(t.input_pos, input.len() as u64);
    assert_failover_invariants("split-brain", t, &control, &full_baseline);
}

/// sp-trace across failover: one client-submitted stream is traceable
/// end-to-end on the primary (wire frame → analyzer decision → shield
/// enforcement → verdict), the standby records a deterministic apply
/// span per committed epoch, and after promotion the replayed suffix's
/// span tree and enforcement-lag histograms are *identical* to an
/// unfailed control resumed from the same replicated checkpoint.
#[test]
fn failover_preserves_span_trees_and_enforcement_lag() {
    use sp_core::trace::{site, span_id, trace_id_for_checkpoint};

    let f = factory();
    let input = workload_input(28);

    let standby = Standby::start(Arc::clone(&f), StoreMap::new(), true).unwrap();
    let cfg = ServerConfig {
        checkpoint_every_frames: 4,
        replicate_to: Some(standby.repl_addr),
        metrics: true,
        ..default_cfg()
    };
    let primary = Server::start(cfg, Arc::clone(&f), StoreMap::new()).unwrap();

    let part = &input[..input.len() * 2 / 3];
    let r1 = LoadClient::new(ClientConfig::default()).run(primary.addr, part);
    assert!(r1.completed, "{r1:?}");
    assert!(wait_applied(&standby, 0, 1, Duration::from_secs(10)), "standby never applied");

    // End-to-end on the live primary: the merged span sheet carries the
    // whole enforcement path, causally linked.
    let sheet = primary.tenant_spans(0).unwrap();
    let spans: Vec<sp_engine::SpanRecord> = sheet.records().map(|(_, r)| *r).collect();
    let has = |s: u8| spans.iter().any(|r| r.site == s);
    for s in [site::WIRE_FRAME, site::ANALYZE, site::SHIELD_ENFORCE] {
        assert!(has(s), "missing {} spans", site::name(s));
    }
    assert!(has(site::RELEASE) || has(site::SUPPRESS), "no verdict spans recorded");
    for r in &spans {
        match r.site {
            // The client stamped every frame, so no ingress span is a
            // root: each hangs off the client's submit span.
            site::WIRE_FRAME => assert_ne!(r.parent, 0, "ingress span lost its client root"),
            // An sp's analyze span hangs off the wire frame that
            // carried it; enforcement hangs off the decision.
            site::ANALYZE => assert_eq!(r.parent, span_id(r.trace_id, site::WIRE_FRAME)),
            site::SHIELD_ENFORCE => assert_eq!(r.parent, span_id(r.trace_id, site::ANALYZE)),
            _ => {}
        }
    }

    // The same story over HTTP, next to /metrics.
    let tj = http_get(primary.metrics_addr.unwrap(), "/trace");
    assert!(tj.contains("traceEvents"), "{tj}");
    for name in ["wire_frame", "analyze", "shield_enforce"] {
        assert!(tj.contains(name), "/trace is missing {name} lanes");
    }
    assert!(http_get(primary.metrics_addr.unwrap(), "/audit").contains("-- spans --"));
    let pm = http_get(primary.metrics_addr.unwrap(), "/metrics");
    assert!(lag_count(&pm, "sp_enforce_lag_ms") > 0, "no enforcement-lag observations: {pm}");

    // Crash the primary mid-run.
    std::thread::sleep(Duration::from_millis(120));
    assert!(!primary.kill().clean);

    // The standby traced every commit it applied — deterministically:
    // trace id derived from (tenant, epoch), stamped with the epoch
    // itself, never wall clock.
    let s_sheet = standby.span_sheet();
    let applies: Vec<sp_engine::SpanRecord> =
        s_sheet.records().filter(|(_, r)| r.site == site::STANDBY_APPLY).map(|(_, r)| *r).collect();
    assert!(!applies.is_empty(), "standby applied commits but traced none");
    for r in &applies {
        assert_eq!(r.trace_id, trace_id_for_checkpoint(0, r.ts));
        assert_eq!(r.parent, 0, "apply spans are roots of the replication trace");
    }
    assert!(http_get(standby.metrics_addr.unwrap(), "/trace").contains("standby_apply"));

    // Unfailed control: resume from the very checkpoint the standby
    // holds, replay the tail in-process, capture spans + lag.
    let replicated = standby.stores().store(0).load_latest();
    let (control_spans, control_metrics) = {
        let dsms = f(0);
        let mut store = MemStore::new();
        if let Some(c) = &replicated {
            store.save(c).unwrap();
        }
        let mut running = {
            let mut running = dsms.resume(&store).unwrap();
            let from = usize::try_from(running.input_pos()).unwrap().min(input.len());
            for (s, e) in &input[from..] {
                let _ = running.try_push(*s, e.clone());
            }
            running
        };
        (running.span_sheet(), running.metrics_prometheus())
    };

    // Promote and finish the run against the standby.
    let promoted = standby.promote(ServerConfig { metrics: true, ..default_cfg() }).unwrap();
    let r2 = LoadClient::new(ClientConfig::default()).run(promoted.addr, &input);
    assert!(r2.completed, "{r2:?}");

    // The promoted node's engine span tree for the replayed suffix is
    // byte-identical to the unfailed control's, and its wire-frame
    // ingress section ties that replay back to client frames.
    let p_sheet = promoted.tenant_spans(0).unwrap();
    assert!(p_sheet.sections().any(|(op, _)| op == sp_engine::AuditOp::Ingress));
    assert_eq!(
        engine_sections(&p_sheet).encode_to_vec(),
        control_spans.encode_to_vec(),
        "promoted span tree diverged from the unfailed control"
    );

    // Enforcement-lag histograms agree observation-for-observation.
    let pm2 = http_get(promoted.metrics_addr.unwrap(), "/metrics");
    for fam in ["sp_enforce_lag_ms", "sp_first_release_lag_ms", "sp_suppress_lag_ms"] {
        assert_eq!(
            lag_count(&pm2, fam),
            lag_count(&control_metrics, fam),
            "{fam} diverged across failover"
        );
    }
    assert!(lag_count(&pm2, "sp_enforce_lag_ms") > 0);
    assert!(promoted.drain().clean);
}

/// The worker-level fail-closed gate: a deposing epoch lands while a
/// frame is already past the connection-level fence check (the
/// `chaos_fence_at_frame` knob makes that race deterministic). The
/// frame's elements must be refused, counted, and audited as
/// `RecoveryFailClosed` — never fed to the engine.
#[test]
fn fence_racing_an_in_flight_frame_fails_closed_and_audits() {
    let f = factory();
    let input = workload_input(27);
    let full_baseline = baseline_released(&f, 0, &input);

    let cfg = ServerConfig { chaos_fence_at_frame: 5, ..default_cfg() };
    let handle = Server::start(cfg, Arc::clone(&f), StoreMap::new()).unwrap();
    let r = LoadClient::new(ClientConfig::default()).run(handle.addr, &input);
    assert!(!r.completed, "the fence must cut the session short: {r:?}");
    assert!(handle.is_fenced());

    let pos_at_fence = handle.tenant_report(0).unwrap().input_pos;
    let dead = handle.drain();
    assert!(dead.fenced);
    let t = dead.tenant(0).unwrap();
    assert!(t.fenced_refused > 0, "the in-flight frame's elements must be refused: {t:?}");
    assert!(!t.fence_audit.is_empty(), "refusals must be audited (RecoveryFailClosed)");
    assert_eq!(t.input_pos, pos_at_fence, "nothing consumed after the fence");
    // Fail closed, not open: everything released before the fence is a
    // prefix of the baseline — the refused elements leaked nothing.
    for ((qid, got), (want_qid, want)) in t.released.iter().zip(&full_baseline) {
        assert_eq!(qid, want_qid);
        assert!(
            want.starts_with(got),
            "query {qid}: pre-fence releases must be a prefix of the baseline"
        );
    }
}
