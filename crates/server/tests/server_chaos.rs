//! Chaos suite for the network front door.
//!
//! Every test compares a server round-trip against the same session run
//! in memory, under some combination of socket-level faults: torn
//! frames, injected garbage, byte corruption, stalls, mid-stream
//! disconnects, reconnect storms, worker panics, and hard server kills.
//!
//! The invariants are the paper's, lifted to the transport:
//!
//! * **fail closed** — the released set under faults is a subset of the
//!   fault-free baseline; corruption can lose results, never leak them;
//! * **tenant isolation** — a misbehaving client perturbs only its own
//!   tenant, byte-for-byte;
//! * **exactly-once** — reconnect storms and kill/resume reproduce the
//!   baseline exactly (and deterministically), never duplicating or
//!   inventing releases.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use sp_core::wire::Message;
use sp_core::{QuarantineCode, StreamElement, StreamId};
use sp_engine::{
    AdmissionConfig, SocketEvent, SocketFaultInjector, SocketFaultPlan, TelemetryConfig,
};
use sp_mog::{location_stream, MovingObjectSim, WorkloadConfig};
use sp_query::Dsms;
use sp_server::{
    ChaosPanic, ClientConfig, LoadClient, Server, ServerConfig, SessionFactory, StoreMap,
};

// ---------------------------------------------------------------- helpers

/// A per-tenant session over the moving-objects stream: one analyst
/// query, telemetry on, optional stream-time admission control.
fn factory(tokens_per_sec: Option<u64>) -> SessionFactory {
    Arc::new(move |tenant: u32| {
        let mut dsms = Dsms::new();
        dsms.register_stream(StreamId(1), MovingObjectSim::location_schema()).unwrap();
        dsms.register_role("analyst").unwrap();
        let subject = dsms.register_subject(&format!("tenant-{tenant}"), &["analyst"]).unwrap();
        dsms.submit("SELECT obj_id, speed FROM LocationUpdates WHERE speed >= 5.0", subject)
            .unwrap();
        dsms.admission = tokens_per_sec.map(|tps| AdmissionConfig {
            tokens_per_sec: tps,
            burst: 32,
            enqueue_deadline_ms: 20,
        });
        dsms.telemetry = Some(TelemetryConfig::enabled());
        dsms
    })
}

fn workload_input(seed: u64) -> Vec<(StreamId, StreamElement)> {
    let w = location_stream(&WorkloadConfig {
        objects: 40,
        ticks: 20,
        sp_every: 8,
        grant_selectivity: 0.6,
        seed,
        ..WorkloadConfig::default()
    });
    w.elements.into_iter().map(|e| (w.stream, e)).collect()
}

struct Baseline {
    released: Vec<(u32, Vec<String>)>,
    audit: Vec<u8>,
}

/// The fault-free in-memory run the server must reproduce (or release a
/// subset of, under faults).
fn baseline(
    factory: &SessionFactory,
    tenant: u32,
    input: &[(StreamId, StreamElement)],
) -> Baseline {
    let dsms = factory(tenant);
    let mut running = dsms.start();
    for (s, e) in input {
        let _ = running.try_push(*s, e.clone());
    }
    let released = dsms
        .queries()
        .iter()
        .map(|q| (q.id.raw(), running.results(q.id).tuples().map(|t| t.to_string()).collect()))
        .collect();
    Baseline { released, audit: running.audit_trail().encode_to_vec() }
}

fn released_sets(released: &[(u32, Vec<String>)]) -> Vec<HashSet<&str>> {
    released.iter().map(|(_, v)| v.iter().map(String::as_str).collect()).collect()
}

fn default_cfg() -> ServerConfig {
    ServerConfig { read_timeout_ms: 10, idle_timeout_ms: 5_000, ..ServerConfig::default() }
}

// ------------------------------------------------------------------ tests

#[test]
fn clean_loopback_matches_in_memory_baseline() {
    let f = factory(None);
    let input = workload_input(11);
    let want = baseline(&f, 0, &input);

    let handle = Server::start(default_cfg(), Arc::clone(&f), StoreMap::new()).unwrap();
    let r = LoadClient::new(ClientConfig::default()).run(handle.addr, &input);
    assert!(r.completed, "client must deliver everything: {r:?}");
    assert!(r.quarantined.is_none());

    let report = handle.drain();
    assert!(report.clean);
    let t = report.tenant(0).expect("tenant 0 drained");
    assert_eq!(t.input_pos, input.len() as u64);
    assert_eq!(t.released, want.released, "loopback must reproduce the in-memory run");
    assert_eq!(t.audit, want.audit, "audit trail must be byte-identical");
    assert!(!t.audit.is_empty(), "telemetry was on; the trail must be non-trivial");
}

#[test]
fn sharded_tenants_match_in_memory_baseline() {
    let f = factory(None);
    let input = workload_input(19);
    // The sharded session instantiates its selections eagerly, so the
    // reference is the same factory started sharded at width 1 — the
    // released set and audit trail are invariant across widths.
    let want = {
        let mut dsms = f(0);
        dsms.shards = 2;
        let mut running = dsms.try_start().unwrap();
        for (s, e) in &input {
            let _ = running.try_push(*s, e.clone());
        }
        let released: Vec<(u32, Vec<String>)> = dsms
            .queries()
            .iter()
            .map(|q| (q.id.raw(), running.results(q.id).tuples().map(|t| t.to_string()).collect()))
            .collect();
        Baseline { released, audit: running.audit_trail().encode_to_vec() }
    };
    // Tuples released must also equal the plain sequential session's.
    let seq = baseline(&f, 0, &input);
    assert_eq!(released_sets(&want.released), released_sets(&seq.released));

    let cfg = ServerConfig { shards: 4, checkpoint_every_frames: 3, ..default_cfg() };
    let stores = StoreMap::new();
    let handle = Server::start(cfg, Arc::clone(&f), stores.clone()).unwrap();
    let r = LoadClient::new(ClientConfig::default()).run(handle.addr, &input);
    assert!(r.completed, "client must deliver everything: {r:?}");
    let report = handle.drain();
    assert!(report.clean);
    let t = report.tenant(0).expect("tenant 0 drained");
    assert_eq!(t.released, want.released, "4-shard server must match the 2-shard run");
    assert_eq!(t.audit, want.audit, "audit trail must be byte-identical across widths");

    // The drained checkpoint was cut at 4 shards; a new server at a
    // different width resumes from it (re-shard on resume).
    let handle2 =
        Server::start(ServerConfig { shards: 2, ..default_cfg() }, Arc::clone(&f), stores).unwrap();
    let r2 = LoadClient::new(ClientConfig::default()).run(handle2.addr, &input);
    assert!(
        r2.completed && r2.quarantined.is_none(),
        "re-sharded resume must accept input: {r2:?}"
    );
    let report2 = handle2.drain();
    assert!(report2.clean);
}

#[test]
fn sharded_server_quarantines_unshardable_plans() {
    // A join needs the whole stream: the sharded builder refuses it, and
    // the tenant must start quarantined (fail closed) — not run it wrong.
    let f: SessionFactory = Arc::new(move |tenant: u32| {
        let mut dsms = Dsms::new();
        dsms.register_stream(StreamId(1), MovingObjectSim::location_schema()).unwrap();
        dsms.register_stream(
            StreamId(2),
            sp_core::Schema::of(
                "Regions",
                &[("obj_id", sp_core::ValueType::Int), ("region", sp_core::ValueType::Int)],
            ),
        )
        .unwrap();
        dsms.register_role("analyst").unwrap();
        let subject = dsms.register_subject(&format!("tenant-{tenant}"), &["analyst"]).unwrap();
        dsms.submit(
            "SELECT a.obj_id FROM LocationUpdates [RANGE 10 SECONDS] AS a, \
             Regions [RANGE 10 SECONDS] AS b WHERE a.obj_id = b.obj_id",
            subject,
        )
        .unwrap();
        dsms
    });
    let input = workload_input(23);
    let cfg = ServerConfig { shards: 4, ..default_cfg() };
    let handle = Server::start(cfg, Arc::clone(&f), StoreMap::new()).unwrap();
    let r = LoadClient::new(ClientConfig::default()).run(handle.addr, &input);
    assert_eq!(r.quarantined, Some(QuarantineCode::ResumeFailed), "{r:?}");
    let report = handle.drain();
    let t = report.tenant(0).expect("tenant 0 reported");
    assert_eq!(t.quarantine_code, Some(QuarantineCode::ResumeFailed));
    assert!(t.released.iter().all(|(_, v)| v.is_empty()), "a refused plan releases nothing");
}

#[test]
fn reconnect_storm_is_exactly_once() {
    let f = factory(None);
    let input = workload_input(12);
    let want = baseline(&f, 0, &input);

    let handle = Server::start(default_cfg(), Arc::clone(&f), StoreMap::new()).unwrap();
    let r = LoadClient::new(ClientConfig {
        disconnect_every_frames: 3,
        max_reconnects: 256,
        ..ClientConfig::default()
    })
    .run(handle.addr, &input);
    assert!(r.completed, "storming client must still deliver everything: {r:?}");
    assert!(r.reconnects >= 10, "the storm must actually storm: {r:?}");

    let report = handle.drain();
    let t = report.tenant(0).unwrap();
    // Connection churn never touches the engine: byte-identical, not
    // merely a subset.
    assert_eq!(t.released, want.released);
    assert_eq!(t.audit, want.audit, "audit must be byte-identical across a reconnect storm");
    assert_eq!(t.input_pos, input.len() as u64, "cursor replay must deliver exactly once");
}

/// Writes a scripted byte delivery (tearing, garbage, corruption,
/// stalls, possibly a mid-delivery disconnect) for one tenant, after a
/// clean handshake. Returns once the script ends or the server closes.
fn raw_faulty_client(addr: std::net::SocketAddr, tenant: u32, payload: &[u8], seed: u64) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_millis(10))).unwrap();
    stream.write_all(&sp_core::Control::Hello { tenant, acked: 0 }.encode_to_vec()).unwrap();
    let mut injector = SocketFaultInjector::new(SocketFaultPlan::scenario(seed));
    let mut sink = [0u8; 4096];
    for event in injector.deliver(payload) {
        match event {
            SocketEvent::Deliver(chunk) => {
                if stream.write_all(&chunk).is_err() {
                    return; // server closed (e.g. quarantine) — fine
                }
                let _ = stream.read(&mut sink); // drain replies, ignore
            }
            SocketEvent::StallMs(ms) => std::thread::sleep(Duration::from_millis(ms.min(30))),
            SocketEvent::Disconnect => return,
        }
    }
}

#[test]
fn torn_frames_and_garbage_release_a_subset() {
    let f = factory(None);
    let input = workload_input(13);
    let want = baseline(&f, 0, &input);
    let want_sets = released_sets(&want.released);

    // One contiguous byte payload: every element framed in small batches.
    let mut payload = Vec::new();
    for chunk in input.chunks(8) {
        let msg = Message {
            stream: chunk[0].0,
            elements: chunk.iter().map(|(_, e)| e.clone()).collect(),
        };
        payload.extend_from_slice(&msg.encode_to_vec());
    }

    for seed in [1u64, 2, 3, 4] {
        let cfg = ServerConfig { garbage_quarantine: 1_000, ..default_cfg() };
        let handle = Server::start(cfg, Arc::clone(&f), StoreMap::new()).unwrap();
        raw_faulty_client(handle.addr, 0, &payload, seed);
        let report = handle.drain();
        let t = report.tenant(0).expect("tenant 0 existed");
        let got_sets = released_sets(&t.released);
        assert_eq!(got_sets.len(), want_sets.len());
        for (got, want) in got_sets.iter().zip(&want_sets) {
            let leaked: Vec<&&str> = got.difference(want).collect();
            assert!(
                leaked.is_empty(),
                "seed {seed}: corruption leaked {} tuple(s) the clean run withheld: {leaked:?}",
                leaked.len(),
            );
        }
    }
}

#[test]
fn panicking_tenant_quarantines_only_itself() {
    let f = factory(None);
    let input = workload_input(14);
    let want = baseline(&f, 0, &input);

    let cfg =
        ServerConfig { chaos_panic: Some(ChaosPanic { tenant: 1, at_pos: 100 }), ..default_cfg() };
    let handle = Server::start(cfg, Arc::clone(&f), StoreMap::new()).unwrap();

    let addr = handle.addr;
    let input0 = input.clone();
    let healthy = std::thread::spawn(move || {
        LoadClient::new(ClientConfig { tenant: 0, ..ClientConfig::default() }).run(addr, &input0)
    });
    let victim =
        LoadClient::new(ClientConfig { tenant: 1, ..ClientConfig::default() }).run(addr, &input);
    let healthy = healthy.join().unwrap();

    assert_eq!(victim.quarantined, Some(QuarantineCode::Panicked), "{victim:?}");
    assert!(!victim.completed);
    assert!(healthy.completed, "the neighbor must be untouched: {healthy:?}");

    let report = handle.drain();
    let t0 = report.tenant(0).unwrap();
    assert!(!t0.quarantined);
    assert_eq!(t0.released, want.released, "neighbor releases must be byte-identical");
    assert_eq!(t0.audit, want.audit, "neighbor audit must be byte-identical");
    let t1 = report.tenant(1).unwrap();
    assert!(t1.quarantined);
    assert_eq!(t1.quarantine_code, Some(QuarantineCode::Panicked));
    // Fail closed: the quarantined session reports no releases at all —
    // its untrusted post-panic state was dropped, not consulted.
    assert!(t1.released.is_empty());
}

#[test]
fn garbage_spewing_client_quarantines_only_its_tenant() {
    let f = factory(None);
    let input = workload_input(15);
    let want = baseline(&f, 0, &input);

    // A tight garbage budget so the spewer trips it quickly.
    let cfg = ServerConfig { garbage_quarantine: 3, ..default_cfg() };
    let handle = Server::start(cfg, Arc::clone(&f), StoreMap::new()).unwrap();

    let addr = handle.addr;
    let input0 = input.clone();
    let healthy = std::thread::spawn(move || {
        LoadClient::new(ClientConfig { tenant: 0, ..ClientConfig::default() }).run(addr, &input0)
    });

    // Tenant 7: handshake, then pure byte garbage with embedded fake
    // magics and lying lengths.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&sp_core::Control::Hello { tenant: 7, acked: 0 }.encode_to_vec()).unwrap();
        let mut garbage = Vec::new();
        let mut x = 0xDEAD_BEEFu64;
        for _ in 0..32 * 1024 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            garbage.push((x >> 33) as u8);
        }
        let _ = stream.write_all(&garbage);
        let mut sink = [0u8; 4096];
        stream.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        let _ = stream.read(&mut sink);
    }

    let healthy = healthy.join().unwrap();
    assert!(healthy.completed, "{healthy:?}");

    let report = handle.drain();
    assert!(report.corrupted_frames > 3, "the garbage must have registered");
    let t0 = report.tenant(0).unwrap();
    assert!(!t0.quarantined);
    assert_eq!(t0.released, want.released);
    assert_eq!(t0.audit, want.audit);
    let t7 = report.tenant(7).unwrap();
    assert!(t7.quarantined, "the spewer's tenant must fail closed");
    assert_eq!(t7.quarantine_code, Some(QuarantineCode::Garbage));
}

/// One full kill/resume round: deliver through `cut` frames, hard-kill,
/// restart over the same stores, let the client finish. Returns the
/// final tenant report.
fn kill_resume_round(
    f: &SessionFactory,
    input: &[(StreamId, StreamElement)],
) -> sp_server::TenantReport {
    let stores = StoreMap::new();
    let cfg = ServerConfig { checkpoint_every_frames: 4, ..default_cfg() };

    // Phase 1: deliver roughly half, then hard-kill the server.
    let handle = Server::start(cfg, Arc::clone(f), stores.clone()).unwrap();
    let half = &input[..input.len() / 2];
    let r1 = LoadClient::new(ClientConfig::default()).run(handle.addr, half);
    assert!(r1.completed, "{r1:?}");
    let killed = handle.kill();
    assert!(!killed.clean, "a kill is not a clean drain");

    // Phase 2: a new incarnation over the same stores; the client offers
    // the full input and the HelloAck cursor says where to resume.
    let handle = Server::start(cfg, Arc::clone(f), stores).unwrap();
    let r2 = LoadClient::new(ClientConfig::default()).run(handle.addr, input);
    assert!(r2.completed, "{r2:?}");
    let report = handle.drain();
    assert!(report.clean);
    report.tenant(0).unwrap().clone()
}

#[test]
fn kill_and_resume_reproduces_the_baseline_exactly() {
    let f = factory(None);
    let input = workload_input(16);
    let want = baseline(&f, 0, &input);

    let got = kill_resume_round(&f, &input);
    assert!(!got.quarantined);
    assert_eq!(got.input_pos, input.len() as u64, "no duplicates, no holes");
    assert!(got.checkpoints_taken > 0);
    // Recovery may lose results (the restored sink starts empty) but can
    // never invent or reorder them: policy state is restored byte-exactly
    // and replay is deterministic, so what the resumed session released
    // is exactly a suffix of the uninterrupted run's release sequence.
    assert_eq!(got.released.len(), want.released.len());
    for ((qid, got_seq), (want_qid, want_seq)) in got.released.iter().zip(&want.released) {
        assert_eq!(qid, want_qid);
        assert!(
            want_seq.ends_with(got_seq),
            "query {qid}: resumed releases must be a suffix of the baseline \
             (got {} baseline {})",
            got_seq.len(),
            want_seq.len(),
        );
        assert!(!got_seq.is_empty(), "the replayed tail must release something");
    }

    // And the whole chaotic scenario is deterministic: a second
    // identical kill/resume round produces a byte-identical audit trail.
    let again = kill_resume_round(&f, &input);
    assert_eq!(again.released, got.released);
    assert_eq!(again.audit, got.audit, "kill/resume must be deterministic, byte for byte");
}

#[test]
fn non_backing_off_client_is_shed_not_serviced() {
    // Tight stream-time admission: 200 tuples/s sustained. A client that
    // honors retry hints advances its virtual stream clock by each
    // backoff, refilling the bucket; a client that ignores hints hammers
    // the same stream-second and must lose tuples to shedding.
    let f = factory(Some(200));
    let input = workload_input(17);

    let run = |honor: bool, tenant: u32, addr| {
        LoadClient::new(ClientConfig {
            tenant,
            honor_retry_hints: honor,
            restamp_tick_ms: 1,
            frame_elements: 8,
            ..ClientConfig::default()
        })
        .run(addr, &input)
    };

    let handle = Server::start(default_cfg(), Arc::clone(&f), StoreMap::new()).unwrap();
    let polite = run(true, 0, handle.addr);
    let rude = run(false, 1, handle.addr);
    let report = handle.drain();

    assert!(polite.overloads > 0, "the limit must actually bind: {polite:?}");
    assert!(polite.backoff_events > 0);
    assert!(polite.completed);
    assert!(rude.completed, "the rude client finishes — by losing data, not gaining service");

    let t_polite = report.tenant(0).unwrap();
    let t_rude = report.tenant(1).unwrap();
    assert!(t_rude.admission_rejected > 0, "ignoring hints must cost tuples: {t_rude:?}");
    assert!(
        t_rude.admission_rejected * 2 > 800,
        "the rude client must lose most of its data: {t_rude:?}"
    );
    assert!(
        t_polite.admission_rejected * 2 < t_rude.admission_rejected,
        "backing off must pay: polite lost {} vs rude {}",
        t_polite.admission_rejected,
        t_rude.admission_rejected,
    );
    assert!(t_polite.tuples_ingested > t_rude.tuples_ingested);
    // Sps are never shed for either tenant: policy outruns load shedding.
    assert_eq!(t_polite.sps_ingested, t_rude.sps_ingested);
}

#[test]
fn idle_connection_is_reaped_and_partial_frame_cannot_stall() {
    let cfg = ServerConfig { read_timeout_ms: 10, idle_timeout_ms: 80, ..ServerConfig::default() };
    let handle = Server::start(cfg, factory(None), StoreMap::new()).unwrap();

    // An idle connection and a connection holding a partial frame with a
    // header that promises more bytes than ever arrive.
    let idle = TcpStream::connect(handle.addr).unwrap();
    let mut partial = TcpStream::connect(handle.addr).unwrap();
    partial.write_all(&sp_core::Control::Hello { tenant: 0, acked: 0 }.encode_to_vec()).unwrap();
    let msg = Message { stream: StreamId(1), elements: Vec::new() }.encode_to_vec();
    partial.write_all(&msg[..msg.len().min(6)]).unwrap(); // header only

    // Both must be closed by the idle deadline, not held forever.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut buf = [0u8; 256];
    partial.set_read_timeout(Some(Duration::from_millis(100))).unwrap();
    loop {
        match partial.read(&mut buf) {
            Ok(0) => break, // reaped
            Ok(_) => {}
            Err(_) if std::time::Instant::now() > deadline => {
                panic!("partial frame stalled past the idle deadline")
            }
            Err(_) => {}
        }
    }
    drop(idle);

    let report = handle.drain();
    assert!(report.idle_reaped >= 1, "{report:?}");
}

#[test]
fn connection_cap_refuses_loudly() {
    let cfg = ServerConfig { max_conns: 1, ..default_cfg() };
    let handle = Server::start(cfg, factory(None), StoreMap::new()).unwrap();

    // Occupy the only slot.
    let mut first = TcpStream::connect(handle.addr).unwrap();
    first.write_all(&sp_core::Control::Hello { tenant: 0, acked: 0 }.encode_to_vec()).unwrap();
    let mut buf = [0u8; 256];
    first.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
    let _ = first.read(&mut buf); // HelloAck

    // The second connection gets an explicit Overloaded, not silence.
    let mut second = TcpStream::connect(handle.addr).unwrap();
    second.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
    let mut dec = sp_core::StreamDecoder::new(1 << 16);
    let mut got_hint = false;
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    while std::time::Instant::now() < deadline && !got_hint {
        match second.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                for frame in dec.feed(&buf[..n]) {
                    if let sp_core::WireFrame::Control(sp_core::Control::Overloaded {
                        retry_after_ms,
                        ..
                    }) = frame
                    {
                        assert!(retry_after_ms > 0);
                        got_hint = true;
                    }
                }
            }
            Err(_) => {}
        }
    }
    assert!(got_hint, "the cap must refuse with a retry hint");
    drop(first);
    drop(second);
    let report = handle.drain();
    assert!(report.conns_refused >= 1);
}
