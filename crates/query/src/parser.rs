//! Recursive-descent parser for the CQL subset and `INSERT SP` (§III-D).

use sp_core::Sign;
use sp_engine::AggFunc;

use crate::ast::{AstExpr, ColumnRef, InsertSpStmt, SelectItem, SelectStmt, Statement, StreamRef};
use crate::lexer::{lex, QueryError, Sym, Token};

/// Parses one statement.
///
/// # Errors
///
/// Returns a [`QueryError`] describing the first syntax problem.
pub fn parse(src: &str) -> Result<Statement, QueryError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = if p.peek_kw("SELECT") {
        Statement::Select(p.select()?)
    } else if p.peek_kw("INSERT") {
        Statement::InsertSp(p.insert_sp()?)
    } else {
        return Err(p.err("expected SELECT or INSERT SP"));
    };
    p.eat_sym(Sym::Semi);
    if !p.at_end() {
        return Err(p.err("unexpected trailing tokens"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: &str) -> QueryError {
        QueryError::new(
            match self.tokens.get(self.pos) {
                Some(t) => format!("{msg} (found {t})"),
                None => format!("{msg} (at end of input)"),
            },
            self.pos,
        )
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {kw}")))
        }
    }

    fn eat_sym(&mut self, sym: Sym) -> bool {
        if self.peek() == Some(&Token::Sym(sym)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: Sym) -> Result<(), QueryError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {sym:?}")))
        }
    }

    fn ident(&mut self) -> Result<String, QueryError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err("expected an identifier")),
        }
    }

    fn string(&mut self) -> Result<String, QueryError> {
        match self.peek() {
            Some(Token::Str(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err("expected a string literal")),
        }
    }

    fn integer(&mut self) -> Result<i64, QueryError> {
        match self.peek() {
            Some(Token::Int(v)) => {
                let v = *v;
                self.pos += 1;
                Ok(v)
            }
            _ => Err(self.err("expected an integer")),
        }
    }

    // ---- SELECT ---------------------------------------------------------

    fn select(&mut self) -> Result<SelectStmt, QueryError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = vec![self.select_item()?];
        while self.eat_sym(Sym::Comma) {
            items.push(self.select_item()?);
        }
        self.expect_kw("FROM")?;
        let mut from = vec![self.stream_ref()?];
        while self.eat_sym(Sym::Comma) {
            from.push(self.stream_ref()?);
        }
        if from.len() > 2 {
            return Err(self.err("at most two streams are supported in FROM"));
        }
        let predicate = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        let group_by = if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            Some(self.column_ref()?)
        } else {
            None
        };
        let union_with = if self.eat_kw("UNION") { Some(Box::new(self.select()?)) } else { None };
        Ok(SelectStmt { items, distinct, from, predicate, group_by, union_with })
    }

    fn agg_func(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    fn select_item(&mut self) -> Result<SelectItem, QueryError> {
        if self.eat_sym(Sym::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate?
        if let Some(Token::Ident(name)) = self.peek() {
            if let Some(func) = Self::agg_func(name) {
                if self.tokens.get(self.pos + 1) == Some(&Token::Sym(Sym::LParen)) {
                    self.pos += 2; // func (
                    let column =
                        if self.eat_sym(Sym::Star) { None } else { Some(self.column_ref()?) };
                    self.expect_sym(Sym::RParen)?;
                    return Ok(SelectItem::Aggregate { func, column });
                }
            }
        }
        Ok(SelectItem::Column(self.column_ref()?))
    }

    fn column_ref(&mut self) -> Result<ColumnRef, QueryError> {
        let first = self.ident()?;
        if self.eat_sym(Sym::Dot) {
            let column = self.ident()?;
            Ok(ColumnRef { stream: Some(first), column })
        } else {
            Ok(ColumnRef { stream: None, column: first })
        }
    }

    fn stream_ref(&mut self) -> Result<StreamRef, QueryError> {
        let name = self.ident()?;
        let window_ms = if self.eat_sym(Sym::LBracket) {
            self.expect_kw("RANGE")?;
            let n = self.integer()?;
            let unit_ms: i64 = if self.eat_kw("SECONDS") || self.eat_kw("SECOND") {
                1000
            } else if self.eat_kw("MINUTES") || self.eat_kw("MINUTE") {
                60_000
            } else if self.eat_kw("MILLISECONDS") || self.eat_kw("MS") {
                1
            } else {
                1000 // default unit: seconds
            };
            self.expect_sym(Sym::RBracket)?;
            Some((n * unit_ms) as u64)
        } else {
            None
        };
        let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { None };
        Ok(StreamRef { name, alias, window_ms })
    }

    // ---- Expressions (precedence: OR < AND < NOT < cmp < add < mul) -----

    fn expr(&mut self) -> Result<AstExpr, QueryError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left =
                AstExpr::Binary { op: "OR".into(), left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<AstExpr, QueryError> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left =
                AstExpr::Binary { op: "AND".into(), left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<AstExpr, QueryError> {
        if self.eat_kw("NOT") {
            Ok(AstExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<AstExpr, QueryError> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Sym(Sym::Eq)) => "=",
            Some(Token::Sym(Sym::Ne)) => "!=",
            Some(Token::Sym(Sym::Lt)) => "<",
            Some(Token::Sym(Sym::Le)) => "<=",
            Some(Token::Sym(Sym::Gt)) => ">",
            Some(Token::Sym(Sym::Ge)) => ">=",
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.add_expr()?;
        Ok(AstExpr::Binary { op: op.into(), left: Box::new(left), right: Box::new(right) })
    }

    fn add_expr(&mut self) -> Result<AstExpr, QueryError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym(Sym::Plus)) => "+",
                Some(Token::Sym(Sym::Minus)) => "-",
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = AstExpr::Binary { op: op.into(), left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<AstExpr, QueryError> {
        let mut left = self.atom()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym(Sym::Star)) => "*",
                Some(Token::Sym(Sym::Slash)) => "/",
                _ => break,
            };
            self.pos += 1;
            let right = self.atom()?;
            left = AstExpr::Binary { op: op.into(), left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<AstExpr, QueryError> {
        match self.peek().cloned() {
            Some(Token::Int(v)) => {
                self.pos += 1;
                Ok(AstExpr::Int(v))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(AstExpr::Float(v))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(AstExpr::Str(s))
            }
            Some(Token::Sym(Sym::Minus)) => {
                self.pos += 1;
                match self.atom()? {
                    AstExpr::Int(v) => Ok(AstExpr::Int(-v)),
                    AstExpr::Float(v) => Ok(AstExpr::Float(-v)),
                    other => Ok(AstExpr::Binary {
                        op: "-".into(),
                        left: Box::new(AstExpr::Int(0)),
                        right: Box::new(other),
                    }),
                }
            }
            Some(Token::Sym(Sym::LParen)) => {
                self.pos += 1;
                let inner = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(_)) => Ok(AstExpr::Column(self.column_ref()?)),
            _ => Err(self.err("expected an expression atom")),
        }
    }

    // ---- INSERT SP -------------------------------------------------------

    fn insert_sp(&mut self) -> Result<InsertSpStmt, QueryError> {
        self.expect_kw("INSERT")?;
        self.expect_kw("SP")?;
        // Optional `[AS] name`, then INTO.
        self.eat_kw("AS");
        let mut name = None;
        if !self.peek_kw("INTO") {
            name = Some(self.ident()?);
        }
        self.expect_kw("INTO")?;
        self.expect_kw("STREAM")?;
        let stream = match self.peek().cloned() {
            Some(Token::Int(v)) => {
                self.pos += 1;
                v.to_string()
            }
            _ => self.ident()?,
        };
        self.expect_kw("LET")?;

        let mut ddp: Option<(String, String, String)> = None;
        let mut srp: Option<String> = None;
        let mut sign = Sign::Positive;
        let mut immutable = false;
        loop {
            // Optional `name.` prefix before the field keyword.
            if let (Some(Token::Ident(_)), Some(Token::Sym(Sym::Dot))) =
                (self.peek(), self.tokens.get(self.pos + 1))
            {
                self.pos += 2;
            }
            if self.eat_kw("DDP") {
                self.expect_sym(Sym::Eq)?;
                self.expect_sym(Sym::LParen)?;
                let s = self.string()?;
                self.expect_sym(Sym::Comma)?;
                let t = self.string()?;
                self.expect_sym(Sym::Comma)?;
                let a = self.string()?;
                self.expect_sym(Sym::RParen)?;
                ddp = Some((s, t, a));
            } else if self.eat_kw("SRP") {
                self.expect_sym(Sym::Eq)?;
                srp = Some(self.string()?);
            } else if self.eat_kw("SIGN") {
                self.expect_sym(Sym::Eq)?;
                if self.eat_kw("POSITIVE") {
                    sign = Sign::Positive;
                } else if self.eat_kw("NEGATIVE") {
                    sign = Sign::Negative;
                } else {
                    return Err(self.err("SIGN must be positive or negative"));
                }
            } else if self.eat_kw("IMMUTABLE") {
                self.expect_sym(Sym::Eq)?;
                if self.eat_kw("TRUE") {
                    immutable = true;
                } else if self.eat_kw("FALSE") {
                    immutable = false;
                } else {
                    return Err(self.err("IMMUTABLE must be true or false"));
                }
            } else {
                return Err(self.err("expected DDP, SRP, SIGN or IMMUTABLE"));
            }
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        let ddp = ddp.ok_or_else(|| self.err("INSERT SP requires a DDP clause"))?;
        let srp = srp.ok_or_else(|| self.err("INSERT SP requires an SRP clause"))?;
        Ok(InsertSpStmt { name, stream, ddp, srp, sign, immutable })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn select(src: &str) -> SelectStmt {
        match parse(src).unwrap_or_else(|e| panic!("{e}")) {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    fn insert_sp(src: &str) -> InsertSpStmt {
        match parse(src).unwrap_or_else(|e| panic!("{e}")) {
            Statement::InsertSp(s) => s,
            other => panic!("expected INSERT SP, got {other:?}"),
        }
    }

    #[test]
    fn simple_select_project() {
        let s = select("SELECT obj_id, x FROM LocationUpdates WHERE speed > 5");
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from[0].name, "LocationUpdates");
        assert!(s.predicate.is_some());
        assert!(!s.distinct);
        assert!(s.group_by.is_none());
    }

    #[test]
    fn select_star_with_window() {
        let s = select("SELECT * FROM HeartRate [RANGE 10 SECONDS]");
        assert_eq!(s.items, vec![SelectItem::Wildcard]);
        assert_eq!(s.from[0].window_ms, Some(10_000));
    }

    #[test]
    fn window_units() {
        assert_eq!(select("SELECT * FROM s [RANGE 2 MINUTES]").from[0].window_ms, Some(120_000));
        assert_eq!(select("SELECT * FROM s [RANGE 500 MS]").from[0].window_ms, Some(500));
        assert_eq!(select("SELECT * FROM s [RANGE 3]").from[0].window_ms, Some(3000));
    }

    #[test]
    fn join_query_with_aliases() {
        let s = select(
            "SELECT a.Patient_id, b.Temperature FROM HeartRate [RANGE 10 SECONDS] AS a, \
             BodyTemperature [RANGE 10 SECONDS] AS b WHERE a.Patient_id = b.Patient_id",
        );
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].alias.as_deref(), Some("a"));
        assert_eq!(s.from[1].alias.as_deref(), Some("b"));
    }

    #[test]
    fn aggregates_and_group_by() {
        let s = select(
            "SELECT AVG(Beats_per_min) FROM HeartRate [RANGE 60 SECONDS] GROUP BY Patient_id",
        );
        assert!(matches!(
            s.items[0],
            SelectItem::Aggregate { func: AggFunc::Avg, column: Some(_) }
        ));
        assert_eq!(s.group_by.as_ref().unwrap().column, "Patient_id");
        let c = select("SELECT COUNT(*) FROM s");
        assert!(matches!(c.items[0], SelectItem::Aggregate { func: AggFunc::Count, column: None }));
    }

    #[test]
    fn distinct_flag() {
        assert!(select("SELECT DISTINCT x FROM s").distinct);
    }

    #[test]
    fn boolean_precedence() {
        let s = select("SELECT * FROM s WHERE a = 1 OR b = 2 AND NOT c = 3");
        // OR binds loosest: top node must be OR.
        match s.predicate.unwrap() {
            AstExpr::Binary { op, .. } => assert_eq!(op, "OR"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_in_predicates() {
        let s = select("SELECT * FROM s WHERE x + 2 * y >= 10");
        assert!(s.predicate.is_some());
    }

    #[test]
    fn insert_sp_full_form() {
        let sp = insert_sp(
            "INSERT SP p1 INTO STREAM HeartRate \
             LET DDP = ('HeartRate', '<120-133>', '*'), SRP = 'general_physician', \
             SIGN = positive, IMMUTABLE = true",
        );
        assert_eq!(sp.name.as_deref(), Some("p1"));
        assert_eq!(sp.stream, "HeartRate");
        assert_eq!(sp.ddp.1, "<120-133>");
        assert_eq!(sp.srp, "general_physician");
        assert_eq!(sp.sign, Sign::Positive);
        assert!(sp.immutable);
    }

    #[test]
    fn insert_sp_minimal_and_qualified_fields() {
        let sp = insert_sp(
            "INSERT SP INTO STREAM 1 LET p.DDP = ('*', '*', 'Temperature|Beats_per_min'), \
             p.SRP = 'doctor|nurse_on_duty', p.SIGN = negative",
        );
        assert_eq!(sp.name, None);
        assert_eq!(sp.stream, "1");
        assert_eq!(sp.sign, Sign::Negative);
        assert!(!sp.immutable);
    }

    #[test]
    fn parse_errors() {
        assert!(parse("DELETE FROM s").is_err());
        assert!(parse("SELECT FROM s").is_err());
        assert!(parse("SELECT * FROM a, b, c").is_err());
        assert!(parse("SELECT * FROM s WHERE").is_err());
        assert!(parse("INSERT SP INTO STREAM s LET SRP = 'x'").is_err());
        assert!(parse("SELECT * FROM s extra garbage ,").is_err());
        assert!(parse("SELECT * FROM s [RANGE x]").is_err());
    }

    #[test]
    fn union_queries_parse() {
        let s = select("SELECT x FROM a UNION SELECT y FROM b WHERE y > 1");
        let next = s.union_with.as_ref().expect("union arm");
        assert_eq!(next.from[0].name, "b");
        assert!(next.predicate.is_some());
        assert!(s.union_with.as_ref().unwrap().union_with.is_none());
        // Chained unions nest to the right.
        let c = select("SELECT x FROM a UNION SELECT x FROM b UNION SELECT x FROM c");
        assert!(c.union_with.unwrap().union_with.is_some());
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse("SELECT * FROM s;").is_ok());
    }
}
