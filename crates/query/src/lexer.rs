//! Tokenizer for the CQL subset (§III-D).

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are matched case-insensitively by
    /// the parser; the original spelling is preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Punctuation / operator.
    Sym(Sym),
}

/// Symbolic tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `;`
    Semi,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Sym(s) => write!(f, "{s:?}"),
        }
    }
}

/// A lexing / parsing error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the query text (best effort).
    pub offset: usize,
}

impl QueryError {
    /// Creates an error.
    #[must_use]
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        Self { message: message.into(), offset }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for QueryError {}

/// Tokenizes query text.
///
/// # Errors
///
/// Returns a [`QueryError`] on unterminated strings, malformed numbers or
/// unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Token>, QueryError> {
    // Char-indexed view: (byte offset, char). Indexing `src` only at these
    // offsets keeps every slice on a UTF-8 boundary.
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    let end = src.len();
    let byte_at = |i: usize| chars.get(i).map_or(end, |&(b, _)| b);
    let char_at = |i: usize| chars.get(i).map(|&(_, c)| c);

    let mut tokens = Vec::new();
    let mut i = 0;
    while let Some(c) = char_at(i) {
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if char_at(i + 1) == Some('-') => {
                // SQL line comment.
                while char_at(i).is_some_and(|c| c != '\n') {
                    i += 1;
                }
            }
            '\'' => {
                let start = byte_at(i);
                i += 1;
                let mut text = String::new();
                loop {
                    match char_at(i) {
                        None => return Err(QueryError::new("unterminated string literal", start)),
                        Some('\'') if char_at(i + 1) == Some('\'') => {
                            text.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(c) => {
                            text.push(c);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(text));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while char_at(i).is_some_and(|c| c.is_ascii_digit() || c == '.') {
                    // Don't swallow `1.x` attribute refs: a dot is part of
                    // the number only if followed by a digit.
                    if char_at(i) == Some('.')
                        && !char_at(i + 1).is_some_and(|c| c.is_ascii_digit())
                    {
                        break;
                    }
                    i += 1;
                }
                let text = &src[byte_at(start)..byte_at(i)];
                if text.contains('.') {
                    let v = text
                        .parse::<f64>()
                        .map_err(|_| QueryError::new("malformed float literal", byte_at(start)))?;
                    tokens.push(Token::Float(v));
                } else {
                    let v = text.parse::<i64>().map_err(|_| {
                        QueryError::new("integer literal out of range", byte_at(start))
                    })?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while char_at(i).is_some_and(|c| c.is_alphanumeric() || c == '_') {
                    i += 1;
                }
                tokens.push(Token::Ident(src[byte_at(start)..byte_at(i)].to_owned()));
            }
            _ => {
                let (sym, len) = match (c, char_at(i + 1)) {
                    ('<', Some('=')) => (Sym::Le, 2),
                    ('<', Some('>')) => (Sym::Ne, 2),
                    ('>', Some('=')) => (Sym::Ge, 2),
                    ('!', Some('=')) => (Sym::Ne, 2),
                    ('(', _) => (Sym::LParen, 1),
                    (')', _) => (Sym::RParen, 1),
                    ('[', _) => (Sym::LBracket, 1),
                    (']', _) => (Sym::RBracket, 1),
                    (',', _) => (Sym::Comma, 1),
                    ('.', _) => (Sym::Dot, 1),
                    ('*', _) => (Sym::Star, 1),
                    ('=', _) => (Sym::Eq, 1),
                    ('<', _) => (Sym::Lt, 1),
                    ('>', _) => (Sym::Gt, 1),
                    ('+', _) => (Sym::Plus, 1),
                    ('-', _) => (Sym::Minus, 1),
                    ('/', _) => (Sym::Slash, 1),
                    (';', _) => (Sym::Semi, 1),
                    _ => {
                        return Err(QueryError::new(
                            format!("unexpected character {c:?}"),
                            byte_at(i),
                        ))
                    }
                };
                tokens.push(Token::Sym(sym));
                i += len;
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn lexes_a_select() {
        let toks = lex("SELECT x, y FROM s [RANGE 10 SECONDS] WHERE speed >= 2.5").unwrap();
        assert!(toks.contains(&Token::Ident("SELECT".into())));
        assert!(toks.contains(&Token::Sym(Sym::LBracket)));
        assert!(toks.contains(&Token::Int(10)));
        assert!(toks.contains(&Token::Sym(Sym::Ge)));
        assert!(toks.contains(&Token::Float(2.5)));
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let toks = lex("LET SRP = 'doctor|nurse''s'").unwrap();
        assert!(toks.contains(&Token::Str("doctor|nurse's".into())));
    }

    #[test]
    fn number_dot_ident_disambiguation() {
        let toks = lex("s1.x = 3.5").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("s1".into()),
                Token::Sym(Sym::Dot),
                Token::Ident("x".into()),
                Token::Sym(Sym::Eq),
                Token::Float(3.5),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("SELECT x -- everything\nFROM s").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn multibyte_input_never_splits_chars() {
        // Regression: the lexer once indexed by bytes and panicked on
        // multi-byte characters (found by the robustness fuzzer).
        let toks = lex("SELECT prénom FROM données WHERE ville = 'Zürich'").unwrap();
        assert!(toks.contains(&Token::Ident("prénom".into())));
        assert!(toks.contains(&Token::Str("Zürich".into())));
        assert!(lex("¿x?").is_err(), "non-ASCII symbols are rejected cleanly");
        let _ = lex("héllo -- commentaire é\n1.5");
    }

    #[test]
    fn errors() {
        assert!(lex("'oops").is_err());
        assert!(lex("a ? b").is_err());
        assert!(lex("99999999999999999999999").is_err());
    }

    #[test]
    fn two_char_operators() {
        let toks = lex("a <= b <> c != d >= e").unwrap();
        let syms: Vec<&Token> = toks.iter().filter(|t| matches!(t, Token::Sym(_))).collect();
        assert_eq!(
            syms,
            vec![
                &Token::Sym(Sym::Le),
                &Token::Sym(Sym::Ne),
                &Token::Sym(Sym::Ne),
                &Token::Sym(Sym::Ge)
            ]
        );
    }
}
