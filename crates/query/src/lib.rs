//! # sp-query — CQL, security-aware plans and optimization
//!
//! The declarative layer of the security-punctuation framework:
//!
//! * [`lexer`] / [`ast`] / [`parser`] — the CQL subset plus the paper's
//!   `INSERT SP` extension (§III-D);
//! * [`catalog`] — stream, role and query registration (queries inherit
//!   the roles of their specifiers, §II-B);
//! * [`logical`] — security-aware logical plans (Table I algebra);
//! * [`rules`] — the Table II equivalence rules as executable rewrites;
//! * [`cost`] — the §VI-A per-unit-time cost model;
//! * [`optimizer`] — cost-guided SS placement and multi-query sharing;
//! * [`physical`] — instantiation into `sp-engine` operator DAGs;
//! * [`session`] — the [`Dsms`] facade tying it all together.

#![warn(missing_docs)]

pub mod ast;
pub mod catalog;
pub mod cost;
pub mod lexer;
pub mod logical;
pub mod optimizer;
pub mod parser;
pub mod physical;
pub mod planner;
pub mod rules;
pub mod session;

pub use ast::{AstExpr, ColumnRef, InsertSpStmt, SelectItem, SelectStmt, Statement, StreamRef};
pub use catalog::{Catalog, StreamDef};
pub use cost::{CostModel, InputStats, PlanCost};
pub use lexer::QueryError;
pub use logical::LogicalPlan;
pub use optimizer::{Optimizer, OptimizerReport};
pub use parser::parse;
pub use physical::{instantiate, instantiate_with, InstantiateOptions};
pub use planner::{plan_insert_sp, plan_select, DEFAULT_WINDOW_MS};
pub use rules::{all_rewrites, apply, apply_anywhere, merged_predicate, Rule, ALL_RULES};
pub use session::{Dsms, PlannedQuery, RunningDsms};
