//! The DSMS facade: register streams, roles and subjects, submit CQL
//! queries, inject punctuations, run the engine.
//!
//! This is the top-level API the examples use:
//!
//! ```
//! use sp_core::{Schema, StreamId, ValueType};
//! use sp_query::Dsms;
//!
//! let mut dsms = Dsms::new();
//! dsms.register_stream(StreamId(1), Schema::of("S", &[("x", ValueType::Int)])).unwrap();
//! dsms.register_role("doctor").unwrap();
//! let alice = dsms.register_subject("alice", &["doctor"]).unwrap();
//! let q = dsms.submit("SELECT x FROM S", alice).unwrap();
//! let mut running = dsms.start();
//! // push StreamElements, then read running.results(q)
//! # let _ = (q, &mut running);
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use sp_core::{
    QueryId, RoleId, RoleSet, Schema, SecurityPunctuation, StreamElement, StreamId, SubjectId,
    Timestamp,
};
use sp_engine::{Executor, PlanBuilder, ShardedExecutor, SinkRef};

use crate::ast::Statement;
use crate::catalog::Catalog;
use crate::cost::CostModel;
use crate::lexer::QueryError;
use crate::logical::LogicalPlan;
use crate::optimizer::{Optimizer, OptimizerReport};
use crate::parser::parse;
use crate::physical::{instantiate_with, InstantiateOptions};
use crate::planner::{plan_insert_sp, plan_select};

/// A registered continuous query awaiting execution.
#[derive(Debug)]
pub struct PlannedQuery {
    /// Query id.
    pub id: QueryId,
    /// The (optimized) logical plan.
    pub plan: LogicalPlan,
    /// The roles the query inherited from its specifier.
    pub roles: RoleSet,
    /// What the optimizer did.
    pub report: OptimizerReport,
}

/// The data stream management system under construction.
#[derive(Debug, Default)]
pub struct Dsms {
    /// Streams, roles and query registrations.
    pub catalog: Catalog,
    /// The cost model used for optimization.
    pub cost_model: CostModel,
    /// Disable optimization (plans run exactly as written).
    pub optimize: bool,
    /// Enforcement granularity for every query's shields (§III-A): `Tuple`
    /// (default) drops unauthorized tuples; `Attribute` masks unauthorized
    /// attributes instead, releasing tuples visible through
    /// attribute-scoped grants.
    pub granularity: sp_engine::Granularity,
    /// Optional ingestion admission control: when set, each started
    /// session rate-limits data tuples per stream with a token bucket
    /// (burst allowance + deadline-based debt) and refuses the excess
    /// with [`sp_engine::EngineError::Overloaded`]. Security punctuations
    /// always bypass admission — overload can delay or drop data, never
    /// policy updates.
    pub admission: Option<sp_engine::AdmissionConfig>,
    /// Optional telemetry: when set, every started session arms the
    /// security audit trail (a bounded flight recorder on each analyzer
    /// and shield) and the per-operator metrics histograms; read them
    /// back via [`RunningDsms::audit_trail`] and
    /// [`RunningDsms::metrics_prometheus`] / [`RunningDsms::metrics_json`].
    pub telemetry: Option<sp_engine::TelemetryConfig>,
    /// Key-partitioned shard replicas per started session. `0` (default)
    /// and `1` run the sequential executor; `n ≥ 2` makes
    /// [`Dsms::try_start`] spin up `n` shard replicas of the whole plan
    /// behind a deterministic exchange — byte-identical released sets,
    /// audit trails, and checkpoints at any shard count. Sharding
    /// requires every operator in every registered plan to be
    /// shard-safe; [`Dsms::try_start`] refuses otherwise, fail-closed.
    pub shards: usize,
    queries: Vec<PlannedQuery>,
}

impl Dsms {
    /// An empty DSMS with optimization enabled.
    #[must_use]
    pub fn new() -> Self {
        Self { optimize: true, ..Self::default() }
    }

    /// Registers a stream.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names or ids.
    pub fn register_stream(&mut self, id: StreamId, schema: Arc<Schema>) -> Result<(), QueryError> {
        self.catalog.register_stream(id, schema)
    }

    /// Registers a role, returning its id.
    ///
    /// # Errors
    ///
    /// Fails on duplicates.
    pub fn register_role(&mut self, name: &str) -> Result<RoleId, QueryError> {
        self.catalog.roles.register_role(name).map_err(|e| QueryError::new(e.to_string(), 0))
    }

    /// Registers a subject with activated roles.
    ///
    /// # Errors
    ///
    /// Fails on duplicates or unknown roles.
    pub fn register_subject(
        &mut self,
        name: &str,
        roles: &[&str],
    ) -> Result<SubjectId, QueryError> {
        self.catalog
            .roles
            .register_subject(name, roles)
            .map_err(|e| QueryError::new(e.to_string(), 0))
    }

    /// Parses, plans and (optionally) optimizes a continuous SELECT query
    /// on behalf of `subject`; the query inherits the subject's roles.
    ///
    /// # Errors
    ///
    /// Fails on syntax errors, unknown streams/columns, or unknown subjects.
    pub fn submit(&mut self, sql: &str, subject: SubjectId) -> Result<QueryId, QueryError> {
        let Statement::Select(stmt) = parse(sql)? else {
            return Err(QueryError::new("expected a SELECT statement", 0));
        };
        let (id, roles) = self.catalog.register_query(subject)?;
        let plan = plan_select(&self.catalog, &stmt, &roles)?;
        let (plan, report) = if self.optimize {
            Optimizer::new(self.cost_model.clone()).optimize(&plan)
        } else {
            (plan, OptimizerReport::default())
        };
        self.queries.push(PlannedQuery { id, plan, roles, report });
        Ok(id)
    }

    /// Lowers an `INSERT SP` statement into a punctuation for injection at
    /// time `ts`.
    ///
    /// # Errors
    ///
    /// Fails on syntax errors or unknown streams.
    pub fn insert_sp(
        &self,
        sql: &str,
        ts: Timestamp,
    ) -> Result<(StreamId, SecurityPunctuation), QueryError> {
        let Statement::InsertSp(stmt) = parse(sql)? else {
            return Err(QueryError::new("expected an INSERT SP statement", 0));
        };
        plan_insert_sp(&self.catalog, &stmt, ts)
    }

    /// Registered queries (in submission order).
    #[must_use]
    pub fn queries(&self) -> &[PlannedQuery] {
        &self.queries
    }

    /// Withdraws a registered query before `start`, releasing its
    /// subject's role-assignment pin (§II-A). Returns false if the query
    /// id is unknown.
    pub fn withdraw(&mut self, id: QueryId) -> bool {
        let Some(pos) = self.queries.iter().position(|q| q.id == id) else {
            return false;
        };
        self.queries.remove(pos);
        self.catalog.deregister_query(id);
        true
    }

    /// Builds the shared physical plan (deterministically — sharded
    /// execution rebuilds it once per replica) and the query → sink map.
    ///
    /// `eager_selects` instantiates selections without the §IV-B policy
    /// delay — required under sharding, where a delaying selection
    /// mid-plan would make the shield's shard-local flushes
    /// non-deduplicable (the sharded builder refuses such plans).
    fn build_plan(&self, eager_selects: bool) -> (PlanBuilder, HashMap<QueryId, SinkRef>) {
        let mut builder = PlanBuilder::new(Arc::new(self.catalog.roles.clone()));
        let mut sources = HashMap::new();
        let mut sinks = HashMap::new();
        let opts = InstantiateOptions { granularity: self.granularity, eager_selects };
        for q in &self.queries {
            let root = instantiate_with(&q.plan, &mut builder, &mut sources, opts);
            sinks.insert(q.id, builder.sink(root));
        }
        if let Some(cfg) = self.telemetry {
            builder.enable_telemetry(cfg);
        }
        (builder, sinks)
    }

    fn running(&self, engine: Engine, sinks: HashMap<QueryId, SinkRef>) -> RunningDsms {
        RunningDsms {
            engine,
            sinks,
            errors: Vec::new(),
            input_pos: 0,
            admission: self.admission.map(sp_engine::AdmissionController::new),
        }
    }

    /// Builds the shared physical plan and starts the engine on the
    /// sequential (single-lane) executor, regardless of [`Dsms::shards`].
    /// Use [`Dsms::try_start`] for the shards-aware entry point.
    #[must_use]
    pub fn start(&self) -> RunningDsms {
        let (builder, sinks) = self.build_plan(false);
        self.running(Engine::Sequential(builder.build()), sinks)
    }

    /// Builds the shared physical plan and starts the engine honoring
    /// [`Dsms::shards`]: `0`/`1` behave exactly like [`Dsms::start`];
    /// `n ≥ 2` runs `n` key-partitioned shard replicas of the whole plan
    /// behind a deterministic exchange merge, with security punctuations
    /// broadcast to every replica.
    ///
    /// # Errors
    ///
    /// Fails closed with [`sp_engine::EngineError::ShardUnsupported`]
    /// when `shards ≥ 2` and a registered plan contains an operator
    /// whose state needs the whole stream (joins, duplicate
    /// elimination, aggregation) — hash partitioning would silently
    /// change its results, so the session is refused instead.
    /// Sharded sessions instantiate their selections *eagerly* (no
    /// §IV-B policy delay): an eager selection is policy-transparent,
    /// so the shield's shard-local flushes stay deduplicable down to
    /// the sink. Released tuples are unaffected — only policy traffic
    /// between operators grows.
    pub fn try_start(&self) -> Result<RunningDsms, sp_engine::EngineError> {
        if self.shards <= 1 {
            return Ok(self.start());
        }
        let exec = ShardedExecutor::new(|| self.build_plan(true).0, self.shards)?;
        let (_, sinks) = self.build_plan(true);
        Ok(self.running(Engine::Sharded(exec), sinks))
    }

    /// Restarts the DSMS from the latest durable checkpoint in `store`,
    /// or cold-starts when the store is empty.
    ///
    /// The plan is rebuilt from the registered queries (plan shape is
    /// configuration, not state), then every operator's state — including
    /// the analyzers' policy state — is restored byte-exactly. The caller
    /// replays its input from [`RunningDsms::input_pos`]; replayed
    /// elements flow through the restored policy state, so recovery can
    /// lose results but can never release a tuple the uninterrupted run
    /// would have withheld.
    ///
    /// Checkpoints are canonical across shard counts, so a session
    /// checkpointed sequentially (or at `n` shards) may resume at any
    /// [`Dsms::shards`] setting — the restore re-shards.
    ///
    /// # Errors
    ///
    /// Fails closed when the checkpoint does not match the current plan
    /// shape or any section is corrupt: no partially-restored session is
    /// ever returned.
    pub fn resume(
        &self,
        store: &dyn sp_engine::CheckpointStore,
    ) -> Result<RunningDsms, sp_engine::EngineError> {
        let mut running = self.try_start()?;
        if let Some(ckpt) = store.load_latest() {
            match &mut running.engine {
                Engine::Sequential(exec) => exec.restore(&ckpt)?,
                Engine::Sharded(exec) => exec.restore(&ckpt)?,
            }
            running.input_pos = ckpt.input_pos;
        }
        Ok(running)
    }
}

/// The executor behind a running session: one sequential lane, or `n`
/// key-partitioned shard replicas behind a deterministic exchange.
enum Engine {
    Sequential(Executor),
    Sharded(ShardedExecutor),
}

/// A running DSMS instance.
///
/// Observability accessors ([`RunningDsms::results`],
/// [`RunningDsms::audit_trail`], …) take `&mut self`: a sharded session
/// first synchronizes with its shard workers so the canonical state is
/// exactly up to date with everything pushed so far. Sequential sessions
/// pay nothing for the same signature.
pub struct RunningDsms {
    engine: Engine,
    sinks: HashMap<QueryId, SinkRef>,
    errors: Vec<sp_engine::EngineError>,
    input_pos: u64,
    admission: Option<sp_engine::AdmissionController>,
}

impl RunningDsms {
    /// Feeds one raw stream element.
    ///
    /// Engine errors are absorbed, not propagated: the executor fails
    /// closed (in-flight elements of the failed push are discarded, never
    /// released), and the error is recorded for [`RunningDsms::errors`].
    /// Use [`RunningDsms::try_push`] to propagate instead.
    pub fn push(&mut self, stream: StreamId, elem: StreamElement) {
        if let Err(e) = self.try_push(stream, elem) {
            self.errors.push(e);
        }
    }

    /// Feeds one raw stream element, propagating engine errors.
    ///
    /// # Errors
    ///
    /// Returns the engine's typed error when the plan rejects the element
    /// (malformed input, operator failure). The executor has already
    /// dropped the in-flight elements of this push — nothing from a
    /// failed push is released.
    pub fn try_push(
        &mut self,
        stream: StreamId,
        elem: StreamElement,
    ) -> Result<(), sp_engine::EngineError> {
        // Count the element even when the push fails: a checkpoint taken
        // afterwards must not invite a replay of the rejected element.
        self.input_pos += 1;
        if let Some(ac) = &mut self.admission {
            let is_tuple = matches!(elem, StreamElement::Tuple(_));
            ac.admit(stream, is_tuple, elem.ts())?;
        }
        match &mut self.engine {
            Engine::Sequential(exec) => exec.push(stream, elem),
            Engine::Sharded(exec) => exec.push(stream, elem),
        }
    }

    /// How many shard replicas this session runs on (1 for sequential).
    #[must_use]
    pub fn shards(&self) -> usize {
        match &self.engine {
            Engine::Sequential(_) => 1,
            Engine::Sharded(exec) => exec.shards(),
        }
    }

    /// Degradation counters for the whole session: every operator's
    /// losses (shedding, quarantine, reorder drops, ladder state) plus
    /// the ingestion admission controller's rejections.
    #[must_use]
    pub fn degradation(&mut self) -> sp_engine::DegradationStats {
        let mut d = match &mut self.engine {
            Engine::Sequential(exec) => exec.degradation(),
            Engine::Sharded(exec) => exec.degradation(),
        };
        if let Some(ac) = &self.admission {
            d.absorb(&ac.degradation());
        }
        d
    }

    /// How many raw input elements this session has consumed — after
    /// [`Dsms::resume`], the position replay should continue from.
    #[must_use]
    pub fn input_pos(&self) -> u64 {
        self.input_pos
    }

    /// Takes an epoch checkpoint of the whole session (analyzer policy
    /// state, every operator, sink counters) and appends it to `store`.
    ///
    /// # Errors
    ///
    /// Propagates the store's write error; the session itself is
    /// unaffected by a failed save. A sharded session can additionally
    /// fail the cut itself when a shard worker died — the session is
    /// then failed (fail-closed), not the store.
    pub fn checkpoint_to(
        &mut self,
        epoch: u64,
        store: &mut dyn sp_engine::CheckpointStore,
    ) -> Result<(), sp_engine::EngineError> {
        let ckpt = match &mut self.engine {
            Engine::Sequential(exec) => exec.checkpoint(epoch, self.input_pos),
            Engine::Sharded(exec) => exec.checkpoint(epoch, self.input_pos)?,
        };
        store.save(&ckpt)
    }

    /// Engine errors absorbed by [`RunningDsms::push`] so far.
    #[must_use]
    pub fn errors(&self) -> &[sp_engine::EngineError] {
        &self.errors
    }

    /// The result sink of a query.
    ///
    /// # Panics
    ///
    /// Panics if the query id was not registered before `start`.
    #[must_use]
    pub fn results(&mut self, query: QueryId) -> &sp_engine::Sink {
        let sink = self.sinks[&query];
        match &mut self.engine {
            Engine::Sequential(exec) => exec.sink(sink),
            Engine::Sharded(exec) => exec.sink(sink),
        }
    }

    /// The session's security audit trail: every release, suppression,
    /// and quarantine decision made so far, in canonical operator order.
    /// Empty unless [`Dsms::telemetry`] was set before `start`.
    #[must_use]
    pub fn audit_trail(&mut self) -> sp_engine::AuditTrail {
        match &mut self.engine {
            Engine::Sequential(exec) => exec.audit_trail(),
            Engine::Sharded(exec) => exec.audit_trail(),
        }
    }

    /// The session's sp-trace span sheet: the causal spans recorded by
    /// every analyzer and shield so far, in canonical operator order.
    /// Empty unless [`Dsms::telemetry`] was set with a span capacity
    /// before `start`.
    #[must_use]
    pub fn span_sheet(&mut self) -> sp_engine::SpanSheet {
        match &mut self.engine {
            Engine::Sequential(exec) => exec.span_sheet(),
            Engine::Sharded(exec) => exec.span_sheet(),
        }
    }

    /// The session's metrics registry: per-operator logical counters
    /// (canonical — identical at any shard count), plus `sp_shard_*`
    /// series describing the shard layout when sharded.
    #[must_use]
    pub fn metrics(&mut self) -> sp_engine::MetricsRegistry {
        match &mut self.engine {
            Engine::Sequential(exec) => exec.metrics(),
            Engine::Sharded(exec) => exec.metrics(),
        }
    }

    /// The session's metrics snapshot in Prometheus text exposition
    /// format (counters always; latency/queue histograms when
    /// [`Dsms::telemetry`] enabled metrics collection).
    #[must_use]
    pub fn metrics_prometheus(&mut self) -> String {
        match &mut self.engine {
            Engine::Sequential(exec) => exec.metrics_prometheus(),
            Engine::Sharded(exec) => exec.metrics_prometheus(),
        }
    }

    /// The session's metrics snapshot as a JSON document.
    #[must_use]
    pub fn metrics_json(&mut self) -> String {
        match &mut self.engine {
            Engine::Sequential(exec) => exec.metrics_json(),
            Engine::Sharded(exec) => exec.metrics_json(),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use sp_core::{Tuple, TupleId, Value, ValueType};

    fn dsms() -> Dsms {
        let mut d = Dsms::new();
        d.register_stream(
            StreamId(1),
            Schema::of(
                "LocationUpdates",
                &[("obj_id", ValueType::Int), ("x", ValueType::Float), ("speed", ValueType::Float)],
            ),
        )
        .unwrap();
        d.register_role("family").unwrap();
        d.register_role("store").unwrap();
        d
    }

    fn tup(tid: u64, ts: u64, x: f64, speed: f64) -> StreamElement {
        StreamElement::tuple(Tuple::new(
            StreamId(1),
            TupleId(tid),
            Timestamp(ts),
            vec![Value::Int(tid as i64), Value::Float(x), Value::Float(speed)],
        ))
    }

    #[test]
    fn end_to_end_query_with_cql_punctuations() {
        let mut d = dsms();
        let alice = d.register_subject("alice", &["family"]).unwrap();
        let q = d.submit("SELECT obj_id, x FROM LocationUpdates WHERE speed > 1", alice).unwrap();

        let (sid, sp) = d
            .insert_sp(
                "INSERT SP INTO STREAM LocationUpdates LET DDP = ('*', '*', '*'), SRP = 'family'",
                Timestamp(0),
            )
            .unwrap();

        let mut running = d.start();
        running.push(sid, StreamElement::punctuation(sp));
        running.push(StreamId(1), tup(1, 1, 5.0, 2.0));
        running.push(StreamId(1), tup(2, 2, 6.0, 0.5)); // filtered by speed
        let results: Vec<u64> = running.results(q).tuples().map(|t| t.tid.raw()).collect();
        assert_eq!(results, vec![1]);
    }

    #[test]
    fn unauthorized_subject_sees_nothing() {
        let mut d = dsms();
        let bob = d.register_subject("bob", &["store"]).unwrap();
        let q = d.submit("SELECT obj_id FROM LocationUpdates", bob).unwrap();
        let (sid, sp) = d
            .insert_sp(
                "INSERT SP INTO STREAM LocationUpdates LET DDP = ('*', '*', '*'), SRP = 'family'",
                Timestamp(0),
            )
            .unwrap();
        let mut running = d.start();
        running.push(sid, StreamElement::punctuation(sp));
        running.push(StreamId(1), tup(1, 1, 5.0, 2.0));
        assert_eq!(running.results(q).tuple_count(), 0);
    }

    #[test]
    fn multiple_queries_share_the_source() {
        let mut d = dsms();
        let alice = d.register_subject("alice", &["family"]).unwrap();
        let bob = d.register_subject("bob", &["store"]).unwrap();
        let qa = d.submit("SELECT obj_id FROM LocationUpdates", alice).unwrap();
        let qb = d.submit("SELECT obj_id FROM LocationUpdates", bob).unwrap();
        let (sid, sp) = d
            .insert_sp(
                "INSERT SP INTO STREAM LocationUpdates LET DDP = ('*', '*', '*'), SRP = 'store'",
                Timestamp(0),
            )
            .unwrap();
        let mut running = d.start();
        running.push(sid, StreamElement::punctuation(sp));
        running.push(StreamId(1), tup(7, 1, 0.0, 0.0));
        assert_eq!(running.results(qa).tuple_count(), 0);
        assert_eq!(running.results(qb).tuple_count(), 1);
    }

    #[test]
    fn submit_rejects_non_select() {
        let mut d = dsms();
        let alice = d.register_subject("alice", &["family"]).unwrap();
        assert!(d
            .submit("INSERT SP INTO STREAM LocationUpdates LET DDP = ('*','*','*'), SRP='x'", alice)
            .is_err());
    }

    #[test]
    fn withdraw_releases_the_subject_pin() {
        let mut d = dsms();
        let alice = d.register_subject("alice", &["family"]).unwrap();
        let q = d.submit("SELECT obj_id FROM LocationUpdates", alice).unwrap();
        // Pinned while registered.
        assert!(d.catalog.roles.reassign_subject_roles(alice, &["store"]).is_err());
        assert!(d.withdraw(q));
        assert!(!d.withdraw(q), "second withdrawal is a no-op");
        assert!(d.catalog.roles.reassign_subject_roles(alice, &["store"]).is_ok());
        assert!(d.queries().is_empty());
    }

    #[test]
    fn checkpoint_resume_continues_without_leaking() {
        let mut d = dsms();
        let alice = d.register_subject("alice", &["family"]).unwrap();
        let q = d.submit("SELECT obj_id FROM LocationUpdates", alice).unwrap();
        let (sid, sp) = d
            .insert_sp(
                "INSERT SP INTO STREAM LocationUpdates LET DDP = ('*', '*', '*'), SRP = 'family'",
                Timestamp(0),
            )
            .unwrap();
        let mut input = vec![(sid, StreamElement::punctuation(sp))];
        for i in 1..=12 {
            input.push((StreamId(1), tup(i, i, 1.0, 2.0)));
        }

        // Uninterrupted baseline.
        let mut base = d.start();
        for (s, e) in &input {
            base.push(*s, e.clone());
        }
        let baseline: Vec<u64> = base.results(q).tuples().map(|t| t.tid.raw()).collect();
        assert_eq!(baseline.len(), 12);

        // Run half, checkpoint, crash, resume, replay the rest.
        let mut store = sp_engine::MemStore::default();
        let mut run = d.start();
        for (s, e) in input.iter().take(7) {
            run.push(*s, e.clone());
        }
        run.checkpoint_to(1, &mut store).unwrap();
        drop(run); // crash

        let mut resumed = d.resume(&store).unwrap();
        assert_eq!(resumed.input_pos(), 7);
        for (s, e) in input.iter().skip(7) {
            resumed.push(*s, e.clone());
        }
        let got: Vec<u64> = resumed.results(q).tuples().map(|t| t.tid.raw()).collect();
        // Pre-crash deliveries left the system; post-resume output is
        // exactly the baseline's suffix — the restored policy state
        // releases the same tuples, never more.
        assert_eq!(got.len(), 6);
        assert!(baseline.ends_with(&got), "resumed run released {got:?}");
        assert!(resumed.errors().is_empty());
    }

    #[test]
    fn resume_from_empty_store_cold_starts() {
        let mut d = dsms();
        let alice = d.register_subject("alice", &["family"]).unwrap();
        let _q = d.submit("SELECT obj_id FROM LocationUpdates", alice).unwrap();
        let store = sp_engine::MemStore::default();
        let running = d.resume(&store).unwrap();
        assert_eq!(running.input_pos(), 0);
    }

    #[test]
    fn resume_refuses_checkpoint_from_a_different_plan() {
        let mut d = dsms();
        let alice = d.register_subject("alice", &["family"]).unwrap();
        let _q = d.submit("SELECT obj_id FROM LocationUpdates", alice).unwrap();
        let mut store = sp_engine::MemStore::default();
        d.start().checkpoint_to(0, &mut store).unwrap();

        // A second query changes the plan shape; the stale checkpoint
        // must be refused outright, not partially applied.
        let bob = d.register_subject("bob", &["store"]).unwrap();
        let _q2 = d.submit("SELECT x FROM LocationUpdates", bob).unwrap();
        assert!(d.resume(&store).is_err());
    }

    #[test]
    fn optimizer_report_is_recorded() {
        let mut d = dsms();
        d.register_stream(
            StreamId(2),
            Schema::of("Regions", &[("obj_id", ValueType::Int), ("region", ValueType::Int)]),
        )
        .unwrap();
        let alice = d.register_subject("alice", &["family"]).unwrap();
        let _q = d
            .submit(
                "SELECT a.obj_id FROM LocationUpdates [RANGE 10 SECONDS] AS a, \
                 Regions [RANGE 10 SECONDS] AS b WHERE a.obj_id = b.obj_id",
                alice,
            )
            .unwrap();
        let q = &d.queries()[0];
        assert!(q.report.final_cost <= q.report.initial_cost);
        assert!(q.plan.shield_count() >= 1);
    }

    #[test]
    fn admission_refuses_excess_tuples_with_retry_hint() {
        let mut d = dsms();
        let alice = d.register_subject("alice", &["family"]).unwrap();
        let q = d.submit("SELECT obj_id FROM LocationUpdates", alice).unwrap();
        let (sid, sp) = d
            .insert_sp(
                "INSERT SP INTO STREAM LocationUpdates LET DDP = ('*', '*', '*'), SRP = 'family'",
                Timestamp(0),
            )
            .unwrap();
        // 1 token/sec, burst of 2, no debt allowance: the third tuple in
        // the same millisecond must be refused with a retry hint.
        d.admission = Some(sp_engine::AdmissionConfig {
            tokens_per_sec: 1,
            burst: 2,
            enqueue_deadline_ms: 0,
        });
        let mut running = d.start();
        running.push(sid, StreamElement::punctuation(sp));
        assert!(running.try_push(StreamId(1), tup(1, 1, 5.0, 2.0)).is_ok());
        assert!(running.try_push(StreamId(1), tup(2, 1, 5.0, 2.0)).is_ok());
        let err = running.try_push(StreamId(1), tup(3, 1, 5.0, 2.0)).unwrap_err();
        match err {
            sp_engine::EngineError::Overloaded { retry_after_ms } => {
                assert!(retry_after_ms > 0);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // The admitted tuples were released; the refused one never
        // entered the plan.
        let results: Vec<u64> = running.results(q).tuples().map(|t| t.tid.raw()).collect();
        assert_eq!(results, vec![1, 2]);
        assert_eq!(running.degradation().admission_rejected, 1);
    }

    #[test]
    fn admission_never_refuses_punctuations() {
        let mut d = dsms();
        let alice = d.register_subject("alice", &["family"]).unwrap();
        let q = d.submit("SELECT obj_id FROM LocationUpdates", alice).unwrap();
        d.admission = Some(sp_engine::AdmissionConfig {
            tokens_per_sec: 1,
            burst: 1,
            enqueue_deadline_ms: 0,
        });
        let mut running = d.start();
        // Exhaust the bucket with the single burst token.
        assert!(running.try_push(StreamId(1), tup(1, 1, 5.0, 2.0)).is_ok());
        assert!(running.try_push(StreamId(1), tup(2, 1, 5.0, 2.0)).is_err());
        // A punctuation still goes through at zero balance: overload may
        // drop data, never policy updates.
        let (sid, sp) = d
            .insert_sp(
                "INSERT SP INTO STREAM LocationUpdates LET DDP = ('*', '*', '*'), SRP = 'family'",
                Timestamp(1),
            )
            .unwrap();
        assert!(running.try_push(sid, StreamElement::punctuation(sp)).is_ok());
        // The sp arrived after the tuples, so nothing is released — but
        // the policy state advanced, which is what matters here.
        assert_eq!(running.results(q).tuple_count(), 0);
    }

    #[test]
    fn sharded_session_matches_sequential() {
        let mut d = dsms();
        let alice = d.register_subject("alice", &["family"]).unwrap();
        let q = d.submit("SELECT obj_id, x FROM LocationUpdates WHERE speed > 1", alice).unwrap();
        let (sid, sp) = d
            .insert_sp(
                "INSERT SP INTO STREAM LocationUpdates LET DDP = ('*', '*', '*'), SRP = 'family'",
                Timestamp(0),
            )
            .unwrap();
        d.telemetry = Some(sp_engine::TelemetryConfig {
            audit_capacity: 1024,
            span_capacity: 1024,
            metrics: false,
        });
        let mut input = vec![(sid, StreamElement::punctuation(sp))];
        for i in 1..=40 {
            input.push((StreamId(1), tup(i, i, 1.0, if i % 3 == 0 { 0.5 } else { 2.0 })));
        }

        let mut seq = d.start();
        for (s, e) in &input {
            seq.push(*s, e.clone());
        }
        let want: Vec<u64> = seq.results(q).tuples().map(|t| t.tid.raw()).collect();
        let want_trail = seq.audit_trail().encode_to_vec();
        assert!(!want.is_empty());

        for shards in [1usize, 2, 4] {
            d.shards = shards;
            let mut run = d.try_start().unwrap();
            assert_eq!(run.shards(), shards.max(1));
            for (s, e) in &input {
                run.push(*s, e.clone());
            }
            let got: Vec<u64> = run.results(q).tuples().map(|t| t.tid.raw()).collect();
            assert_eq!(got, want, "released set diverged at {shards} shards");
            assert_eq!(
                run.audit_trail().encode_to_vec(),
                want_trail,
                "audit trail diverged at {shards} shards"
            );
            assert!(run.errors().is_empty());
        }
    }

    #[test]
    fn sharded_session_checkpoint_resumes_at_other_width() {
        let mut d = dsms();
        let alice = d.register_subject("alice", &["family"]).unwrap();
        let q = d.submit("SELECT obj_id FROM LocationUpdates", alice).unwrap();
        let (sid, sp) = d
            .insert_sp(
                "INSERT SP INTO STREAM LocationUpdates LET DDP = ('*', '*', '*'), SRP = 'family'",
                Timestamp(0),
            )
            .unwrap();
        let mut input = vec![(sid, StreamElement::punctuation(sp))];
        for i in 1..=20 {
            input.push((StreamId(1), tup(i, i, 1.0, 2.0)));
        }

        let mut base = d.start();
        for (s, e) in &input {
            base.push(*s, e.clone());
        }
        let baseline: Vec<u64> = base.results(q).tuples().map(|t| t.tid.raw()).collect();

        // Checkpoint at 4 shards, resume at 2.
        d.shards = 4;
        let mut store = sp_engine::MemStore::default();
        let mut run = d.try_start().unwrap();
        for (s, e) in input.iter().take(11) {
            run.push(*s, e.clone());
        }
        run.checkpoint_to(1, &mut store).unwrap();
        drop(run);

        d.shards = 2;
        let mut resumed = d.resume(&store).unwrap();
        assert_eq!(resumed.shards(), 2);
        assert_eq!(resumed.input_pos(), 11);
        for (s, e) in input.iter().skip(11) {
            resumed.push(*s, e.clone());
        }
        let got: Vec<u64> = resumed.results(q).tuples().map(|t| t.tid.raw()).collect();
        assert!(baseline.ends_with(&got), "re-sharded resume released {got:?}");
        assert!(resumed.errors().is_empty());
    }

    #[test]
    fn try_start_refuses_unshardable_plans() {
        let mut d = dsms();
        d.register_stream(
            StreamId(2),
            Schema::of("Regions", &[("obj_id", ValueType::Int), ("region", ValueType::Int)]),
        )
        .unwrap();
        let alice = d.register_subject("alice", &["family"]).unwrap();
        let _q = d
            .submit(
                "SELECT a.obj_id FROM LocationUpdates [RANGE 10 SECONDS] AS a, \
                 Regions [RANGE 10 SECONDS] AS b WHERE a.obj_id = b.obj_id",
                alice,
            )
            .unwrap();
        d.shards = 4;
        let got = d.try_start();
        assert!(matches!(got, Err(sp_engine::EngineError::ShardUnsupported { .. })));
        // shards ≤ 1 still starts the same plan sequentially.
        d.shards = 0;
        let _running = d.try_start().unwrap();
    }

    #[test]
    fn push_records_admission_errors() {
        let mut d = dsms();
        let alice = d.register_subject("alice", &["family"]).unwrap();
        let _q = d.submit("SELECT obj_id FROM LocationUpdates", alice).unwrap();
        d.admission = Some(sp_engine::AdmissionConfig {
            tokens_per_sec: 1,
            burst: 1,
            enqueue_deadline_ms: 0,
        });
        let mut running = d.start();
        running.push(StreamId(1), tup(1, 1, 5.0, 2.0));
        running.push(StreamId(1), tup(2, 1, 5.0, 2.0));
        assert_eq!(running.errors().len(), 1);
        assert!(matches!(running.errors()[0], sp_engine::EngineError::Overloaded { .. }));
        // input_pos still counts the rejected element so a later
        // checkpoint does not invite its replay.
        assert_eq!(running.input_pos(), 2);
    }
}
