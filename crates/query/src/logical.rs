//! Security-aware logical query plans.
//!
//! The algebra of Table I as a plan tree: scans, the Security Shield ψ,
//! select σ, project π, SAJoin ⋈, duplicate elimination δ and group-by.
//! Plans are immutable values; the rewrite rules of Table II
//! ([`crate::rules`]) produce transformed copies and the optimizer costs
//! them with the model of §VI-A ([`crate::cost`]).

use std::fmt;
use std::sync::Arc;

use sp_core::{RoleSet, Schema, StreamId};
use sp_engine::{AggFunc, Expr, JoinVariant};

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// A registered stream scan.
    Scan {
        /// Engine stream id.
        stream: StreamId,
        /// Stream schema.
        schema: Arc<Schema>,
        /// Sliding-window length (used by stateful consumers).
        window_ms: u64,
    },
    /// Security Shield ψ_roles.
    Shield {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The security predicate (roles of the protected queries).
        roles: RoleSet,
    },
    /// Selection σ_predicate.
    Select {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The predicate over the input schema.
        predicate: Expr,
    },
    /// Projection π_indices.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Kept attribute indices, in output order.
        indices: Vec<usize>,
    },
    /// Sliding-window equijoin (SAJoin).
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Left join-key attribute index.
        left_key: usize,
        /// Right join-key attribute index.
        right_key: usize,
        /// Window length per side (ms).
        window_ms: u64,
        /// Physical variant.
        variant: JoinVariant,
    },
    /// Duplicate elimination δ over a sliding window.
    DupElim {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Distinctness key attribute indices (empty = whole tuple).
        keys: Vec<usize>,
        /// Window length (ms).
        window_ms: u64,
    },
    /// Security-aware bag union (same-schema inputs).
    Union {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Security-aware windowed intersection.
    Intersect {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Window length per side (ms).
        window_ms: u64,
    },
    /// Windowed group-by aggregate.
    GroupBy {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping attribute (None = single global group).
        group: Option<usize>,
        /// Aggregate function.
        agg: AggFunc,
        /// Aggregated attribute index.
        agg_attr: usize,
        /// Window length (ms).
        window_ms: u64,
    },
}

impl LogicalPlan {
    /// The output schema of this plan.
    #[must_use]
    pub fn schema(&self) -> Arc<Schema> {
        match self {
            LogicalPlan::Scan { schema, .. } => schema.clone(),
            LogicalPlan::Shield { input, .. } | LogicalPlan::Select { input, .. } => input.schema(),
            LogicalPlan::Project { input, indices } => Arc::new(input.schema().project(indices)),
            LogicalPlan::Join { left, right, .. } => Arc::new(left.schema().join(&right.schema())),
            LogicalPlan::Union { left, .. } | LogicalPlan::Intersect { left, .. } => left.schema(),
            LogicalPlan::DupElim { input, .. } => input.schema(),
            LogicalPlan::GroupBy { input, group, agg, agg_attr, .. } => {
                let in_schema = input.schema();
                let group_field = group
                    .and_then(|g| in_schema.field(g))
                    .map_or_else(|| "group".to_owned(), |f| f.name.to_string());
                let agg_name = in_schema
                    .field(*agg_attr)
                    .map_or_else(|| format!("#{agg_attr}"), |f| f.name.to_string());
                Schema::of(
                    &format!("{}_agg", in_schema.name()),
                    &[
                        (group_field.as_str(), sp_core::ValueType::Int),
                        (
                            format!("{}_{agg_name}", agg.name().to_ascii_lowercase()).as_str(),
                            sp_core::ValueType::Float,
                        ),
                    ],
                )
            }
        }
    }

    /// Child plans.
    #[must_use]
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Shield { input, .. }
            | LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::DupElim { input, .. }
            | LogicalPlan::GroupBy { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. }
            | LogicalPlan::Union { left, right }
            | LogicalPlan::Intersect { left, right, .. } => vec![left, right],
        }
    }

    /// Rebuilds this node with new children (same order as
    /// [`LogicalPlan::children`]).
    ///
    /// # Panics
    ///
    /// Panics if the child count does not match.
    #[must_use]
    pub fn with_children(&self, mut children: Vec<LogicalPlan>) -> LogicalPlan {
        /// Pops the (left, right) pair of a binary node.
        fn pop2(children: &mut Vec<LogicalPlan>) -> (Box<LogicalPlan>, Box<LogicalPlan>) {
            match (children.pop(), children.pop()) {
                (Some(right), Some(left)) if children.is_empty() => {
                    (Box::new(left), Box::new(right))
                }
                _ => panic!("binary node takes exactly two children"),
            }
        }
        match self {
            LogicalPlan::Scan { .. } => {
                assert!(children.is_empty(), "scan has no children");
                self.clone()
            }
            LogicalPlan::Join { left_key, right_key, window_ms, variant, .. } => {
                let (left, right) = pop2(&mut children);
                LogicalPlan::Join {
                    left,
                    right,
                    left_key: *left_key,
                    right_key: *right_key,
                    window_ms: *window_ms,
                    variant: *variant,
                }
            }
            LogicalPlan::Union { .. } => {
                let (left, right) = pop2(&mut children);
                LogicalPlan::Union { left, right }
            }
            LogicalPlan::Intersect { window_ms, .. } => {
                let (left, right) = pop2(&mut children);
                LogicalPlan::Intersect { left, right, window_ms: *window_ms }
            }
            other => {
                let input = match children.pop() {
                    Some(only) if children.is_empty() => Box::new(only),
                    _ => panic!("unary node takes exactly one child"),
                };
                match other {
                    LogicalPlan::Shield { roles, .. } => {
                        LogicalPlan::Shield { input, roles: roles.clone() }
                    }
                    LogicalPlan::Select { predicate, .. } => {
                        LogicalPlan::Select { input, predicate: predicate.clone() }
                    }
                    LogicalPlan::Project { indices, .. } => {
                        LogicalPlan::Project { input, indices: indices.clone() }
                    }
                    LogicalPlan::DupElim { keys, window_ms, .. } => {
                        LogicalPlan::DupElim { input, keys: keys.clone(), window_ms: *window_ms }
                    }
                    LogicalPlan::GroupBy { group, agg, agg_attr, window_ms, .. } => {
                        LogicalPlan::GroupBy {
                            input,
                            group: *group,
                            agg: *agg,
                            agg_attr: *agg_attr,
                            window_ms: *window_ms,
                        }
                    }
                    LogicalPlan::Scan { .. }
                    | LogicalPlan::Join { .. }
                    | LogicalPlan::Union { .. }
                    | LogicalPlan::Intersect { .. } => unreachable!(),
                }
            }
        }
    }

    /// Number of operators in the plan.
    #[must_use]
    pub fn node_count(&self) -> usize {
        1 + self.children().iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// Number of Security Shield operators in the plan.
    #[must_use]
    pub fn shield_count(&self) -> usize {
        let own = usize::from(matches!(self, LogicalPlan::Shield { .. }));
        own + self.children().iter().map(|c| c.shield_count()).sum::<usize>()
    }

    /// One-word operator name.
    #[must_use]
    pub fn op_name(&self) -> &'static str {
        match self {
            LogicalPlan::Scan { .. } => "scan",
            LogicalPlan::Shield { .. } => "ss",
            LogicalPlan::Select { .. } => "select",
            LogicalPlan::Project { .. } => "project",
            LogicalPlan::Join { .. } => "sajoin",
            LogicalPlan::Union { .. } => "union",
            LogicalPlan::Intersect { .. } => "intersect",
            LogicalPlan::DupElim { .. } => "dupelim",
            LogicalPlan::GroupBy { .. } => "groupby",
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        for _ in 0..indent {
            write!(f, "  ")?;
        }
        match self {
            LogicalPlan::Scan { stream, schema, window_ms } => {
                writeln!(f, "scan {} (s{}, window {}ms)", schema.name(), stream, window_ms)?;
            }
            LogicalPlan::Shield { roles, .. } => {
                writeln!(f, "ss ψ{roles}")?;
            }
            LogicalPlan::Select { predicate, input } => {
                writeln!(f, "select σ[{}]", predicate.display(&input.schema()))?;
            }
            LogicalPlan::Project { indices, input } => {
                let schema = input.schema();
                let names: Vec<String> = indices
                    .iter()
                    .map(|&i| {
                        schema.field(i).map_or_else(|| format!("#{i}"), |fd| fd.name.to_string())
                    })
                    .collect();
                writeln!(f, "project π[{}]", names.join(", "))?;
            }
            LogicalPlan::Join { left_key, right_key, window_ms, variant, .. } => {
                writeln!(
                    f,
                    "sajoin ⋈[{left_key}={right_key}] (window {window_ms}ms, {variant:?})"
                )?;
            }
            LogicalPlan::Union { .. } => {
                writeln!(f, "union ∪")?;
            }
            LogicalPlan::Intersect { window_ms, .. } => {
                writeln!(f, "intersect ∩ (window {window_ms}ms)")?;
            }
            LogicalPlan::DupElim { keys, window_ms, .. } => {
                writeln!(f, "dupelim δ{keys:?} (window {window_ms}ms)")?;
            }
            LogicalPlan::GroupBy { group, agg, agg_attr, window_ms, .. } => {
                writeln!(
                    f,
                    "groupby {}(#{agg_attr}) by {group:?} (window {window_ms}ms)",
                    agg.name()
                )?;
            }
        }
        for child in self.children() {
            child.fmt_indented(f, indent + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use sp_core::ValueType;
    use sp_engine::CmpOp;

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan {
            stream: StreamId(1),
            schema: Schema::of(
                "loc",
                &[("id", ValueType::Int), ("x", ValueType::Float), ("y", ValueType::Float)],
            ),
            window_ms: 10_000,
        }
    }

    #[test]
    fn schema_propagation() {
        let plan = LogicalPlan::Project {
            input: Box::new(LogicalPlan::Shield {
                input: Box::new(scan()),
                roles: RoleSet::from([1]),
            }),
            indices: vec![2, 0],
        };
        let schema = plan.schema();
        assert_eq!(schema.arity(), 2);
        assert_eq!(schema.index_of("y"), Some(0));
        assert_eq!(schema.index_of("id"), Some(1));
    }

    #[test]
    fn join_schema_concatenates() {
        let plan = LogicalPlan::Join {
            left: Box::new(scan()),
            right: Box::new(scan()),
            left_key: 0,
            right_key: 0,
            window_ms: 5000,
            variant: JoinVariant::Index,
        };
        assert_eq!(plan.schema().arity(), 6);
        assert_eq!(plan.node_count(), 3);
    }

    #[test]
    fn groupby_schema() {
        let plan = LogicalPlan::GroupBy {
            input: Box::new(scan()),
            group: Some(0),
            agg: AggFunc::Avg,
            agg_attr: 1,
            window_ms: 1000,
        };
        let schema = plan.schema();
        assert_eq!(schema.arity(), 2);
        assert_eq!(schema.index_of("id"), Some(0));
        assert_eq!(schema.index_of("avg_x"), Some(1));
    }

    #[test]
    fn with_children_round_trips() {
        let shield = LogicalPlan::Shield { input: Box::new(scan()), roles: RoleSet::from([2]) };
        let rebuilt = shield.with_children(vec![scan()]);
        assert_eq!(shield, rebuilt);

        let join = LogicalPlan::Join {
            left: Box::new(scan()),
            right: Box::new(scan()),
            left_key: 1,
            right_key: 2,
            window_ms: 100,
            variant: JoinVariant::NestedLoopPF,
        };
        let rebuilt = join.with_children(vec![scan(), scan()]);
        assert_eq!(join, rebuilt);
    }

    #[test]
    fn display_is_indented() {
        let plan = LogicalPlan::Select {
            predicate: Expr::cmp(CmpOp::Gt, Expr::Attr(1), Expr::Const(sp_core::Value::Int(0))),
            input: Box::new(scan()),
        };
        let text = plan.to_string();
        assert!(text.starts_with("select"));
        assert!(text.contains("\n  scan"));
        assert_eq!(plan.op_name(), "select");
        assert_eq!(plan.shield_count(), 0);
    }
}
