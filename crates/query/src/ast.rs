//! Abstract syntax for the CQL subset and the `INSERT SP` extension
//! (§III-D).

use sp_core::Sign;
use sp_engine::AggFunc;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A continuous query.
    Select(SelectStmt),
    /// An `INSERT SP` punctuation declaration.
    InsertSp(InsertSpStmt),
}

/// A column reference, optionally qualified by a stream name/alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Qualifier (stream name or alias), if any.
    pub stream: Option<String>,
    /// Attribute name.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified column.
    #[must_use]
    pub fn bare(name: &str) -> Self {
        Self { stream: None, column: name.to_owned() }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// A plain column.
    Column(ColumnRef),
    /// `agg(column)` — or `COUNT(*)` with `column == None`.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The aggregated column (None for `COUNT(*)`).
        column: Option<ColumnRef>,
    },
}

/// A stream in the FROM clause with an optional sliding window.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRef {
    /// Registered stream name.
    pub name: String,
    /// Optional alias (`FROM HeartRate AS h`).
    pub alias: Option<String>,
    /// Window length in milliseconds (`[RANGE n SECONDS]`).
    pub window_ms: Option<u64>,
}

/// A scalar/predicate expression in WHERE.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Column reference.
    Column(ColumnRef),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Binary operation.
    Binary {
        /// Operator lexeme: `=`, `!=`, `<`, `<=`, `>`, `>=`, `+`, `-`,
        /// `*`, `/`, `AND`, `OR`.
        op: String,
        /// Left operand.
        left: Box<AstExpr>,
        /// Right operand.
        right: Box<AstExpr>,
    },
    /// Negation (`NOT e`).
    Not(Box<AstExpr>),
}

/// A continuous SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// The projection list.
    pub items: Vec<SelectItem>,
    /// `DISTINCT`?
    pub distinct: bool,
    /// Input streams (1 = unary pipeline, 2 = join).
    pub from: Vec<StreamRef>,
    /// WHERE predicate.
    pub predicate: Option<AstExpr>,
    /// GROUP BY column.
    pub group_by: Option<ColumnRef>,
    /// `UNION`-ed follow-up query, if any (same output arity required).
    pub union_with: Option<Box<SelectStmt>>,
}

/// An `INSERT SP` statement (§III-D):
///
/// ```text
/// INSERT SP [name] INTO STREAM stream
/// LET DDP = ('<stream pattern>', '<tuple pattern>', '<attr pattern>'),
///     SRP = '<role pattern>'
///     [, SIGN = positive | negative]
///     [, IMMUTABLE = true | false]
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InsertSpStmt {
    /// Optional punctuation name.
    pub name: Option<String>,
    /// Target stream name (or numeric stream id rendered as text).
    pub stream: String,
    /// DDP pattern sources: (stream, tuple, attributes).
    pub ddp: (String, String, String),
    /// SRP role pattern source.
    pub srp: String,
    /// Positive or negative authorization.
    pub sign: Sign,
    /// Immutability flag.
    pub immutable: bool,
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn column_ref_helpers() {
        let c = ColumnRef::bare("x");
        assert_eq!(c.stream, None);
        assert_eq!(c.column, "x");
    }

    #[test]
    fn ast_nodes_compare() {
        let a = AstExpr::Binary {
            op: "=".into(),
            left: Box::new(AstExpr::Column(ColumnRef::bare("x"))),
            right: Box::new(AstExpr::Int(1)),
        };
        assert_eq!(a.clone(), a);
    }
}
