//! Translates parsed statements into security-aware logical plans.
//!
//! Every registered continuous query inherits the roles of its query
//! specifier (§II-B); the planner places one Security Shield directly above
//! each scan (the conservative pre-filtering position) and leaves better
//! placements to the optimizer (§VI).

use std::sync::Arc;

use sp_core::{
    DataDescription, RoleSet, Schema, SecurityPunctuation, SecurityRestriction, Timestamp, Value,
};
use sp_engine::{ArithOp, CmpOp, Expr, JoinVariant};
use sp_pattern::Pattern;

use crate::ast::{AstExpr, ColumnRef, InsertSpStmt, SelectItem, SelectStmt};
use crate::catalog::Catalog;
use crate::lexer::QueryError;
use crate::logical::LogicalPlan;

/// Default sliding window when a query does not specify `[RANGE ...]`.
pub const DEFAULT_WINDOW_MS: u64 = 10_000;

/// One side of the FROM clause, resolved.
struct FromStream {
    alias: String,
    schema: Arc<Schema>,
}

/// Resolves a column reference to (stream index, attribute index).
fn resolve_column(streams: &[FromStream], col: &ColumnRef) -> Result<(usize, usize), QueryError> {
    match &col.stream {
        Some(qualifier) => {
            let si = streams
                .iter()
                .position(|s| s.alias == *qualifier || s.schema.name() == qualifier)
                .ok_or_else(|| {
                    QueryError::new(format!("unknown stream qualifier {qualifier:?}"), 0)
                })?;
            let ai = streams[si].schema.index_of(&col.column).ok_or_else(|| {
                QueryError::new(
                    format!("unknown column {:?} in stream {qualifier:?}", col.column),
                    0,
                )
            })?;
            Ok((si, ai))
        }
        None => {
            let mut found = None;
            for (si, s) in streams.iter().enumerate() {
                if let Some(ai) = s.schema.index_of(&col.column) {
                    if found.is_some() {
                        return Err(QueryError::new(
                            format!("ambiguous column {:?}", col.column),
                            0,
                        ));
                    }
                    found = Some((si, ai));
                }
            }
            found.ok_or_else(|| QueryError::new(format!("unknown column {:?}", col.column), 0))
        }
    }
}

/// The conjuncts of a predicate, flattened.
fn conjuncts(expr: &AstExpr) -> Vec<&AstExpr> {
    match expr {
        AstExpr::Binary { op, left, right } if op == "AND" => {
            let mut out = conjuncts(left);
            out.extend(conjuncts(right));
            out
        }
        other => vec![other],
    }
}

/// The stream indices referenced by an expression (0, 1 or both).
fn streams_used(
    streams: &[FromStream],
    expr: &AstExpr,
    out: &mut Vec<usize>,
) -> Result<(), QueryError> {
    match expr {
        AstExpr::Column(c) => {
            let (si, _) = resolve_column(streams, c)?;
            if !out.contains(&si) {
                out.push(si);
            }
            Ok(())
        }
        AstExpr::Int(_) | AstExpr::Float(_) | AstExpr::Str(_) => Ok(()),
        AstExpr::Binary { left, right, .. } => {
            streams_used(streams, left, out)?;
            streams_used(streams, right, out)
        }
        AstExpr::Not(inner) => streams_used(streams, inner, out),
    }
}

/// Lowers an AST expression to an engine [`Expr`], mapping each column
/// through `attr_of` (side, attribute) → plan attribute index.
fn lower_expr(
    streams: &[FromStream],
    expr: &AstExpr,
    attr_of: &dyn Fn(usize, usize) -> usize,
) -> Result<Expr, QueryError> {
    Ok(match expr {
        AstExpr::Column(c) => {
            let (si, ai) = resolve_column(streams, c)?;
            Expr::Attr(attr_of(si, ai))
        }
        AstExpr::Int(v) => Expr::Const(Value::Int(*v)),
        AstExpr::Float(v) => Expr::Const(Value::Float(*v)),
        AstExpr::Str(s) => Expr::Const(Value::text(s)),
        AstExpr::Not(inner) => Expr::not(lower_expr(streams, inner, attr_of)?),
        AstExpr::Binary { op, left, right } => {
            let l = lower_expr(streams, left, attr_of)?;
            let r = lower_expr(streams, right, attr_of)?;
            match op.as_str() {
                "AND" => Expr::and(l, r),
                "OR" => Expr::or(l, r),
                "=" => Expr::cmp(CmpOp::Eq, l, r),
                "!=" => Expr::cmp(CmpOp::Ne, l, r),
                "<" => Expr::cmp(CmpOp::Lt, l, r),
                "<=" => Expr::cmp(CmpOp::Le, l, r),
                ">" => Expr::cmp(CmpOp::Gt, l, r),
                ">=" => Expr::cmp(CmpOp::Ge, l, r),
                "+" => Expr::arith(ArithOp::Add, l, r),
                "-" => Expr::arith(ArithOp::Sub, l, r),
                "*" => Expr::arith(ArithOp::Mul, l, r),
                "/" => Expr::arith(ArithOp::Div, l, r),
                other => return Err(QueryError::new(format!("unknown operator {other:?}"), 0)),
            }
        }
    })
}

/// Plans a SELECT statement for a query holding `roles`.
///
/// # Errors
///
/// Fails on unknown streams/columns, unsupported shapes, or ambiguity.
pub fn plan_select(
    catalog: &Catalog,
    stmt: &SelectStmt,
    roles: &RoleSet,
) -> Result<LogicalPlan, QueryError> {
    if stmt.from.is_empty() {
        return Err(QueryError::new("FROM clause is empty", 0));
    }
    let mut streams = Vec::new();
    let mut scans = Vec::new();
    for sref in &stmt.from {
        let def = catalog
            .stream(&sref.name)
            .ok_or_else(|| QueryError::new(format!("unknown stream {:?}", sref.name), 0))?;
        streams.push(FromStream {
            alias: sref.alias.clone().unwrap_or_else(|| sref.name.clone()),
            schema: def.schema.clone(),
        });
        scans.push(LogicalPlan::Shield {
            input: Box::new(LogicalPlan::Scan {
                stream: def.id,
                schema: def.schema.clone(),
                window_ms: sref.window_ms.unwrap_or(DEFAULT_WINDOW_MS),
            }),
            roles: roles.clone(),
        });
    }

    // Split the predicate into per-stream conjuncts, a join condition, and
    // post-join residue.
    let mut per_stream: Vec<Vec<&AstExpr>> = vec![Vec::new(); streams.len()];
    let mut join_keys: Option<(usize, usize)> = None;
    let mut residue: Vec<&AstExpr> = Vec::new();
    if let Some(pred) = &stmt.predicate {
        for conj in conjuncts(pred) {
            let mut used = Vec::new();
            streams_used(&streams, conj, &mut used)?;
            match used.as_slice() {
                [] | [_] => {
                    let si = used.first().copied().unwrap_or(0);
                    per_stream[si].push(conj);
                }
                _ => {
                    // Cross-stream conjunct: an equality becomes the join
                    // condition (first one wins); everything else is
                    // evaluated post-join.
                    if join_keys.is_none() {
                        if let AstExpr::Binary { op, left, right } = conj {
                            if op == "="
                                && matches!(**left, AstExpr::Column(_))
                                && matches!(**right, AstExpr::Column(_))
                            {
                                let (AstExpr::Column(lc), AstExpr::Column(rc)) =
                                    (&**left, &**right)
                                else {
                                    unreachable!()
                                };
                                let (lsi, lai) = resolve_column(&streams, lc)?;
                                let (rsi, rai) = resolve_column(&streams, rc)?;
                                if lsi != rsi {
                                    join_keys =
                                        Some(if lsi == 0 { (lai, rai) } else { (rai, lai) });
                                    continue;
                                }
                            }
                        }
                    }
                    residue.push(conj);
                }
            }
        }
    }

    // Per-stream selections above each shield.
    let mut sides: Vec<LogicalPlan> = Vec::new();
    for (si, scan) in scans.into_iter().enumerate() {
        let mut side = scan;
        let lowered = per_stream[si]
            .iter()
            .map(|c| lower_expr(&streams, c, &|_, ai| ai))
            .collect::<Result<Vec<_>, _>>()?;
        if let Some(combined) = lowered.into_iter().reduce(Expr::and) {
            side = LogicalPlan::Select { input: Box::new(side), predicate: combined };
        }
        sides.push(side);
    }

    // Join or single pipeline.
    let mut plan = if streams.len() == 2 {
        let (left_key, right_key) = join_keys.ok_or_else(|| {
            QueryError::new("two-stream queries need an equijoin predicate (a.x = b.y)", 0)
        })?;
        let window_ms =
            stmt.from.iter().filter_map(|s| s.window_ms).max().unwrap_or(DEFAULT_WINDOW_MS);
        let (Some(right), Some(left)) = (sides.pop(), sides.pop()) else {
            return Err(QueryError::new("internal: join requires two planned sides", 0));
        };
        let left_arity = streams[0].schema.arity();
        let join = LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            left_key,
            right_key,
            window_ms,
            variant: JoinVariant::Index,
        };
        // Post-join residue maps (side, attr) → concatenated index.
        let lowered = residue
            .iter()
            .map(|c| lower_expr(&streams, c, &|si, ai| if si == 0 { ai } else { left_arity + ai }))
            .collect::<Result<Vec<_>, _>>()?;
        match lowered.into_iter().reduce(Expr::and) {
            Some(combined) => LogicalPlan::Select { input: Box::new(join), predicate: combined },
            None => join,
        }
    } else {
        sides.pop().ok_or_else(|| QueryError::new("query references no stream", 0))?
    };

    let left_arity = streams[0].schema.arity();
    let attr_of = |si: usize, ai: usize| if si == 0 { ai } else { left_arity + ai };
    let window_ms = stmt.from.iter().filter_map(|s| s.window_ms).max().unwrap_or(DEFAULT_WINDOW_MS);

    // Aggregation.
    let aggregate = stmt.items.iter().find_map(|item| match item {
        SelectItem::Aggregate { func, column } => Some((*func, column.clone())),
        _ => None,
    });
    if let Some((func, column)) = aggregate {
        if stmt.items.len() > 1
            && !(stmt.items.len() == 2
                && stmt.items.iter().any(|i| matches!(i, SelectItem::Column(_))))
        {
            return Err(QueryError::new(
                "aggregate queries support at most one aggregate plus the group column",
                0,
            ));
        }
        let group = stmt
            .group_by
            .as_ref()
            .map(|g| resolve_column(&streams, g).map(|(si, ai)| attr_of(si, ai)))
            .transpose()?;
        let agg_attr = match &column {
            Some(c) => {
                let (si, ai) = resolve_column(&streams, c)?;
                attr_of(si, ai)
            }
            None => group.unwrap_or(0), // COUNT(*) counts any attribute
        };
        plan =
            LogicalPlan::GroupBy { input: Box::new(plan), group, agg: func, agg_attr, window_ms };
        // The group-by node emits [group, aggregate]; project the SELECT
        // list's shape onto it (e.g. `SELECT COUNT(x)` must not leak the
        // grouping column, and `SELECT AVG(x), id` must keep that order).
        let indices: Vec<usize> = stmt
            .items
            .iter()
            .map(|item| match item {
                SelectItem::Aggregate { .. } => 1,
                _ => 0,
            })
            .collect();
        if indices != [0, 1] {
            plan = LogicalPlan::Project { input: Box::new(plan), indices };
        }
        return Ok(plan);
    }

    // Final projection.
    let wildcard = stmt.items.iter().any(|i| matches!(i, SelectItem::Wildcard));
    if !wildcard {
        let mut indices = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Column(c) => {
                    let (si, ai) = resolve_column(&streams, c)?;
                    indices.push(attr_of(si, ai));
                }
                SelectItem::Wildcard | SelectItem::Aggregate { .. } => unreachable!(),
            }
        }
        plan = LogicalPlan::Project { input: Box::new(plan), indices };
    }

    // DISTINCT applies to the projected columns (SQL semantics), so the
    // duplicate elimination sits above the projection.
    if stmt.distinct {
        plan = LogicalPlan::DupElim { input: Box::new(plan), keys: Vec::new(), window_ms };
    }

    // UNION with a follow-up query of matching output arity.
    if let Some(next) = &stmt.union_with {
        let right = plan_select(catalog, next, roles)?;
        if right.schema().arity() != plan.schema().arity() {
            return Err(QueryError::new(
                format!(
                    "UNION arms have different arities ({} vs {})",
                    plan.schema().arity(),
                    right.schema().arity()
                ),
                0,
            ));
        }
        plan = LogicalPlan::Union { left: Box::new(plan), right: Box::new(right) };
    }
    Ok(plan)
}

/// Lowers an `INSERT SP` statement into a [`SecurityPunctuation`] ready to
/// be injected into the target stream at time `ts`.
///
/// # Errors
///
/// Fails on unknown streams or invalid pattern syntax.
pub fn plan_insert_sp(
    catalog: &Catalog,
    stmt: &InsertSpStmt,
    ts: Timestamp,
) -> Result<(sp_core::StreamId, SecurityPunctuation), QueryError> {
    let def = catalog
        .stream(&stmt.stream)
        .ok_or_else(|| QueryError::new(format!("unknown stream {:?}", stmt.stream), 0))?;
    let compile = |src: &str| Pattern::compile(src).map_err(|e| QueryError::new(e.to_string(), 0));
    let sp = SecurityPunctuation {
        ddp: DataDescription {
            stream: compile(&stmt.ddp.0)?,
            tuple: compile(&stmt.ddp.1)?,
            attrs: compile(&stmt.ddp.2)?,
        },
        srp: SecurityRestriction::role_pattern(compile(&stmt.srp)?),
        sign: stmt.sign,
        immutable: stmt.immutable,
        ts,
    };
    Ok((def.id, sp))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::parser::parse;
    use sp_core::{StreamId, ValueType};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.roles.register_synthetic_roles(8);
        c.register_stream(
            StreamId(1),
            Schema::of(
                "LocationUpdates",
                &[
                    ("obj_id", ValueType::Int),
                    ("x", ValueType::Float),
                    ("y", ValueType::Float),
                    ("speed", ValueType::Float),
                ],
            ),
        )
        .unwrap();
        c.register_stream(
            StreamId(2),
            Schema::of("Regions", &[("obj_id", ValueType::Int), ("region", ValueType::Int)]),
        )
        .unwrap();
        c
    }

    fn plan(src: &str) -> LogicalPlan {
        let c = catalog();
        let stmt = match parse(src).unwrap() {
            crate::ast::Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        plan_select(&c, &stmt, &RoleSet::from([1])).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn select_project_plan_shape() {
        let p = plan("SELECT obj_id, x FROM LocationUpdates WHERE speed > 5");
        // project → select → shield → scan
        assert_eq!(p.op_name(), "project");
        let sel = p.children()[0];
        assert_eq!(sel.op_name(), "select");
        let ss = sel.children()[0];
        assert_eq!(ss.op_name(), "ss");
        assert_eq!(ss.children()[0].op_name(), "scan");
        assert_eq!(p.schema().arity(), 2);
    }

    #[test]
    fn wildcard_keeps_everything() {
        let p = plan("SELECT * FROM LocationUpdates");
        assert_eq!(p.op_name(), "ss");
        assert_eq!(p.schema().arity(), 4);
    }

    #[test]
    fn join_plan_splits_predicates() {
        let p = plan(
            "SELECT a.obj_id, b.region FROM LocationUpdates [RANGE 5 SECONDS] AS a, \
             Regions [RANGE 5 SECONDS] AS b \
             WHERE a.obj_id = b.obj_id AND a.speed > 1 AND b.region = 7",
        );
        assert_eq!(p.op_name(), "project");
        let join = p.children()[0];
        assert_eq!(join.op_name(), "sajoin");
        // Each side: select above shield above scan.
        for side in join.children() {
            assert_eq!(side.op_name(), "select");
            assert_eq!(side.children()[0].op_name(), "ss");
        }
        // Projection indices span the concatenated schema.
        assert_eq!(p.schema().arity(), 2);
    }

    #[test]
    fn cross_stream_residue_goes_above_join() {
        let p = plan(
            "SELECT a.obj_id FROM LocationUpdates AS a, Regions AS b \
             WHERE a.obj_id = b.obj_id AND a.x > b.region",
        );
        let select = p.children()[0];
        assert_eq!(select.op_name(), "select", "residue select above join");
        assert_eq!(select.children()[0].op_name(), "sajoin");
    }

    #[test]
    fn group_by_aggregate() {
        // A lone aggregate projects away the grouping column.
        let p = plan("SELECT AVG(speed) FROM LocationUpdates [RANGE 60 SECONDS] GROUP BY obj_id");
        assert_eq!(p.op_name(), "project");
        assert_eq!(p.children()[0].op_name(), "groupby");
        assert_eq!(p.schema().arity(), 1);

        // Group column plus aggregate keeps the natural order unprojected.
        let p = plan("SELECT obj_id, AVG(speed) FROM LocationUpdates GROUP BY obj_id");
        assert_eq!(p.op_name(), "groupby");
        assert_eq!(p.schema().arity(), 2);

        // Reversed order gets an explicit projection.
        let p = plan("SELECT AVG(speed), obj_id FROM LocationUpdates GROUP BY obj_id");
        assert_eq!(p.op_name(), "project");
        let names: Vec<String> = p.schema().fields().iter().map(|f| f.name.to_string()).collect();
        assert!(names[0].contains("avg"), "{names:?}");
    }

    #[test]
    fn distinct_plans_dupelim_above_projection() {
        // DISTINCT applies to the projected columns: δ sits above π.
        let p = plan("SELECT DISTINCT obj_id FROM LocationUpdates");
        assert_eq!(p.op_name(), "dupelim");
        assert_eq!(p.children()[0].op_name(), "project");
        assert_eq!(p.schema().arity(), 1);
    }

    #[test]
    fn union_plans_and_checks_arity() {
        let p = plan("SELECT obj_id FROM LocationUpdates UNION SELECT obj_id FROM Regions");
        assert_eq!(p.op_name(), "union");
        assert_eq!(p.schema().arity(), 1);

        let c = catalog();
        let stmt =
            match parse("SELECT obj_id, x FROM LocationUpdates UNION SELECT obj_id FROM Regions")
                .unwrap()
            {
                crate::ast::Statement::Select(s) => s,
                _ => unreachable!(),
            };
        let err = plan_select(&c, &stmt, &RoleSet::from([1])).unwrap_err();
        assert!(err.to_string().contains("arities"), "{err}");
    }

    #[test]
    fn errors_on_unknowns() {
        let c = catalog();
        let parse_sel = |s: &str| match parse(s).unwrap() {
            crate::ast::Statement::Select(sel) => sel,
            _ => unreachable!(),
        };
        assert!(plan_select(&c, &parse_sel("SELECT * FROM Nope"), &RoleSet::new()).is_err());
        assert!(plan_select(&c, &parse_sel("SELECT zzz FROM LocationUpdates"), &RoleSet::new())
            .is_err());
        assert!(
            plan_select(
                &c,
                &parse_sel("SELECT obj_id FROM LocationUpdates, Regions"),
                &RoleSet::new()
            )
            .is_err(),
            "ambiguous column and missing join predicate"
        );
        assert!(
            plan_select(
                &c,
                &parse_sel("SELECT x FROM LocationUpdates AS a, Regions AS b WHERE a.x > 1"),
                &RoleSet::new()
            )
            .is_err(),
            "join without equijoin predicate"
        );
    }

    #[test]
    fn insert_sp_lowering() {
        let c = catalog();
        let stmt = match parse(
            "INSERT SP INTO STREAM LocationUpdates LET DDP = ('*', '<10-20>', '*'), SRP = 'r1|r2'",
        )
        .unwrap()
        {
            crate::ast::Statement::InsertSp(s) => s,
            _ => unreachable!(),
        };
        let (sid, sp) = plan_insert_sp(&c, &stmt, Timestamp(5)).unwrap();
        assert_eq!(sid, StreamId(1));
        assert_eq!(sp.ts, Timestamp(5));
        let roles = sp.srp.resolve(&c.roles);
        assert_eq!(roles.len(), 2);
        assert!(sp.ddp.tuple.matches_u64(15));
        assert!(!sp.ddp.tuple.matches_u64(25));
    }

    #[test]
    fn insert_sp_unknown_stream_fails() {
        let c = catalog();
        let stmt = crate::ast::InsertSpStmt {
            name: None,
            stream: "Nope".into(),
            ddp: ("*".into(), "*".into(), "*".into()),
            srp: "*".into(),
            sign: sp_core::Sign::Positive,
            immutable: false,
        };
        assert!(plan_insert_sp(&c, &stmt, Timestamp(0)).is_err());
    }
}
