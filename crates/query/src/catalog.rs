//! Stream and query registration catalogs.

use std::sync::Arc;

use sp_core::{QueryId, RoleCatalog, RoleSet, Schema, StreamId, SubjectId};

use crate::lexer::QueryError;

/// A registered stream.
#[derive(Debug, Clone)]
pub struct StreamDef {
    /// Registered name (matches the schema name).
    pub name: String,
    /// Engine stream id.
    pub id: StreamId,
    /// Schema.
    pub schema: Arc<Schema>,
}

/// The DSMS catalog: streams, roles and registered continuous queries.
#[derive(Debug, Default)]
pub struct Catalog {
    streams: Vec<StreamDef>,
    /// The shared role catalog.
    pub roles: RoleCatalog,
    queries: Vec<(QueryId, SubjectId)>,
}

impl Catalog {
    /// An empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a stream.
    ///
    /// # Errors
    ///
    /// Fails if the name or id is already registered.
    pub fn register_stream(&mut self, id: StreamId, schema: Arc<Schema>) -> Result<(), QueryError> {
        let name = schema.name().to_owned();
        if self.streams.iter().any(|s| s.name == name || s.id == id) {
            return Err(QueryError::new(
                format!("stream {name:?} (or id {id}) already registered"),
                0,
            ));
        }
        self.streams.push(StreamDef { name, id, schema });
        Ok(())
    }

    /// Looks up a stream by name (or by numeric id rendered as text).
    #[must_use]
    pub fn stream(&self, name: &str) -> Option<&StreamDef> {
        self.streams.iter().find(|s| s.name == name || s.id.raw().to_string() == name)
    }

    /// All registered streams.
    #[must_use]
    pub fn streams(&self) -> &[StreamDef] {
        &self.streams
    }

    /// Registers a continuous query for `subject`, pinning the subject's
    /// role assignment (§II-A) and returning the query id and the roles the
    /// query inherits.
    ///
    /// # Errors
    ///
    /// Fails if the subject is unknown.
    pub fn register_query(&mut self, subject: SubjectId) -> Result<(QueryId, RoleSet), QueryError> {
        let roles = self
            .roles
            .subject_roles(subject)
            .map_err(|e| QueryError::new(e.to_string(), 0))?
            .clone();
        self.roles.pin_subject(subject).map_err(|e| QueryError::new(e.to_string(), 0))?;
        let id = QueryId(self.queries.len() as u32);
        self.queries.push((id, subject));
        Ok((id, roles))
    }

    /// Deregisters a query, releasing its subject pin.
    pub fn deregister_query(&mut self, id: QueryId) {
        if let Some(pos) = self.queries.iter().position(|(q, _)| *q == id) {
            let (_, subject) = self.queries.remove(pos);
            let _ = self.roles.unpin_subject(subject);
        }
    }

    /// Number of live queries.
    #[must_use]
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use sp_core::ValueType;

    #[test]
    fn stream_registration_and_lookup() {
        let mut c = Catalog::new();
        let schema = Schema::of("HeartRate", &[("Patient_id", ValueType::Int)]);
        c.register_stream(StreamId(1), schema.clone()).unwrap();
        assert!(c.stream("HeartRate").is_some());
        assert!(c.stream("1").is_some(), "lookup by numeric id works");
        assert!(c.stream("nope").is_none());
        assert!(c.register_stream(StreamId(1), schema).is_err());
        assert_eq!(c.streams().len(), 1);
    }

    #[test]
    fn query_registration_pins_subjects() {
        let mut c = Catalog::new();
        c.roles.register_role("doctor").unwrap();
        let alice = c.roles.register_subject("alice", &["doctor"]).unwrap();
        let (qid, roles) = c.register_query(alice).unwrap();
        assert_eq!(roles.len(), 1);
        assert_eq!(c.query_count(), 1);
        // Pinned: role reassignment fails.
        assert!(c.roles.reassign_subject_roles(alice, &["doctor"]).is_err());
        c.deregister_query(qid);
        assert!(c.roles.reassign_subject_roles(alice, &["doctor"]).is_ok());
    }
}
