//! The security-aware algebraic equivalence rules of Table II, as
//! executable plan rewrites.
//!
//! Each rule is a function `&LogicalPlan -> Option<LogicalPlan>` that fires
//! when the plan root matches; [`apply_anywhere`] applies a rule at the
//! first matching node (top-down), and [`all_rewrites`] enumerates every
//! single-rule neighbour of a plan — the optimizer's search space.
//!
//! Two soundness refinements over the paper, both of the same shape —
//! pushing ψ below a *policy-combining* operator keeps a residual shield
//! above it, because such operators emit results under policies derived
//! from (not equal to) their inputs' policies:
//!
//! * **Rule 3 (join):** a join result is governed by the **intersection**
//!   of the base policies, which can be disjoint from the predicate even
//!   when both base policies intersect it (e.g. P_T = {1,2}, P_E = {2,3},
//!   p = {1,3}).
//! * **Rule 2 (duplicate elimination):** δ's case 3 re-releases a
//!   duplicate under the *delta* policy `P_new − (P_old ∩ P_new)`, which
//!   can exclude the predicate roles entirely even though `P_new`
//!   intersected them (e.g. P_old = {1}, P_new = {0,1}, p = {1}: the
//!   re-release carries {0}).
//!
//! The residual shields re-check only per-segment policies — under
//! workloads with wholesale-compatible policies they pass everything and
//! cost a policy check per punctuation. Group-by needs no residual: each
//! attribute subgroup's output carries exactly its members' policy.

use sp_core::RoleSet;

use crate::logical::LogicalPlan;

/// The rewrite rules of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Rule 2: ψ(σ(T)) → σ(ψ(T)).
    PushShieldBelowSelect,
    /// Rule 2 (reverse): σ(ψ(T)) → ψ(σ(T)).
    PullShieldAboveSelect,
    /// Rule 2: ψ(π(T)) → π(ψ(T)).
    PushShieldBelowProject,
    /// Rule 2 (reverse): π(ψ(T)) → ψ(π(T)).
    PullShieldAboveProject,
    /// Rule 2: ψ(δ(T)) → ψ(δ(ψ(T))) (sound residual form — see below).
    PushShieldBelowDupElim,
    /// Rule 2: ψ(G(T)) → G(ψ(T)).
    ///
    /// Visibility-preserving but not output-identical when policies vary
    /// within a group: group-by partitions each group into attribute
    /// subgroups by policy (§IV-B), so the unpushed form emits *partial*
    /// aggregates per original policy while the pushed form aggregates the
    /// shield's whole view per group. Every subject still sees aggregates
    /// over exactly the tuples it may read — the pushed form's totals are
    /// the more useful answer, and the cost model prefers it anyway.
    PushShieldBelowGroupBy,
    /// Rule 2: ψ_p1(ψ_p2(T)) → ψ_p2(ψ_p1(T)).
    CommuteShields,
    /// Rule 1 (merge): ψ_p(ψ_p(T)) → ψ_p(T); ψ_p1(ψ_p2(T)) with
    /// p1 ⊇ p2 → ψ_p2(T) (the tighter predicate dominates a chain).
    MergeShieldChain,
    /// Rule 3: ψ_p(T ⋈ E) → ψ_p(ψ_p(T) ⋈ ψ_p(E)) (sound residual form).
    PushShieldBelowJoin,
    /// Rule 3 (reverse): ψ_p(ψ_p(T) ⋈ ψ_p(E)) → ψ_p(T ⋈ E).
    PullShieldAboveJoin,
    /// Rule 3 (Θ = ∪): ψ(T ∪ E) → ψ(T) ∪ ψ(E). No residual shield is
    /// needed — union does not combine policies; every output stays under
    /// its own side's policy.
    PushShieldBelowUnion,
    /// Rule 3 (Θ = ∪, reverse): ψ(T) ∪ ψ(E) → ψ(T ∪ E).
    PullShieldAboveUnion,
    /// Rule 3 (Θ = ∩): ψ(T ∩ E) → ψ(ψ(T) ∩ ψ(E)) (residual form —
    /// intersection combines policies like the join).
    PushShieldBelowIntersect,
    /// Rule 4: T ⋈ E → π(E ⋈ T) (with a projection restoring column order).
    CommuteJoin,
    /// Rule 5: (T ⋈ E) ⋈ K → T ⋈ (E ⋈ K), when the outer key comes from E.
    AssociateJoin,
}

/// Every rule, for exhaustive search.
pub const ALL_RULES: [Rule; 15] = [
    Rule::PushShieldBelowSelect,
    Rule::PullShieldAboveSelect,
    Rule::PushShieldBelowProject,
    Rule::PullShieldAboveProject,
    Rule::PushShieldBelowDupElim,
    Rule::PushShieldBelowGroupBy,
    Rule::CommuteShields,
    Rule::MergeShieldChain,
    Rule::PushShieldBelowJoin,
    Rule::PullShieldAboveJoin,
    Rule::PushShieldBelowUnion,
    Rule::PullShieldAboveUnion,
    Rule::PushShieldBelowIntersect,
    Rule::CommuteJoin,
    Rule::AssociateJoin,
];

/// Applies `rule` at the root of `plan`, if it matches.
#[must_use]
pub fn apply(rule: Rule, plan: &LogicalPlan) -> Option<LogicalPlan> {
    match rule {
        Rule::PushShieldBelowSelect => {
            let LogicalPlan::Shield { input, roles } = plan else { return None };
            let LogicalPlan::Select { input: inner, predicate } = &**input else {
                return None;
            };
            Some(LogicalPlan::Select {
                input: Box::new(LogicalPlan::Shield { input: inner.clone(), roles: roles.clone() }),
                predicate: predicate.clone(),
            })
        }
        Rule::PullShieldAboveSelect => {
            let LogicalPlan::Select { input, predicate } = plan else { return None };
            let LogicalPlan::Shield { input: inner, roles } = &**input else {
                return None;
            };
            Some(LogicalPlan::Shield {
                input: Box::new(LogicalPlan::Select {
                    input: inner.clone(),
                    predicate: predicate.clone(),
                }),
                roles: roles.clone(),
            })
        }
        Rule::PushShieldBelowProject => {
            let LogicalPlan::Shield { input, roles } = plan else { return None };
            let LogicalPlan::Project { input: inner, indices } = &**input else {
                return None;
            };
            Some(LogicalPlan::Project {
                input: Box::new(LogicalPlan::Shield { input: inner.clone(), roles: roles.clone() }),
                indices: indices.clone(),
            })
        }
        Rule::PullShieldAboveProject => {
            let LogicalPlan::Project { input, indices } = plan else { return None };
            let LogicalPlan::Shield { input: inner, roles } = &**input else {
                return None;
            };
            Some(LogicalPlan::Shield {
                input: Box::new(LogicalPlan::Project {
                    input: inner.clone(),
                    indices: indices.clone(),
                }),
                roles: roles.clone(),
            })
        }
        Rule::PushShieldBelowDupElim => {
            let LogicalPlan::Shield { input, roles } = plan else { return None };
            let LogicalPlan::DupElim { input: inner, keys, window_ms } = &**input else {
                return None;
            };
            // Avoid re-firing forever on the already-pushed form.
            if matches!(&**inner, LogicalPlan::Shield { roles: r, .. } if r == roles) {
                return None;
            }
            Some(LogicalPlan::Shield {
                roles: roles.clone(),
                input: Box::new(LogicalPlan::DupElim {
                    input: Box::new(LogicalPlan::Shield {
                        input: inner.clone(),
                        roles: roles.clone(),
                    }),
                    keys: keys.clone(),
                    window_ms: *window_ms,
                }),
            })
        }
        Rule::PushShieldBelowGroupBy => {
            let LogicalPlan::Shield { input, roles } = plan else { return None };
            let LogicalPlan::GroupBy { input: inner, group, agg, agg_attr, window_ms } = &**input
            else {
                return None;
            };
            Some(LogicalPlan::GroupBy {
                input: Box::new(LogicalPlan::Shield { input: inner.clone(), roles: roles.clone() }),
                group: *group,
                agg: *agg,
                agg_attr: *agg_attr,
                window_ms: *window_ms,
            })
        }
        Rule::CommuteShields => {
            let LogicalPlan::Shield { input, roles: p1 } = plan else { return None };
            let LogicalPlan::Shield { input: inner, roles: p2 } = &**input else {
                return None;
            };
            if p1 == p2 {
                return None; // commuting equal shields is a no-op
            }
            Some(LogicalPlan::Shield {
                input: Box::new(LogicalPlan::Shield { input: inner.clone(), roles: p1.clone() }),
                roles: p2.clone(),
            })
        }
        Rule::MergeShieldChain => {
            let LogicalPlan::Shield { input, roles: p1 } = plan else { return None };
            let LogicalPlan::Shield { input: inner, roles: p2 } = &**input else {
                return None;
            };
            // A chain passes tuples whose policy intersects BOTH p1 and p2.
            // If one predicate contains the other, the tighter one alone is
            // NOT equivalent in general — but equal predicates collapse,
            // and a superset outer shield is implied by the inner one.
            if p1 == p2 || p2.is_subset(p1) {
                Some(LogicalPlan::Shield { input: inner.clone(), roles: p2.clone() })
            } else if p1.is_subset(p2) {
                Some(LogicalPlan::Shield { input: inner.clone(), roles: p1.clone() })
            } else {
                None
            }
        }
        Rule::PushShieldBelowJoin => {
            let LogicalPlan::Shield { input, roles } = plan else { return None };
            let LogicalPlan::Join { left, right, left_key, right_key, window_ms, variant } =
                &**input
            else {
                return None;
            };
            // Avoid re-firing forever: don't push if the inputs are already
            // shielded with this predicate.
            let shielded =
                |p: &LogicalPlan| matches!(p, LogicalPlan::Shield { roles: r, .. } if r == roles);
            if shielded(left) && shielded(right) {
                return None;
            }
            Some(LogicalPlan::Shield {
                roles: roles.clone(),
                input: Box::new(LogicalPlan::Join {
                    left: Box::new(LogicalPlan::Shield {
                        input: left.clone(),
                        roles: roles.clone(),
                    }),
                    right: Box::new(LogicalPlan::Shield {
                        input: right.clone(),
                        roles: roles.clone(),
                    }),
                    left_key: *left_key,
                    right_key: *right_key,
                    window_ms: *window_ms,
                    variant: *variant,
                }),
            })
        }
        Rule::PullShieldAboveJoin => {
            let LogicalPlan::Shield { input, roles } = plan else { return None };
            let LogicalPlan::Join { left, right, left_key, right_key, window_ms, variant } =
                &**input
            else {
                return None;
            };
            let LogicalPlan::Shield { input: l_in, roles: l_roles } = &**left else {
                return None;
            };
            let LogicalPlan::Shield { input: r_in, roles: r_roles } = &**right else {
                return None;
            };
            if l_roles != roles || r_roles != roles {
                return None;
            }
            Some(LogicalPlan::Shield {
                roles: roles.clone(),
                input: Box::new(LogicalPlan::Join {
                    left: l_in.clone(),
                    right: r_in.clone(),
                    left_key: *left_key,
                    right_key: *right_key,
                    window_ms: *window_ms,
                    variant: *variant,
                }),
            })
        }
        Rule::PushShieldBelowUnion => {
            let LogicalPlan::Shield { input, roles } = plan else { return None };
            let LogicalPlan::Union { left, right } = &**input else { return None };
            Some(LogicalPlan::Union {
                left: Box::new(LogicalPlan::Shield { input: left.clone(), roles: roles.clone() }),
                right: Box::new(LogicalPlan::Shield { input: right.clone(), roles: roles.clone() }),
            })
        }
        Rule::PullShieldAboveUnion => {
            let LogicalPlan::Union { left, right } = plan else { return None };
            let LogicalPlan::Shield { input: l_in, roles: l_roles } = &**left else {
                return None;
            };
            let LogicalPlan::Shield { input: r_in, roles: r_roles } = &**right else {
                return None;
            };
            if l_roles != r_roles {
                return None;
            }
            Some(LogicalPlan::Shield {
                roles: l_roles.clone(),
                input: Box::new(LogicalPlan::Union { left: l_in.clone(), right: r_in.clone() }),
            })
        }
        Rule::PushShieldBelowIntersect => {
            let LogicalPlan::Shield { input, roles } = plan else { return None };
            let LogicalPlan::Intersect { left, right, window_ms } = &**input else {
                return None;
            };
            let shielded =
                |p: &LogicalPlan| matches!(p, LogicalPlan::Shield { roles: r, .. } if r == roles);
            if shielded(left) && shielded(right) {
                return None;
            }
            Some(LogicalPlan::Shield {
                roles: roles.clone(),
                input: Box::new(LogicalPlan::Intersect {
                    left: Box::new(LogicalPlan::Shield {
                        input: left.clone(),
                        roles: roles.clone(),
                    }),
                    right: Box::new(LogicalPlan::Shield {
                        input: right.clone(),
                        roles: roles.clone(),
                    }),
                    window_ms: *window_ms,
                }),
            })
        }
        Rule::CommuteJoin => {
            let LogicalPlan::Join { left, right, left_key, right_key, window_ms, variant } = plan
            else {
                return None;
            };
            let l_arity = left.schema().arity();
            let r_arity = right.schema().arity();
            // Swap sides, then restore the original column order.
            let swapped = LogicalPlan::Join {
                left: right.clone(),
                right: left.clone(),
                left_key: *right_key,
                right_key: *left_key,
                window_ms: *window_ms,
                variant: *variant,
            };
            let indices: Vec<usize> = (r_arity..r_arity + l_arity).chain(0..r_arity).collect();
            Some(LogicalPlan::Project { input: Box::new(swapped), indices })
        }
        Rule::AssociateJoin => {
            let LogicalPlan::Join {
                left: outer_left,
                right: k,
                left_key: c,
                right_key: d,
                window_ms: w_outer,
                variant,
            } = plan
            else {
                return None;
            };
            let LogicalPlan::Join {
                left: t,
                right: e,
                left_key: a,
                right_key: b,
                window_ms: w_inner,
                ..
            } = &**outer_left
            else {
                return None;
            };
            let t_arity = t.schema().arity();
            // Only rotate when the outer key comes from E's columns.
            if *c < t_arity {
                return None;
            }
            Some(LogicalPlan::Join {
                left: t.clone(),
                right: Box::new(LogicalPlan::Join {
                    left: e.clone(),
                    right: k.clone(),
                    left_key: c - t_arity,
                    right_key: *d,
                    window_ms: *w_outer,
                    variant: *variant,
                }),
                left_key: *a,
                right_key: *b,
                window_ms: *w_inner,
                variant: *variant,
            })
        }
    }
}

/// Applies `rule` at the first matching node, searching top-down
/// left-to-right. Returns the rewritten plan, or `None` if no node matched.
#[must_use]
pub fn apply_anywhere(rule: Rule, plan: &LogicalPlan) -> Option<LogicalPlan> {
    if let Some(rewritten) = apply(rule, plan) {
        return Some(rewritten);
    }
    let children = plan.children();
    for (i, child) in children.iter().enumerate() {
        if let Some(new_child) = apply_anywhere(rule, child) {
            let mut new_children: Vec<LogicalPlan> =
                children.iter().map(|c| (*c).clone()).collect();
            new_children[i] = new_child;
            return Some(plan.with_children(new_children));
        }
    }
    None
}

/// Every plan reachable from `plan` by one rule application (at any node).
#[must_use]
pub fn all_rewrites(plan: &LogicalPlan) -> Vec<(Rule, LogicalPlan)> {
    let mut out = Vec::new();
    for rule in ALL_RULES {
        collect_rewrites(rule, plan, &mut out);
    }
    out
}

fn collect_rewrites(rule: Rule, plan: &LogicalPlan, out: &mut Vec<(Rule, LogicalPlan)>) {
    if let Some(rewritten) = apply(rule, plan) {
        out.push((rule, rewritten));
    }
    let children = plan.children();
    for (i, child) in children.iter().enumerate() {
        let mut child_rewrites = Vec::new();
        collect_rewrites(rule, child, &mut child_rewrites);
        for (r, new_child) in child_rewrites {
            let mut new_children: Vec<LogicalPlan> =
                children.iter().map(|c| (*c).clone()).collect();
            new_children[i] = new_child;
            out.push((r, plan.with_children(new_children)));
        }
    }
}

/// Multi-query sharing (§VI-C): given per-query shields over one shared
/// subplan, produces the shared form — a single merged shield (the union
/// of the predicates) below the shared subplan, and the original per-query
/// shields kept at the top ("merged at the beginning, split at the end").
#[must_use]
pub fn merged_predicate(predicates: &[RoleSet]) -> RoleSet {
    let mut merged = RoleSet::new();
    for p in predicates {
        merged.union_with(p);
    }
    merged
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use sp_core::{Schema, StreamId, Value, ValueType};
    use sp_engine::{CmpOp, Expr, JoinVariant};

    fn scan(name: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            stream: StreamId(1),
            schema: Schema::of(name, &[("id", ValueType::Int), ("x", ValueType::Int)]),
            window_ms: 1000,
        }
    }

    fn shield(input: LogicalPlan, roles: &[u32]) -> LogicalPlan {
        LogicalPlan::Shield {
            input: Box::new(input),
            roles: roles.iter().map(|&r| sp_core::RoleId(r)).collect(),
        }
    }

    fn select(input: LogicalPlan) -> LogicalPlan {
        LogicalPlan::Select {
            input: Box::new(input),
            predicate: Expr::cmp(CmpOp::Gt, Expr::Attr(1), Expr::Const(Value::Int(0))),
        }
    }

    #[test]
    fn shield_select_commute_round_trip() {
        let original = shield(select(scan("s")), &[1]);
        let pushed = apply(Rule::PushShieldBelowSelect, &original).unwrap();
        assert_eq!(pushed.op_name(), "select");
        assert_eq!(pushed.children()[0].op_name(), "ss");
        let pulled = apply(Rule::PullShieldAboveSelect, &pushed).unwrap();
        assert_eq!(pulled, original);
    }

    #[test]
    fn shield_project_commute() {
        let original =
            shield(LogicalPlan::Project { input: Box::new(scan("s")), indices: vec![1] }, &[2]);
        let pushed = apply(Rule::PushShieldBelowProject, &original).unwrap();
        assert_eq!(pushed.op_name(), "project");
        let pulled = apply(Rule::PullShieldAboveProject, &pushed).unwrap();
        assert_eq!(pulled, original);
        // Schemas unchanged by the rewrite.
        assert_eq!(original.schema(), pushed.schema());
    }

    #[test]
    fn shield_pushes_below_dupelim_and_groupby() {
        let de = shield(
            LogicalPlan::DupElim { input: Box::new(scan("s")), keys: vec![0], window_ms: 5 },
            &[1],
        );
        let pushed = apply(Rule::PushShieldBelowDupElim, &de).unwrap();
        // Residual form: shield stays above, a copy goes below.
        assert_eq!(pushed.op_name(), "ss");
        assert_eq!(pushed.children()[0].op_name(), "dupelim");
        assert_eq!(pushed.shield_count(), 2);
        // Idempotent: doesn't fire again on the pushed form.
        assert!(apply(Rule::PushShieldBelowDupElim, &pushed).is_none());

        let gb = shield(
            LogicalPlan::GroupBy {
                input: Box::new(scan("s")),
                group: Some(0),
                agg: sp_engine::AggFunc::Count,
                agg_attr: 1,
                window_ms: 5,
            },
            &[1],
        );
        let pushed = apply(Rule::PushShieldBelowGroupBy, &gb).unwrap();
        assert_eq!(pushed.op_name(), "groupby");
        assert_eq!(pushed.children()[0].op_name(), "ss");
    }

    #[test]
    fn commute_and_merge_shield_chains() {
        let chain = shield(shield(scan("s"), &[2]), &[1]);
        let commuted = apply(Rule::CommuteShields, &chain).unwrap();
        let LogicalPlan::Shield { roles, .. } = &commuted else { panic!() };
        assert_eq!(roles.iter().next().unwrap().raw(), 2);

        // Equal chain collapses.
        let dup = shield(shield(scan("s"), &[1]), &[1]);
        let merged = apply(Rule::MergeShieldChain, &dup).unwrap();
        assert_eq!(merged.shield_count(), 1);

        // Subset chain collapses to the tighter predicate.
        let sub = shield(shield(scan("s"), &[1]), &[1, 2, 3]);
        let merged = apply(Rule::MergeShieldChain, &sub).unwrap();
        let LogicalPlan::Shield { roles, .. } = &merged else { panic!() };
        assert_eq!(roles.len(), 1);

        // Overlapping-but-incomparable chains do not merge.
        let over = shield(shield(scan("s"), &[1, 2]), &[2, 3]);
        assert!(apply(Rule::MergeShieldChain, &over).is_none());
    }

    #[test]
    fn push_shield_below_join_keeps_residual() {
        let join = LogicalPlan::Join {
            left: Box::new(scan("l")),
            right: Box::new(scan("r")),
            left_key: 0,
            right_key: 0,
            window_ms: 100,
            variant: JoinVariant::Index,
        };
        let original = shield(join, &[1]);
        let pushed = apply(Rule::PushShieldBelowJoin, &original).unwrap();
        assert_eq!(pushed.shield_count(), 3, "two pushed + one residual");
        // Idempotent: doesn't fire again on the already-pushed form.
        assert!(apply(Rule::PushShieldBelowJoin, &pushed).is_none());
        // And it pulls back up.
        let pulled = apply(Rule::PullShieldAboveJoin, &pushed).unwrap();
        assert_eq!(pulled, original);
    }

    #[test]
    fn commute_join_restores_column_order() {
        let join = LogicalPlan::Join {
            left: Box::new(scan("l")),
            right: Box::new(LogicalPlan::Project { input: Box::new(scan("r")), indices: vec![0] }),
            left_key: 0,
            right_key: 0,
            window_ms: 100,
            variant: JoinVariant::Index,
        };
        let commuted = apply(Rule::CommuteJoin, &join).unwrap();
        assert_eq!(commuted.op_name(), "project");
        // Positional field identity is preserved; collision-renaming
        // prefixes legitimately differ by side order, so compare the base
        // (unqualified) names.
        let base = |s: &LogicalPlan| -> Vec<String> {
            s.schema()
                .fields()
                .iter()
                .map(|f| f.name.rsplit('.').next().unwrap_or(&f.name).to_owned())
                .collect()
        };
        assert_eq!(base(&join), base(&commuted));
    }

    #[test]
    fn associate_join_rotates_left_deep() {
        let inner = LogicalPlan::Join {
            left: Box::new(scan("t")),
            right: Box::new(scan("e")),
            left_key: 0,
            right_key: 0,
            window_ms: 100,
            variant: JoinVariant::Index,
        };
        // Outer joins on E's column (index 2 = first column of e).
        let outer = LogicalPlan::Join {
            left: Box::new(inner),
            right: Box::new(scan("k")),
            left_key: 2,
            right_key: 0,
            window_ms: 100,
            variant: JoinVariant::Index,
        };
        let rotated = apply(Rule::AssociateJoin, &outer).unwrap();
        let LogicalPlan::Join { right, left_key, .. } = &rotated else { panic!() };
        assert_eq!(*left_key, 0);
        assert_eq!(right.op_name(), "sajoin");
        assert_eq!(rotated.schema().arity(), outer.schema().arity());

        // Outer key from T: no rotation.
        let outer_t = LogicalPlan::Join {
            left: Box::new(apply(Rule::AssociateJoin, &outer).unwrap()),
            right: Box::new(scan("k2")),
            left_key: 0,
            right_key: 0,
            window_ms: 100,
            variant: JoinVariant::Index,
        };
        assert!(apply(Rule::AssociateJoin, &outer_t).is_none());
    }

    #[test]
    fn apply_anywhere_reaches_nested_nodes() {
        let plan = select(shield(select(scan("s")), &[1]));
        let rewritten = apply_anywhere(Rule::PushShieldBelowSelect, &plan).unwrap();
        // Shield is now at the bottom, above the scan.
        let mut node = &rewritten;
        while !matches!(node, LogicalPlan::Shield { .. }) {
            node = node.children()[0];
        }
        assert_eq!(node.children()[0].op_name(), "scan");
    }

    #[test]
    fn all_rewrites_enumerates_neighbours() {
        let plan = shield(select(scan("s")), &[1]);
        let neighbours = all_rewrites(&plan);
        assert!(!neighbours.is_empty());
        assert!(neighbours.iter().any(|(r, _)| *r == Rule::PushShieldBelowSelect));
    }

    #[test]
    fn merged_predicate_unions() {
        let merged = merged_predicate(&[[1u32].into(), [2u32, 3].into()]);
        assert_eq!(merged.len(), 3);
    }
}
