//! The security-aware per-unit-time cost model (§VI-A).
//!
//! Every operator is costed by the paper's formulas, driven by per-stream
//! tuple rates λ and punctuation rates λ_sp:
//!
//! | operator | cost per unit time |
//! |---|---|
//! | SS | `Σ_i λ_i + λ_sp,i (NR_sp + NR)` |
//! | σ, π | `Σ_i (λ_i + λ_sp,i)` |
//! | nested-loop SAJoin | `λ1 (N2 + Nsp2) + λ2 (N1 + Nsp1)` |
//! | index SAJoin | `λ1 σ_sp (N2 + Nsp2) + λ2 σ_sp (N1 + Nsp1) + NR_sp (λ_sp1 + λ_sp2)` |
//! | δ | `λ1 (No + Nspo)` |
//! | group-by | `2 C (λ1 + λ_sp1)` |
//!
//! with `N = W·λ` the expected window population. Output rates propagate
//! through selectivity estimates so that interleaving an SS deeper in the
//! plan visibly reduces downstream cost — exactly the trade-off the
//! optimizer (§VI-C) navigates.

use std::collections::HashMap;

use sp_core::StreamId;
use sp_engine::{CmpOp, Expr, JoinVariant};

use crate::logical::LogicalPlan;

/// Per-stream input statistics.
#[derive(Debug, Clone, Copy)]
pub struct InputStats {
    /// Tuple arrival rate (tuples per second).
    pub lambda: f64,
    /// Punctuation arrival rate (sps per second).
    pub lambda_sp: f64,
}

impl Default for InputStats {
    fn default() -> Self {
        Self { lambda: 1000.0, lambda_sp: 100.0 }
    }
}

/// Workload-level parameters of the cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    streams: HashMap<StreamId, InputStats>,
    /// Default stats for unregistered streams.
    pub default_stats: InputStats,
    /// Expected roles per punctuation (NR_sp).
    pub roles_per_sp: f64,
    /// Fraction of segments whose policy authorizes a one-role predicate —
    /// the per-role authorization probability.
    pub auth_prob_per_role: f64,
    /// SAJoin policy-compatibility selectivity σ_sp ∈ [0, 1].
    pub sigma_sp: f64,
    /// Value-match probability for an equijoin probe.
    pub join_selectivity: f64,
    /// Fraction of distinct values in a duplicate-elimination window.
    pub distinct_fraction: f64,
    /// Group count / aggregate recomputation factor C for group-by.
    pub group_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            streams: HashMap::new(),
            default_stats: InputStats::default(),
            roles_per_sp: 3.0,
            auth_prob_per_role: 0.3,
            sigma_sp: 0.5,
            join_selectivity: 0.01,
            distinct_fraction: 0.1,
            group_cost: 4.0,
        }
    }
}

/// Cost and output-rate summary of a (sub)plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCost {
    /// Total per-unit-time processing cost of the subtree.
    pub cost: f64,
    /// Output tuple rate.
    pub lambda: f64,
    /// Output punctuation rate.
    pub lambda_sp: f64,
}

impl CostModel {
    /// Registers per-stream input statistics.
    pub fn set_stream(&mut self, stream: StreamId, stats: InputStats) {
        self.streams.insert(stream, stats);
    }

    fn stream_stats(&self, stream: StreamId) -> InputStats {
        self.streams.get(&stream).copied().unwrap_or(self.default_stats)
    }

    /// Probability a segment policy authorizes a predicate of `n` roles:
    /// `1 - (1 - q)^n`, capped at 1.
    #[must_use]
    pub fn shield_selectivity(&self, predicate_roles: usize) -> f64 {
        let q = self.auth_prob_per_role.clamp(0.0, 1.0);
        1.0 - (1.0 - q).powi(predicate_roles as i32)
    }

    /// Classic selectivity heuristics for selection predicates.
    #[must_use]
    pub fn predicate_selectivity(&self, expr: &Expr) -> f64 {
        match expr {
            Expr::Cmp(CmpOp::Eq, ..) => 0.1,
            Expr::Cmp(CmpOp::Ne, ..) => 0.9,
            Expr::Cmp(..) => 1.0 / 3.0,
            Expr::And(l, r) => self.predicate_selectivity(l) * self.predicate_selectivity(r),
            Expr::Or(l, r) => {
                let (a, b) = (self.predicate_selectivity(l), self.predicate_selectivity(r));
                (a + b - a * b).min(1.0)
            }
            Expr::Not(inner) => 1.0 - self.predicate_selectivity(inner),
            _ => 1.0,
        }
    }

    /// Costs a plan bottom-up.
    #[must_use]
    pub fn cost(&self, plan: &LogicalPlan) -> PlanCost {
        match plan {
            LogicalPlan::Scan { stream, .. } => {
                let stats = self.stream_stats(*stream);
                PlanCost { cost: 0.0, lambda: stats.lambda, lambda_sp: stats.lambda_sp }
            }
            LogicalPlan::Shield { input, roles } => {
                let inp = self.cost(input);
                // λ + λ_sp (NR_sp + NR)
                let own = inp.lambda + inp.lambda_sp * (self.roles_per_sp + roles.len() as f64);
                let sel = self.shield_selectivity(roles.len());
                PlanCost {
                    cost: inp.cost + own,
                    lambda: inp.lambda * sel,
                    // Failing segments' punctuations are discarded too.
                    lambda_sp: inp.lambda_sp * sel,
                }
            }
            LogicalPlan::Select { input, predicate } => {
                let inp = self.cost(input);
                let own = inp.lambda + inp.lambda_sp;
                let sel = self.predicate_selectivity(predicate);
                PlanCost {
                    cost: inp.cost + own,
                    lambda: inp.lambda * sel,
                    // An sp survives if any tuple of its segment survives;
                    // approximate with the same selectivity, bounded by the
                    // surviving tuple rate.
                    lambda_sp: (inp.lambda_sp).min(inp.lambda * sel).max(inp.lambda_sp * sel),
                }
            }
            LogicalPlan::Project { input, .. } => {
                let inp = self.cost(input);
                PlanCost {
                    cost: inp.cost + inp.lambda + inp.lambda_sp,
                    lambda: inp.lambda,
                    lambda_sp: inp.lambda_sp,
                }
            }
            LogicalPlan::Join { left, right, window_ms, variant, .. } => {
                let l = self.cost(left);
                let r = self.cost(right);
                let w = *window_ms as f64 / 1000.0;
                let (n1, nsp1) = (w * l.lambda, w * l.lambda_sp);
                let (n2, nsp2) = (w * r.lambda, w * r.lambda_sp);
                let own = match variant {
                    JoinVariant::NestedLoopPF | JoinVariant::NestedLoopFP => {
                        l.lambda * (n2 + nsp2) + r.lambda * (n1 + nsp1)
                    }
                    JoinVariant::Index => {
                        l.lambda * self.sigma_sp * (n2 + nsp2)
                            + r.lambda * self.sigma_sp * (n1 + nsp1)
                            + self.roles_per_sp * (l.lambda_sp + r.lambda_sp)
                    }
                };
                let out_lambda = l.lambda * n2 * self.join_selectivity * self.sigma_sp
                    + r.lambda * n1 * self.join_selectivity * self.sigma_sp;
                PlanCost {
                    cost: l.cost + r.cost + own,
                    lambda: out_lambda,
                    lambda_sp: (l.lambda_sp + r.lambda_sp).min(out_lambda.max(1e-9)),
                }
            }
            LogicalPlan::Union { left, right } => {
                let l = self.cost(left);
                let r = self.cost(right);
                // Constant per element, plus a policy re-announcement per
                // side switch (bounded by the sp rates).
                let own = l.lambda + r.lambda + 2.0 * (l.lambda_sp + r.lambda_sp);
                PlanCost {
                    cost: l.cost + r.cost + own,
                    lambda: l.lambda + r.lambda,
                    lambda_sp: l.lambda_sp + r.lambda_sp,
                }
            }
            LogicalPlan::Intersect { left, right, window_ms } => {
                let l = self.cost(left);
                let r = self.cost(right);
                let w = *window_ms as f64 / 1000.0;
                let (n1, nsp1) = (w * l.lambda, w * l.lambda_sp);
                let (n2, nsp2) = (w * r.lambda, w * r.lambda_sp);
                let own = l.lambda * (n2 + nsp2) + r.lambda * (n1 + nsp1);
                let out = (l.lambda.min(r.lambda)) * self.join_selectivity * self.sigma_sp;
                PlanCost {
                    cost: l.cost + r.cost + own,
                    lambda: out,
                    lambda_sp: (l.lambda_sp + r.lambda_sp).min(out.max(1e-9)),
                }
            }
            LogicalPlan::DupElim { input, window_ms, .. } => {
                let inp = self.cost(input);
                let w = *window_ms as f64 / 1000.0;
                let no = w * inp.lambda * self.distinct_fraction;
                let nspo = w * inp.lambda_sp * self.distinct_fraction;
                let own = inp.lambda * (no + nspo);
                PlanCost {
                    cost: inp.cost + own,
                    lambda: inp.lambda * self.distinct_fraction,
                    lambda_sp: inp.lambda_sp.min(inp.lambda * self.distinct_fraction),
                }
            }
            LogicalPlan::GroupBy { input, .. } => {
                let inp = self.cost(input);
                let own = 2.0 * self.group_cost * (inp.lambda + inp.lambda_sp);
                PlanCost {
                    cost: inp.cost + own,
                    lambda: inp.lambda, // every input updates one aggregate
                    lambda_sp: inp.lambda_sp,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use sp_core::{RoleSet, Schema, Value, ValueType};

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan {
            stream: StreamId(1),
            schema: Schema::of("s", &[("id", ValueType::Int), ("x", ValueType::Int)]),
            window_ms: 10_000,
        }
    }

    fn shield(input: LogicalPlan, n: u32) -> LogicalPlan {
        LogicalPlan::Shield { input: Box::new(input), roles: RoleSet::all_below(n) }
    }

    fn select(input: LogicalPlan) -> LogicalPlan {
        LogicalPlan::Select {
            input: Box::new(input),
            predicate: Expr::cmp(CmpOp::Eq, Expr::Attr(0), Expr::Const(Value::Int(1))),
        }
    }

    #[test]
    fn scan_cost_is_free_and_rates_flow() {
        let m = CostModel::default();
        let c = m.cost(&scan());
        assert_eq!(c.cost, 0.0);
        assert_eq!(c.lambda, 1000.0);
        assert_eq!(c.lambda_sp, 100.0);
    }

    #[test]
    fn shield_cost_grows_with_state_size() {
        let m = CostModel::default();
        let small = m.cost(&shield(scan(), 1));
        let large = m.cost(&shield(scan(), 500));
        assert!(large.cost > small.cost, "Fig 8b: larger SS state costs more");
    }

    #[test]
    fn shield_reduces_downstream_rates() {
        let m = CostModel::default();
        let unshielded = m.cost(&select(scan()));
        let shielded = m.cost(&select(shield(scan(), 1)));
        // The select above a shield sees fewer tuples.
        assert!(shielded.lambda < unshielded.lambda);
    }

    #[test]
    fn index_join_beats_nested_loop_at_low_sigma() {
        let mut m = CostModel { sigma_sp: 0.1, ..CostModel::default() };
        let mk = |variant| LogicalPlan::Join {
            left: Box::new(scan()),
            right: Box::new(scan()),
            left_key: 0,
            right_key: 0,
            window_ms: 10_000,
            variant,
        };
        let nested = m.cost(&mk(JoinVariant::NestedLoopPF));
        let index = m.cost(&mk(JoinVariant::Index));
        assert!(index.cost < nested.cost, "Fig 9: index wins at low σ_sp");
        // At σ_sp = 1 index degenerates to ~nested-loop plus maintenance.
        m.sigma_sp = 1.0;
        let nested1 = m.cost(&mk(JoinVariant::NestedLoopPF));
        let index1 = m.cost(&mk(JoinVariant::Index));
        assert!(index1.cost >= nested1.cost);
    }

    #[test]
    fn pushing_shield_below_join_reduces_total_cost() {
        let m = CostModel::default();
        let join = |l, r| LogicalPlan::Join {
            left: Box::new(l),
            right: Box::new(r),
            left_key: 0,
            right_key: 0,
            window_ms: 10_000,
            variant: JoinVariant::Index,
        };
        let post = shield(join(scan(), scan()), 1);
        let pre = shield(join(shield(scan(), 1), shield(scan(), 1)), 1);
        assert!(
            m.cost(&pre).cost < m.cost(&post).cost,
            "shield push-down shrinks join windows: {} vs {}",
            m.cost(&pre).cost,
            m.cost(&post).cost
        );
    }

    #[test]
    fn predicate_selectivities() {
        let m = CostModel::default();
        let eq = Expr::cmp(CmpOp::Eq, Expr::Attr(0), Expr::Const(Value::Int(1)));
        let lt = Expr::cmp(CmpOp::Lt, Expr::Attr(0), Expr::Const(Value::Int(1)));
        assert!(m.predicate_selectivity(&eq) < m.predicate_selectivity(&lt));
        let both = Expr::and(eq.clone(), lt.clone());
        assert!(m.predicate_selectivity(&both) < m.predicate_selectivity(&eq));
        let either = Expr::or(eq.clone(), lt);
        assert!(m.predicate_selectivity(&either) > m.predicate_selectivity(&eq));
        let neg = Expr::not(eq.clone());
        assert!((m.predicate_selectivity(&neg) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn shield_selectivity_saturates() {
        let m = CostModel::default();
        assert!(m.shield_selectivity(1) < m.shield_selectivity(5));
        assert!(m.shield_selectivity(1000) <= 1.0);
    }

    #[test]
    fn per_stream_stats_override_defaults() {
        let mut m = CostModel::default();
        m.set_stream(StreamId(1), InputStats { lambda: 10.0, lambda_sp: 1.0 });
        let c = m.cost(&scan());
        assert_eq!(c.lambda, 10.0);
    }

    #[test]
    fn dupelim_and_groupby_costs() {
        let m = CostModel::default();
        let de = LogicalPlan::DupElim { input: Box::new(scan()), keys: vec![], window_ms: 1000 };
        let gb = LogicalPlan::GroupBy {
            input: Box::new(scan()),
            group: Some(0),
            agg: sp_engine::AggFunc::Count,
            agg_attr: 1,
            window_ms: 1000,
        };
        assert!(m.cost(&de).cost > 0.0);
        assert!(m.cost(&gb).cost > 0.0);
        assert!(m.cost(&de).lambda < 1000.0, "dup-elim reduces rate");
    }
}
