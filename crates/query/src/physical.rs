//! Physical plan instantiation: logical plans → engine operator DAGs.

use std::collections::HashMap;

use sp_core::StreamId;
use sp_engine::{
    DupElim, Granularity, GroupBy, PlanBuilder, Project, SAIntersect, SAJoin, SecurityShield,
    Select, SourceRef, Union, Upstream,
};

use crate::logical::LogicalPlan;

/// Options controlling physical instantiation.
#[derive(Debug, Clone, Copy, Default)]
pub struct InstantiateOptions {
    /// Enforcement granularity for every Security Shield in the plan:
    /// `Tuple` drops unauthorized tuples wholesale; `Attribute` passes
    /// tuples visible through attribute-scoped grants, masking the
    /// attributes the query may not read (§III-A's attribute granularity).
    pub granularity: Granularity,
    /// Instantiate every selection as [`Select::eager`]: policies are
    /// forwarded immediately instead of delayed until the segment's
    /// first surviving tuple (§IV-B). Sharded sessions need this — an
    /// eager selection is policy-transparent, so the shield's
    /// shard-local flushes stay deduplicable all the way to the sink.
    /// Sequential sessions keep the default `false` (the paper's
    /// traffic-saving delay).
    pub eager_selects: bool,
}

/// Instantiates `plan` into `builder`, reusing sources in `sources` so
/// that several queries over the same stream share one analyzer per
/// builder. Returns the upstream handle of the plan's root operator.
pub fn instantiate(
    plan: &LogicalPlan,
    builder: &mut PlanBuilder,
    sources: &mut HashMap<StreamId, SourceRef>,
) -> Upstream {
    instantiate_with(plan, builder, sources, InstantiateOptions::default())
}

/// [`instantiate`] with explicit options.
pub fn instantiate_with(
    plan: &LogicalPlan,
    builder: &mut PlanBuilder,
    sources: &mut HashMap<StreamId, SourceRef>,
    opts: InstantiateOptions,
) -> Upstream {
    match plan {
        LogicalPlan::Scan { stream, schema, .. } => {
            let source =
                *sources.entry(*stream).or_insert_with(|| builder.source(*stream, schema.clone()));
            Upstream::Source(source)
        }
        LogicalPlan::Shield { input, roles } => {
            let upstream = instantiate_with(input, builder, sources, opts);
            Upstream::Node(builder.add(
                SecurityShield::new(roles.clone()).with_granularity(opts.granularity),
                upstream,
            ))
        }
        LogicalPlan::Select { input, predicate } => {
            let upstream = instantiate_with(input, builder, sources, opts);
            let select = if opts.eager_selects {
                Select::eager(predicate.clone())
            } else {
                Select::new(predicate.clone())
            };
            Upstream::Node(builder.add(select, upstream))
        }
        LogicalPlan::Project { input, indices } => {
            let upstream = instantiate_with(input, builder, sources, opts);
            Upstream::Node(builder.add(Project::new(indices.clone()), upstream))
        }
        LogicalPlan::Join { left, right, left_key, right_key, window_ms, variant } => {
            let left_arity = left.schema().arity();
            let l = instantiate_with(left, builder, sources, opts);
            let r = instantiate_with(right, builder, sources, opts);
            Upstream::Node(builder.add_binary(
                SAJoin::new(*variant, *window_ms, *left_key, *right_key, left_arity),
                l,
                r,
            ))
        }
        LogicalPlan::Union { left, right } => {
            let l = instantiate_with(left, builder, sources, opts);
            let r = instantiate_with(right, builder, sources, opts);
            Upstream::Node(builder.add_binary(Union::new(), l, r))
        }
        LogicalPlan::Intersect { left, right, window_ms } => {
            let l = instantiate_with(left, builder, sources, opts);
            let r = instantiate_with(right, builder, sources, opts);
            Upstream::Node(builder.add_binary(SAIntersect::new(*window_ms), l, r))
        }
        LogicalPlan::DupElim { input, keys, window_ms } => {
            let upstream = instantiate_with(input, builder, sources, opts);
            Upstream::Node(builder.add(DupElim::new(keys.clone(), *window_ms), upstream))
        }
        LogicalPlan::GroupBy { input, group, agg, agg_attr, window_ms } => {
            let upstream = instantiate_with(input, builder, sources, opts);
            Upstream::Node(builder.add(GroupBy::new(*group, *agg, *agg_attr, *window_ms), upstream))
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use sp_core::{
        RoleCatalog, RoleSet, Schema, SecurityPunctuation, StreamElement, Timestamp, Tuple,
        TupleId, Value, ValueType,
    };
    use sp_engine::{CmpOp, Expr};
    use std::sync::Arc;

    #[test]
    fn logical_plan_runs_end_to_end() {
        let schema = Schema::of("loc", &[("id", ValueType::Int), ("x", ValueType::Int)]);
        let plan = LogicalPlan::Project {
            indices: vec![1],
            input: Box::new(LogicalPlan::Select {
                predicate: Expr::cmp(CmpOp::Gt, Expr::Attr(1), Expr::Const(Value::Int(5))),
                input: Box::new(LogicalPlan::Shield {
                    roles: RoleSet::from([1]),
                    input: Box::new(LogicalPlan::Scan {
                        stream: StreamId(1),
                        schema: schema.clone(),
                        window_ms: 1000,
                    }),
                }),
            }),
        };

        let mut catalog = RoleCatalog::new();
        catalog.register_synthetic_roles(4);
        let mut builder = PlanBuilder::new(Arc::new(catalog));
        let mut sources = HashMap::new();
        let root = instantiate(&plan, &mut builder, &mut sources);
        let sink = builder.sink(root);
        let mut exec = builder.build();

        exec.push(
            StreamId(1),
            StreamElement::punctuation(SecurityPunctuation::grant_all(
                RoleSet::from([1]),
                Timestamp(0),
            )),
        )
        .unwrap();
        for (tid, x) in [(1u64, 10i64), (2, 3), (3, 9)] {
            exec.push(
                StreamId(1),
                StreamElement::tuple(Tuple::new(
                    StreamId(1),
                    TupleId(tid),
                    Timestamp(tid),
                    vec![Value::Int(tid as i64), Value::Int(x)],
                )),
            )
            .unwrap();
        }
        let vals: Vec<i64> =
            exec.sink(sink).tuples().map(|t| t.value(0).unwrap().as_i64().unwrap()).collect();
        assert_eq!(vals, vec![10, 9]);
    }

    #[test]
    fn scans_are_shared_between_plans() {
        let schema = Schema::of("loc", &[("id", ValueType::Int)]);
        let scan = LogicalPlan::Scan { stream: StreamId(1), schema, window_ms: 1000 };
        let q1 = LogicalPlan::Shield { input: Box::new(scan.clone()), roles: RoleSet::from([1]) };
        let q2 = LogicalPlan::Shield { input: Box::new(scan), roles: RoleSet::from([2]) };

        let mut builder = PlanBuilder::new(Arc::new(RoleCatalog::new()));
        let mut sources = HashMap::new();
        let r1 = instantiate(&q1, &mut builder, &mut sources);
        let r2 = instantiate(&q2, &mut builder, &mut sources);
        let _ = builder.sink(r1);
        let _ = builder.sink(r2);
        assert_eq!(sources.len(), 1, "one source for both queries");
    }
}
