//! # sp-mog — workload generators
//!
//! Synthetic substitutes for the paper's evaluation workloads (§VII-A):
//!
//! * [`network`] — a Brinkhoff-style synthetic road network (the paper used
//!   the Worcester, MA map with the network-based moving objects
//!   generator);
//! * [`sim`] — moving objects routed along shortest paths, reporting
//!   location updates every tick;
//! * [`workload`] — punctuated streams with configurable sp:tuple ratio,
//!   policy size |R| and grant selectivity σ_sp — the exact knobs of
//!   Figs. 7–9;
//! * [`health`] — the running example's hospital streams (Fig. 4).
//!
//! Everything is seeded and fully deterministic.

#![warn(missing_docs)]

pub mod health;
pub mod network;
pub mod sim;
pub mod workload;

pub use health::{hospital_catalog, HealthSim, HOSPITAL_ROLES};
pub use network::{Edge, Node, RoadNetwork};
pub use sim::MovingObjectSim;
pub use workload::{join_streams, location_stream, BurstConfig, Workload, WorkloadConfig};
