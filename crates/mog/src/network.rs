//! A synthetic road network.
//!
//! The paper generates its workload with the Brinkhoff network-based moving
//! objects generator over the road map of Worcester, MA. That tool (and
//! map) is Java-and-data-gated, so this module builds the closest synthetic
//! equivalent: a jittered grid network with randomly removed edges and
//! per-edge speed classes. What the experiments actually need from the
//! network is (a) objects moving with spatial continuity, so adjacent
//! stream tuples share context, and (b) realistic route lengths — both are
//! properties of any connected road graph.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A node (intersection) with planar coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node {
    /// X coordinate (meters).
    pub x: f64,
    /// Y coordinate (meters).
    pub y: f64,
}

/// A directed edge (road segment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Destination node id.
    pub to: u32,
    /// Segment length in meters.
    pub length: f64,
    /// Speed limit in meters/second (by road class).
    pub speed: f64,
}

/// An undirected road network stored as adjacency lists.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    nodes: Vec<Node>,
    adjacency: Vec<Vec<Edge>>,
}

impl RoadNetwork {
    /// Generates a jittered `nx × ny` grid with spacing `spacing` meters.
    /// Roughly 10% of candidate edges are removed (never disconnecting the
    /// first row/column spanning tree) and each edge is assigned one of
    /// three road classes (14, 25 or 33 m/s).
    ///
    /// # Panics
    ///
    /// Panics if `nx` or `ny` is zero.
    #[must_use]
    pub fn grid(nx: u32, ny: u32, spacing: f64, seed: u64) -> Self {
        assert!(nx > 0 && ny > 0, "network must have at least one node");
        let mut rng = SmallRng::seed_from_u64(seed);
        let idx = |x: u32, y: u32| (y * nx + x) as usize;

        let mut nodes = Vec::with_capacity((nx * ny) as usize);
        for y in 0..ny {
            for x in 0..nx {
                let jx = rng.gen_range(-0.25..0.25) * spacing;
                let jy = rng.gen_range(-0.25..0.25) * spacing;
                nodes.push(Node { x: f64::from(x) * spacing + jx, y: f64::from(y) * spacing + jy });
            }
        }

        let mut adjacency = vec![Vec::new(); nodes.len()];
        let add = |adjacency: &mut Vec<Vec<Edge>>, rng: &mut SmallRng, a: usize, b: usize| {
            let dx = nodes[a].x - nodes[b].x;
            let dy = nodes[a].y - nodes[b].y;
            let length = (dx * dx + dy * dy).sqrt().max(1.0);
            let speed = *[14.0, 25.0, 33.0].get(rng.gen_range(0..3usize)).expect("index in range");
            adjacency[a].push(Edge { to: b as u32, length, speed });
            adjacency[b].push(Edge { to: a as u32, length, speed });
        };

        for y in 0..ny {
            for x in 0..nx {
                // Horizontal edge.
                if x + 1 < nx {
                    let keep = y == 0 || rng.gen_bool(0.9);
                    if keep {
                        add(&mut adjacency, &mut rng, idx(x, y), idx(x + 1, y));
                    }
                }
                // Vertical edge.
                if y + 1 < ny {
                    let keep = x == 0 || rng.gen_bool(0.9);
                    if keep {
                        add(&mut adjacency, &mut rng, idx(x, y), idx(x, y + 1));
                    }
                }
            }
        }
        Self { nodes, adjacency }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Node coordinates.
    #[must_use]
    pub fn node(&self, id: u32) -> Node {
        self.nodes[id as usize]
    }

    /// Outgoing edges of a node.
    #[must_use]
    pub fn edges(&self, id: u32) -> &[Edge] {
        &self.adjacency[id as usize]
    }

    /// Shortest path (by travel time) from `from` to `to`, as a node
    /// sequence including both endpoints. Returns `None` if unreachable.
    #[must_use]
    pub fn shortest_path(&self, from: u32, to: u32) -> Option<Vec<u32>> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![u32::MAX; n];
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        dist[from as usize] = 0.0;
        heap.push(Reverse((0, from)));

        while let Some(Reverse((d_bits, node))) = heap.pop() {
            let d = f64::from_bits(d_bits);
            if d > dist[node as usize] {
                continue;
            }
            if node == to {
                break;
            }
            for edge in &self.adjacency[node as usize] {
                let next = d + edge.length / edge.speed;
                if next < dist[edge.to as usize] {
                    dist[edge.to as usize] = next;
                    prev[edge.to as usize] = node;
                    heap.push(Reverse((next.to_bits(), edge.to)));
                }
            }
        }

        if dist[to as usize].is_infinite() {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = prev[cur as usize];
            if cur == u32::MAX {
                return None;
            }
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// The edge from `a` to `b`, if adjacent.
    #[must_use]
    pub fn edge_between(&self, a: u32, b: u32) -> Option<Edge> {
        self.adjacency[a as usize].iter().copied().find(|e| e.to == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_expected_size() {
        let net = RoadNetwork::grid(10, 8, 100.0, 42);
        assert_eq!(net.node_count(), 80);
        // First row is a guaranteed path.
        for x in 0..9u32 {
            assert!(net.edge_between(x, x + 1).is_some());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = RoadNetwork::grid(6, 6, 50.0, 7);
        let b = RoadNetwork::grid(6, 6, 50.0, 7);
        assert_eq!(a.node(17), b.node(17));
        assert_eq!(a.edges(17), b.edges(17));
    }

    #[test]
    fn shortest_path_connects_corners() {
        let net = RoadNetwork::grid(12, 12, 100.0, 1);
        let path = net.shortest_path(0, 143).expect("grid stays connected");
        assert_eq!(path.first(), Some(&0));
        assert_eq!(path.last(), Some(&143));
        // Consecutive path nodes are adjacent.
        for w in path.windows(2) {
            assert!(net.edge_between(w[0], w[1]).is_some());
        }
    }

    #[test]
    fn path_to_self_is_trivial() {
        let net = RoadNetwork::grid(4, 4, 100.0, 1);
        assert_eq!(net.shortest_path(5, 5), Some(vec![5]));
    }

    #[test]
    fn dijkstra_prefers_faster_routes() {
        // Sanity: the chosen route's travel time is no worse than the
        // straight first-row route.
        let net = RoadNetwork::grid(8, 8, 100.0, 3);
        let time = |path: &[u32]| -> f64 {
            path.windows(2)
                .map(|w| {
                    let e = net.edge_between(w[0], w[1]).expect("adjacent");
                    e.length / e.speed
                })
                .sum()
        };
        let best = net.shortest_path(0, 7).expect("connected");
        let straight: Vec<u32> = (0..8).collect();
        assert!(time(&best) <= time(&straight) + 1e-9);
    }
}
