//! Moving-object simulation over a road network.
//!
//! Objects (cars, pedestrians with GPS devices) travel between random
//! destinations along shortest paths; each simulation tick advances every
//! object by `speed × Δt` along its route and reports a location-update
//! tuple `LocationUpdate(obj_id, x, y, speed)` — the workload of §VII-A.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use sp_core::{Schema, StreamId, Timestamp, Tuple, TupleId, Value, ValueType};

use crate::network::RoadNetwork;

/// One simulated moving object.
#[derive(Debug, Clone)]
struct MovingObject {
    /// Route as node ids; `leg` indexes the segment currently travelled.
    route: Vec<u32>,
    leg: usize,
    /// Progress along the current leg in meters.
    progress: f64,
}

/// The moving-object simulator.
pub struct MovingObjectSim {
    network: Arc<RoadNetwork>,
    objects: Vec<MovingObject>,
    rng: SmallRng,
    schema: Arc<Schema>,
    stream: StreamId,
    now: Timestamp,
    tick_ms: u64,
}

impl MovingObjectSim {
    /// The schema of location-update tuples.
    #[must_use]
    pub fn location_schema() -> Arc<Schema> {
        Schema::of(
            "LocationUpdates",
            &[
                ("obj_id", ValueType::Int),
                ("x", ValueType::Float),
                ("y", ValueType::Float),
                ("speed", ValueType::Float),
            ],
        )
    }

    /// Creates `count` objects at random positions on `network`.
    #[must_use]
    pub fn new(
        network: Arc<RoadNetwork>,
        stream: StreamId,
        count: usize,
        tick_ms: u64,
        seed: u64,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut objects = Vec::with_capacity(count);
        for _ in 0..count {
            let start = rng.gen_range(0..network.node_count() as u32);
            objects.push(MovingObject { route: vec![start], leg: 0, progress: 0.0 });
        }
        let mut sim = Self {
            network,
            objects,
            rng,
            schema: Self::location_schema(),
            stream,
            now: Timestamp::ZERO,
            tick_ms,
        };
        for i in 0..sim.objects.len() {
            sim.assign_route(i);
        }
        sim
    }

    /// The location-update schema used by this simulator.
    #[must_use]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of simulated objects.
    #[must_use]
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Timestamp {
        self.now
    }

    fn assign_route(&mut self, i: usize) {
        let here = *self.objects[i].route.last().expect("route never empty");
        // Try a few random destinations; fall back to staying put.
        for _ in 0..8 {
            let dest = self.rng.gen_range(0..self.network.node_count() as u32);
            if dest == here {
                continue;
            }
            if let Some(path) = self.network.shortest_path(here, dest) {
                if path.len() >= 2 {
                    self.objects[i] = MovingObject { route: path, leg: 0, progress: 0.0 };
                    return;
                }
            }
        }
        self.objects[i] = MovingObject { route: vec![here], leg: 0, progress: 0.0 };
    }

    /// Advances the simulation by one tick, producing one location update
    /// per object.
    pub fn tick(&mut self) -> Vec<Tuple> {
        self.now = self.now.plus(self.tick_ms);
        let dt = self.tick_ms as f64 / 1000.0;
        let mut updates = Vec::with_capacity(self.objects.len());
        for i in 0..self.objects.len() {
            // Advance along the route.
            let mut remaining = {
                let obj = &self.objects[i];
                let speed = self.current_speed(obj);
                speed * dt
            };
            loop {
                let obj = &mut self.objects[i];
                let Some(edge) = Self::current_edge(&self.network, obj) else {
                    break; // arrived (or parked)
                };
                let left_on_leg = edge.length - obj.progress;
                if remaining < left_on_leg {
                    obj.progress += remaining;
                    break;
                }
                remaining -= left_on_leg;
                obj.leg += 1;
                obj.progress = 0.0;
                if obj.leg + 1 >= obj.route.len() {
                    // Destination reached: pick a new one next.
                    self.assign_route(i);
                    break;
                }
            }
            let obj = &self.objects[i];
            let (x, y) = self.position(obj);
            let speed = self.current_speed(obj);
            updates.push(Tuple::new(
                self.stream,
                TupleId(i as u64),
                self.now,
                vec![Value::Int(i as i64), Value::Float(x), Value::Float(y), Value::Float(speed)],
            ));
        }
        updates
    }

    fn current_edge(network: &RoadNetwork, obj: &MovingObject) -> Option<crate::network::Edge> {
        if obj.leg + 1 >= obj.route.len() {
            return None;
        }
        network.edge_between(obj.route[obj.leg], obj.route[obj.leg + 1])
    }

    fn current_speed(&self, obj: &MovingObject) -> f64 {
        Self::current_edge(&self.network, obj).map_or(0.0, |e| e.speed)
    }

    fn position(&self, obj: &MovingObject) -> (f64, f64) {
        let a = self.network.node(obj.route[obj.leg]);
        match Self::current_edge(&self.network, obj) {
            None => (a.x, a.y),
            Some(edge) => {
                let b = self.network.node(obj.route[obj.leg + 1]);
                let f = (obj.progress / edge.length).clamp(0.0, 1.0);
                (a.x + (b.x - a.x) * f, a.y + (b.y - a.y) * f)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(objects: usize, seed: u64) -> MovingObjectSim {
        let net = Arc::new(RoadNetwork::grid(10, 10, 100.0, seed));
        MovingObjectSim::new(net, StreamId(1), objects, 1000, seed)
    }

    #[test]
    fn tick_produces_one_update_per_object() {
        let mut s = sim(25, 3);
        let updates = s.tick();
        assert_eq!(updates.len(), 25);
        assert_eq!(s.object_count(), 25);
        assert_eq!(s.now(), Timestamp(1000));
        for (i, u) in updates.iter().enumerate() {
            assert_eq!(u.tid.raw(), i as u64);
            assert_eq!(u.ts, Timestamp(1000));
            assert_eq!(u.arity(), 4);
        }
    }

    #[test]
    fn objects_actually_move() {
        let mut s = sim(10, 5);
        let first = s.tick();
        let mut second = Vec::new();
        for _ in 0..5 {
            second = s.tick();
        }
        let moved = first
            .iter()
            .zip(&second)
            .filter(|(a, b)| {
                let ax = a.value(1).unwrap().as_f64().unwrap();
                let bx = b.value(1).unwrap().as_f64().unwrap();
                let ay = a.value(2).unwrap().as_f64().unwrap();
                let by = b.value(2).unwrap().as_f64().unwrap();
                (ax - bx).abs() + (ay - by).abs() > 1.0
            })
            .count();
        assert!(moved >= 8, "only {moved}/10 objects moved");
    }

    #[test]
    fn simulation_is_deterministic() {
        let mut a = sim(10, 9);
        let mut b = sim(10, 9);
        for _ in 0..10 {
            assert_eq!(a.tick(), b.tick());
        }
    }

    #[test]
    fn positions_stay_on_the_map() {
        let mut s = sim(20, 11);
        for _ in 0..50 {
            for u in s.tick() {
                let x = u.value(1).unwrap().as_f64().unwrap();
                let y = u.value(2).unwrap().as_f64().unwrap();
                assert!((-100.0..1100.0).contains(&x), "x={x}");
                assert!((-100.0..1100.0).contains(&y), "y={y}");
            }
        }
    }
}
