//! Punctuated-stream workload synthesis (§VII-A).
//!
//! Wraps the moving-object simulation into the exact stream shapes the
//! paper's experiments use: location updates with interleaved
//! tuple-granularity security punctuations, where
//!
//! * the **sp : tuple ratio** controls how many consecutive tuples share
//!   one policy (1/1 = every tuple has its own sp, 1/100 = one sp per 100
//!   tuples),
//! * the **policy size |R|** is the number of explicit role authorizations
//!   per sp (large policies are emitted as explicit role lists, the case
//!   where "regular expressions cannot help minimize the policy
//!   definition"),
//! * the **grant selectivity** is the probability that a policy authorizes
//!   the probe role (role 0) — the σ_sp knob of the SAJoin experiment.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use sp_core::{RoleId, RoleSet, Schema, SecurityPunctuation, StreamElement, StreamId, Timestamp};

use crate::network::RoadNetwork;
use crate::sim::MovingObjectSim;

/// Bursty (on/off) arrival shaping for overload experiments.
///
/// Stream time is virtual: the generator stamps elements with a
/// monotone clock, and downstream components (the load shedder's
/// drain model, the reorder buffer) read arrival rate off that clock.
/// A burst therefore *compresses* stream time — during an ON phase,
/// `amplitude` tuples share each clock millisecond instead of one, so
/// the offered load seen by a shedder draining `k` tuples per ms is
/// `amplitude`× the sustained rate. OFF phases revert to one tuple
/// per ms, letting queues drain. Tuple and sp counts are unchanged;
/// only inter-arrival spacing moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstConfig {
    /// Simulation ticks per ON (burst) phase.
    pub on_ticks: usize,
    /// Simulation ticks per OFF (lull) phase following each burst.
    pub off_ticks: usize,
    /// Arrival-rate multiplier during ON phases: this many tuples share
    /// each stream-time millisecond (values < 1 behave as 1 = no burst).
    pub amplitude: u64,
}

impl Default for BurstConfig {
    fn default() -> Self {
        Self { on_ticks: 5, off_ticks: 5, amplitude: 4 }
    }
}

impl BurstConfig {
    /// True when simulation tick `tick` falls in an ON phase.
    #[must_use]
    pub fn is_on(&self, tick: usize) -> bool {
        let cycle = self.on_ticks + self.off_ticks;
        if cycle == 0 {
            return false;
        }
        tick % cycle < self.on_ticks
    }
}

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of moving objects.
    pub objects: usize,
    /// Number of simulation ticks (each yields one update per object).
    pub ticks: usize,
    /// One sp per this many tuples (the paper's 1/N sp:tuple ratio).
    pub sp_every: usize,
    /// Roles authorized per policy (|R|).
    pub policy_roles: u32,
    /// Size of the role universe policies draw from.
    pub role_universe: u32,
    /// Probability a policy includes the probe role (`RoleId(0)`).
    pub grant_selectivity: f64,
    /// If true, each sp's DDP names the *exact id range* of the objects in
    /// its segment (objects report in id order, so the next `sp_every`
    /// tuples form a contiguous block; requires `sp_every` to divide
    /// `objects`). This is the per-object "tuple-granularity" shape of the
    /// paper's evaluation: a central policy table must store one row per
    /// block and probe it per tuple. If false, sps cover the whole segment
    /// (`DDP tuple = *`).
    pub scoped_sps: bool,
    /// Simulation tick length in milliseconds.
    pub tick_ms: u64,
    /// Optional on/off burst shaping: compresses stream time during ON
    /// phases so arrival rate spikes without changing tuple counts.
    pub burst: Option<BurstConfig>,
    /// RNG seed (workloads are fully deterministic).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            objects: 200,
            ticks: 50,
            sp_every: 10,
            policy_roles: 3,
            role_universe: 100,
            grant_selectivity: 0.5,
            scoped_sps: false,
            tick_ms: 100,
            burst: None,
            seed: 42,
        }
    }
}

impl WorkloadConfig {
    /// Total tuples this configuration produces.
    #[must_use]
    pub fn tuple_count(&self) -> usize {
        self.objects * self.ticks
    }
}

/// A generated punctuated stream plus its metadata.
pub struct Workload {
    /// The stream elements (sps interleaved with tuples), in order.
    pub elements: Vec<StreamElement>,
    /// The stream schema.
    pub schema: Arc<Schema>,
    /// The stream id tuples carry.
    pub stream: StreamId,
    /// Number of data tuples.
    pub tuples: usize,
    /// Number of punctuations.
    pub sps: usize,
}

/// Draws one policy role set: the probe role (0) with probability
/// `grant_selectivity`, padded with distinct non-probe roles up to
/// `policy_roles`.
fn draw_roles(rng: &mut SmallRng, cfg: &WorkloadConfig) -> RoleSet {
    let mut set = RoleSet::new();
    if rng.gen_bool(cfg.grant_selectivity.clamp(0.0, 1.0)) {
        set.insert(RoleId(0));
    }
    let universe = cfg.role_universe.max(2);
    let mut guard = 0;
    while (set.len() as u32) < cfg.policy_roles && guard < 10_000 {
        let r = rng.gen_range(1..universe);
        set.insert(RoleId(r));
        guard += 1;
    }
    set
}

/// Generates a punctuated location-update stream per the configuration.
#[must_use]
pub fn location_stream(cfg: &WorkloadConfig) -> Workload {
    let stream = StreamId(1);
    let network = Arc::new(RoadNetwork::grid(16, 16, 100.0, cfg.seed));
    let mut sim = MovingObjectSim::new(network, stream, cfg.objects, cfg.tick_ms, cfg.seed);
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9));

    let mut elements =
        Vec::with_capacity(cfg.tuple_count() + cfg.tuple_count() / cfg.sp_every.max(1) + 1);
    let (mut tuples, mut sps) = (0usize, 0usize);
    let mut since_sp = usize::MAX; // force an sp before the first tuple
                                   // Elements are restamped with a monotone clock. Punctuations always
                                   // get a fresh millisecond: distinct policies MUST have distinct
                                   // timestamps (a batch of equal-timestamp sps denotes a single
                                   // policy, §III-A). Tuples normally do too, but during a burst ON
                                   // phase `amplitude` consecutive tuples share one millisecond —
                                   // that clock compression IS the rate spike.
    let mut clock: u64 = 0;
    // Tuples left to emit on the current clock millisecond before it
    // must advance (burst ON phases set this to amplitude - 1).
    let mut burst_credit: u64 = 0;
    if cfg.scoped_sps {
        assert!(
            cfg.sp_every >= 1 && cfg.objects.is_multiple_of(cfg.sp_every),
            "scoped sps need sp_every to divide the object count"
        );
    }
    for tick in 0..cfg.ticks {
        let amplitude = match &cfg.burst {
            Some(b) if b.is_on(tick) => b.amplitude.max(1),
            _ => 1,
        };
        for tuple in sim.tick() {
            if since_sp >= cfg.sp_every.max(1) {
                // The next segment's policy: one tuple-granularity sp whose
                // timestamp is the moment it goes into effect.
                let roles = draw_roles(&mut rng, cfg);
                clock += 1;
                let mut sp = SecurityPunctuation::grant_all(roles, Timestamp(clock));
                if cfg.scoped_sps {
                    // Objects report in id order, so the upcoming segment
                    // is exactly this contiguous id block.
                    let lo = tuple.tid.raw();
                    let hi = lo + cfg.sp_every as u64 - 1;
                    sp = sp.with_ddp(sp_core::DataDescription::tuple_range(lo, hi));
                }
                elements.push(StreamElement::punctuation(sp));
                sps += 1;
                since_sp = 0;
                // The sp consumed a fresh millisecond; tuples sharing it
                // would predate their own policy's effect on a re-sort.
                burst_credit = 0;
            }
            if burst_credit > 0 {
                burst_credit -= 1;
            } else {
                clock += 1;
                burst_credit = amplitude - 1;
            }
            let restamped = sp_core::Tuple::new(
                tuple.sid,
                tuple.tid,
                Timestamp(clock),
                tuple.values().to_vec(),
            );
            elements.push(StreamElement::tuple(restamped));
            tuples += 1;
            since_sp += 1;
        }
    }
    Workload { elements, schema: MovingObjectSim::location_schema(), stream, tuples, sps }
}

/// Generates two punctuated location streams for the SAJoin experiment:
/// objects of both streams move on the same network and join on a shared
/// `region` attribute; `grant_selectivity` (σ_sp) controls the probability
/// that a pair of segment policies is compatible (shares the probe role).
#[must_use]
pub fn join_streams(cfg: &WorkloadConfig) -> (Workload, Workload) {
    let mut left_cfg = cfg.clone();
    left_cfg.seed = cfg.seed.wrapping_add(1);
    let mut right_cfg = cfg.clone();
    right_cfg.seed = cfg.seed.wrapping_add(2);
    let mut left = location_stream(&left_cfg);
    let mut right = location_stream(&right_cfg);
    right.stream = StreamId(2);
    // Restamp right-side tuples with the right stream id.
    for e in &mut right.elements {
        if let StreamElement::Tuple(t) = e {
            let mut nt = (**t).clone();
            nt.sid = StreamId(2);
            *t = Arc::new(nt);
        }
    }
    left.stream = StreamId(1);
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_sp_to_tuple_ratio() {
        for every in [1usize, 10, 25, 50] {
            let cfg = WorkloadConfig {
                objects: 20,
                ticks: 10,
                sp_every: every,
                ..WorkloadConfig::default()
            };
            let w = location_stream(&cfg);
            assert_eq!(w.tuples, 200);
            let expected = 200usize.div_ceil(every);
            assert_eq!(w.sps, expected, "ratio 1/{every}");
        }
    }

    #[test]
    fn first_element_is_a_punctuation() {
        let w = location_stream(&WorkloadConfig::default());
        assert!(matches!(w.elements[0], StreamElement::Punctuation(_)));
    }

    #[test]
    fn policy_size_is_respected() {
        let cfg = WorkloadConfig { policy_roles: 25, role_universe: 200, ..Default::default() };
        let w = location_stream(&cfg);
        for e in &w.elements {
            if let StreamElement::Punctuation(sp) = e {
                let roles = sp.srp.resolve(&sp_core::RoleCatalog::new());
                assert!(roles.len() >= 25, "policy has {} roles", roles.len());
            }
        }
    }

    #[test]
    fn selectivity_extremes() {
        let never = WorkloadConfig { grant_selectivity: 0.0, ..Default::default() };
        let w = location_stream(&never);
        for e in &w.elements {
            if let StreamElement::Punctuation(sp) = e {
                let roles = sp.srp.resolve(&sp_core::RoleCatalog::new());
                assert!(!roles.contains(RoleId(0)));
            }
        }
        let always = WorkloadConfig { grant_selectivity: 1.0, ..Default::default() };
        let w = location_stream(&always);
        for e in &w.elements {
            if let StreamElement::Punctuation(sp) = e {
                let roles = sp.srp.resolve(&sp_core::RoleCatalog::new());
                assert!(roles.contains(RoleId(0)));
            }
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = location_stream(&WorkloadConfig::default());
        let b = location_stream(&WorkloadConfig::default());
        assert_eq!(a.elements.len(), b.elements.len());
        assert_eq!(a.elements, b.elements);
    }

    #[test]
    fn bursts_change_spacing_not_counts() {
        let steady = WorkloadConfig { objects: 20, ticks: 20, ..Default::default() };
        let bursty = WorkloadConfig {
            burst: Some(BurstConfig { on_ticks: 4, off_ticks: 4, amplitude: 8 }),
            ..steady.clone()
        };
        let s = location_stream(&steady);
        let b = location_stream(&bursty);
        // Same work, different arrival shape.
        assert_eq!(s.tuples, b.tuples);
        assert_eq!(s.sps, b.sps);
        assert_eq!(s.elements.len(), b.elements.len());
        // Burst compression means the same workload spans less stream
        // time — that is the rate spike downstream queues see.
        let last = |w: &Workload| w.elements.last().unwrap().ts().0;
        assert!(last(&b) < last(&s), "bursty {} vs steady {}", last(&b), last(&s));
    }

    #[test]
    fn burst_timestamps_stay_monotone_and_sps_stay_distinct() {
        let cfg = WorkloadConfig {
            objects: 20,
            ticks: 16,
            sp_every: 5,
            burst: Some(BurstConfig { on_ticks: 3, off_ticks: 2, amplitude: 16 }),
            ..Default::default()
        };
        let w = location_stream(&cfg);
        let mut prev = 0u64;
        let mut sp_ts = Vec::new();
        for e in &w.elements {
            assert!(e.ts().0 >= prev, "clock went backwards");
            prev = e.ts().0;
            if let StreamElement::Punctuation(sp) = e {
                sp_ts.push(sp.ts.0);
            }
        }
        // Distinct policies must keep distinct timestamps even under
        // maximal clock compression (equal-ts sps merge into one batch).
        let mut dedup = sp_ts.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), sp_ts.len());
    }

    #[test]
    fn on_phase_packs_amplitude_tuples_per_millisecond() {
        let amp = 8u64;
        let cfg = WorkloadConfig {
            objects: 32,
            ticks: 2,
            sp_every: 1000, // one sp up front, then pure data
            burst: Some(BurstConfig { on_ticks: 2, off_ticks: 0, amplitude: amp }),
            ..Default::default()
        };
        let w = location_stream(&cfg);
        let mut per_ms: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for e in &w.elements {
            if matches!(e, StreamElement::Tuple(_)) {
                *per_ms.entry(e.ts().0).or_insert(0) += 1;
            }
        }
        assert!(per_ms.values().any(|&n| n == amp), "no full-amplitude millisecond");
        assert!(per_ms.values().all(|&n| n <= amp));
    }

    #[test]
    fn bursty_workloads_are_deterministic() {
        let cfg =
            WorkloadConfig { burst: Some(BurstConfig::default()), ..WorkloadConfig::default() };
        assert_eq!(location_stream(&cfg).elements, location_stream(&cfg).elements);
    }

    #[test]
    fn join_streams_have_distinct_ids() {
        let cfg = WorkloadConfig { objects: 10, ticks: 5, ..Default::default() };
        let (l, r) = join_streams(&cfg);
        assert_eq!(l.stream, StreamId(1));
        assert_eq!(r.stream, StreamId(2));
        for e in &r.elements {
            if let StreamElement::Tuple(t) = e {
                assert_eq!(t.sid, StreamId(2));
            }
        }
        assert_ne!(l.elements, r.elements);
    }
}
