//! Health-telemetry stream generators — the paper's running example
//! (Fig. 4): `HeartRate(Patient_id, Beats_per_min)`,
//! `BodyTemperature(Patient_id, Temperature)` and
//! `BreathingRate(Patient_id, Frequency, Depth)` streams, with the hospital
//! role set {cardiologist, general physician, doctor, dermatologist,
//! nurse-on-duty, employee}.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use sp_core::{RoleCatalog, Schema, Timestamp, Tuple, TupleId, Value, ValueType};

/// The roles of Fig. 4b, in registration order.
pub const HOSPITAL_ROLES: [&str; 6] =
    ["cardiologist", "general_physician", "doctor", "dermatologist", "nurse_on_duty", "employee"];

/// Registers the hospital roles into a fresh catalog.
#[must_use]
pub fn hospital_catalog() -> RoleCatalog {
    let mut catalog = RoleCatalog::new();
    for role in HOSPITAL_ROLES {
        catalog.register_role(role).expect("roles are distinct");
    }
    catalog
}

/// Stream ids used by the example streams.
pub mod streams {
    use sp_core::StreamId;
    /// HeartRate (s1).
    pub const HEART_RATE: StreamId = StreamId(1);
    /// BodyTemperature (s2).
    pub const BODY_TEMPERATURE: StreamId = StreamId(2);
    /// BreathingRate (s3).
    pub const BREATHING_RATE: StreamId = StreamId(3);
}

/// Schema of the HeartRate stream (s1).
#[must_use]
pub fn heart_rate_schema() -> Arc<Schema> {
    Schema::of("HeartRate", &[("Patient_id", ValueType::Int), ("Beats_per_min", ValueType::Int)])
}

/// Schema of the BodyTemperature stream (s2).
#[must_use]
pub fn body_temperature_schema() -> Arc<Schema> {
    Schema::of(
        "BodyTemperature",
        &[("Patient_id", ValueType::Int), ("Temperature", ValueType::Float)],
    )
}

/// Schema of the BreathingRate stream (s3).
#[must_use]
pub fn breathing_rate_schema() -> Arc<Schema> {
    Schema::of(
        "BreathingRate",
        &[("Patient_id", ValueType::Int), ("Frequency", ValueType::Int), ("Depth", ValueType::Int)],
    )
}

/// A deterministic vital-signs generator for a set of patients.
pub struct HealthSim {
    rng: SmallRng,
    patients: Vec<u64>,
    now: Timestamp,
    period_ms: u64,
}

impl HealthSim {
    /// Patients `first_id..first_id + count`, reporting every `period_ms`.
    #[must_use]
    pub fn new(first_id: u64, count: usize, period_ms: u64, seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            patients: (first_id..first_id + count as u64).collect(),
            now: Timestamp::ZERO,
            period_ms,
        }
    }

    /// The simulated patient ids.
    #[must_use]
    pub fn patients(&self) -> &[u64] {
        &self.patients
    }

    /// Advances time and produces one reading per patient per stream:
    /// `(heart_rate, body_temperature, breathing_rate)` tuples.
    pub fn tick(&mut self) -> (Vec<Tuple>, Vec<Tuple>, Vec<Tuple>) {
        self.now = self.now.plus(self.period_ms);
        let ts = self.now;
        let mut hr = Vec::with_capacity(self.patients.len());
        let mut bt = Vec::with_capacity(self.patients.len());
        let mut br = Vec::with_capacity(self.patients.len());
        for &pid in &self.patients {
            // Mostly normal vitals with occasional abnormal spikes.
            let spike = self.rng.gen_bool(0.05);
            let beats =
                if spike { self.rng.gen_range(120..180) } else { self.rng.gen_range(55..95) };
            let temp = if spike {
                self.rng.gen_range(101.0..105.0)
            } else {
                self.rng.gen_range(97.0..99.5)
            };
            let freq = self.rng.gen_range(8..20);
            let depth = self.rng.gen_range(30..50);
            hr.push(Tuple::new(
                streams::HEART_RATE,
                TupleId(pid),
                ts,
                vec![Value::Int(pid as i64), Value::Int(beats)],
            ));
            bt.push(Tuple::new(
                streams::BODY_TEMPERATURE,
                TupleId(pid),
                ts,
                vec![Value::Int(pid as i64), Value::Float(temp)],
            ));
            br.push(Tuple::new(
                streams::BREATHING_RATE,
                TupleId(pid),
                ts,
                vec![Value::Int(pid as i64), Value::Int(freq), Value::Int(depth)],
            ));
        }
        (hr, bt, br)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_all_roles() {
        let c = hospital_catalog();
        assert_eq!(c.role_count(), 6);
        assert!(c.lookup_role("cardiologist").is_some());
        assert!(c.lookup_role("nurse_on_duty").is_some());
    }

    #[test]
    fn schemas_match_fig4() {
        assert_eq!(heart_rate_schema().arity(), 2);
        assert_eq!(body_temperature_schema().index_of("Temperature"), Some(1));
        assert_eq!(breathing_rate_schema().arity(), 3);
    }

    #[test]
    fn tick_covers_all_patients_and_streams() {
        let mut sim = HealthSim::new(120, 5, 1000, 7);
        let (hr, bt, br) = sim.tick();
        assert_eq!(hr.len(), 5);
        assert_eq!(bt.len(), 5);
        assert_eq!(br.len(), 5);
        assert_eq!(hr[0].tid.raw(), 120);
        assert_eq!(sim.patients(), &[120, 121, 122, 123, 124]);
        // Vitals are in plausible ranges.
        for t in &hr {
            let beats = t.value(1).unwrap().as_i64().unwrap();
            assert!((55..180).contains(&beats));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = HealthSim::new(0, 3, 500, 9);
        let mut b = HealthSim::new(0, 3, 500, 9);
        for _ in 0..10 {
            assert_eq!(a.tick(), b.tick());
        }
    }
}
