//! Shared timestamp-slack arithmetic.
//!
//! Two mechanisms consult a ts-slack: the K-slack [`ReorderBuffer`]
//! (how much disorder to absorb before releasing in timestamp order) and
//! the overload [`Shedder`]'s oldest-first policy (how far behind the
//! stream clock a tuple may lag before it is the first candidate to
//! shed). Both MUST agree on what "late by more than the slack" means —
//! if they drift, the shedder could classify as stale a tuple the reorder
//! buffer would still have released, or vice versa. [`Slack`] is the one
//! shared definition: `watermark = max timestamp seen − slack`, and an
//! element is late exactly when its timestamp is strictly below the
//! watermark.
//!
//! **Interaction contract** (shedding vs. K-slack eviction): a tuple shed
//! by a [`Shedder`] must **not** count toward K-slack eviction. The
//! reorder buffer's watermark advances on *arrival* (`max_seen`), before
//! any shedding decision, so the shedder is always placed *downstream* of
//! the reorder buffer (and of the SP Analyzer). A shed tuple therefore
//! never drags the watermark forward and never evicts a sibling from the
//! buffer; conversely the reorder buffer never re-orders around a shed —
//! the element simply vanishes after ordering was already restored.
//!
//! [`ReorderBuffer`]: crate::reorder::ReorderBuffer
//! [`Shedder`]: crate::overload::Shedder

use sp_core::Timestamp;

/// A disorder/staleness tolerance in timestamp units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Slack(u64);

impl Slack {
    /// No tolerance: anything behind the maximum seen timestamp is late.
    pub const ZERO: Slack = Slack(0);

    /// A slack of `units` timestamp units.
    #[must_use]
    pub const fn new(units: u64) -> Self {
        Slack(units)
    }

    /// The tolerance in timestamp units.
    #[must_use]
    pub const fn units(self) -> u64 {
        self.0
    }

    /// The release watermark for a stream whose maximum seen timestamp is
    /// `max_seen`: everything at or below it is safe to release in order.
    #[must_use]
    pub fn watermark(self, max_seen: Timestamp) -> Timestamp {
        max_seen.minus(self.0)
    }

    /// True when an element stamped `ts` is *late*: strictly below the
    /// watermark derived from `max_seen`. This is the single definition
    /// both the reorder buffer (drop: order can no longer be restored)
    /// and the shedder's oldest-first policy (shed: least valuable under
    /// load) use.
    #[must_use]
    pub fn is_late(self, ts: Timestamp, max_seen: Timestamp) -> bool {
        ts < self.watermark(max_seen)
    }
}

impl From<u64> for Slack {
    fn from(units: u64) -> Self {
        Slack(units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_saturates_at_zero() {
        let s = Slack::new(10);
        assert_eq!(s.watermark(Timestamp(4)), Timestamp(0));
        assert_eq!(s.watermark(Timestamp(25)), Timestamp(15));
        assert_eq!(Slack::ZERO.watermark(Timestamp(7)), Timestamp(7));
    }

    #[test]
    fn late_is_strictly_below_watermark() {
        let s = Slack::new(5);
        let max = Timestamp(20);
        assert!(s.is_late(Timestamp(14), max));
        assert!(!s.is_late(Timestamp(15), max), "at the watermark is not late");
        assert!(!s.is_late(Timestamp(20), max));
    }

    #[test]
    fn conversions_round_trip() {
        let s: Slack = 7u64.into();
        assert_eq!(s.units(), 7);
        assert_eq!(s, Slack::new(7));
    }
}
