//! # sp-engine — a security-aware stream operator framework
//!
//! A from-scratch DSMS substrate (standing in for CAPE, the engine used by
//! the paper) implementing the *security-aware query algebra* of
//! *"A Security Punctuation Framework for Enforcing Access Control on
//! Streaming Data"* (ICDE 2008):
//!
//! * [`element`] — engine stream elements: tuples interleaved with resolved
//!   segment policies;
//! * [`analyzer`] — the SP Analyzer: sp-batch resolution, server-policy
//!   combination, similar-policy merging;
//! * [`batch`] — segment-run batches ([`batch::ElementBatch`]): the
//!   executor and parallel runner move kind-homogeneous runs of elements
//!   cut at sp-batch / punctuation / epoch boundaries, amortizing
//!   dispatch, queueing, and telemetry over whole runs;
//! * [`expr`] — scalar expressions for predicates and join conditions;
//! * [`operator`] / [`stats`] — the pipelined operator abstraction with
//!   per-cause cost accounting;
//! * [`ops`] — the algebra: Security Shield (ψ), select (σ), project (π),
//!   SAJoin (⋈, nested-loop PF/FP and SPIndex variants), duplicate
//!   elimination (δ), group-by with attribute subgroups;
//! * [`plan`] — plan DAGs with shared subplans and the push-based executor;
//! * [`parallel`] — a pipeline-parallel runner (one thread per operator,
//!   bounded channels, panic containment) that reproduces the sequential
//!   executor's results exactly;
//! * [`shard`] — key-partitioned scale-*out*: N shard replicas behind a
//!   deterministic exchange merge, with broadcast sps, shard-spanning
//!   canonical checkpoints, and byte-identical observables at any shard
//!   count;
//! * [`error`] — typed runtime errors: hostile input fails a query, not
//!   the process;
//! * [`fault`] — deterministic seeded fault injection (drop / duplicate /
//!   reorder / delay / corrupt) and the chaos harness over whole plans;
//! * [`reorder`] — a K-slack buffer restoring timestamp order for
//!   out-of-order arrivals (the substrate §II-B defers to prior work);
//! * [`slack`] — the shared lateness bound ([`slack::Slack`]) used by both
//!   the reorder buffer and the load shedder, so "late" means one thing;
//! * [`overload`] — security-aware overload management: the degradation
//!   ladder, semantic load shedding (sps are lossless control traffic,
//!   only data tuples shed), classed control/data bounded queues, and
//!   token-bucket admission control at the ingestion boundary;
//! * [`checkpoint`] — epoch checkpoints: canonical per-operator snapshots,
//!   CRC-framed [`Checkpoint`] records, and append-only durable stores
//!   that fall back past torn or corrupted frames;
//! * [`supervisor`] — crash supervision: periodic epoch cuts, restart
//!   with restore + deterministic replay, bounded exponential backoff,
//!   and a terminal fail-closed state that refuses input rather than
//!   leak it;
//! * [`predicate_index`] — the CACQ-style grouped filter over SS states
//!   that §V-A suggests for many-query shields;
//! * [`telemetry`] — the security-decision audit trail (deterministic
//!   per-operator flight recorders), mergeable log₂ histograms with
//!   Prometheus/JSON export, and a feature-gated span facade.

#![warn(missing_docs)]

pub mod analyzer;
pub mod batch;
pub mod checkpoint;
pub mod element;
pub mod error;
pub mod expr;
pub mod fault;
pub mod operator;
pub mod ops;
pub mod overload;
pub mod parallel;
pub mod plan;
pub mod predicate_index;
pub mod reorder;
pub mod shard;
pub mod slack;
pub mod stats;
pub mod supervisor;
pub mod telemetry;
pub mod window;

pub use analyzer::{QuarantinePolicy, SpAnalyzer};
pub use batch::ElementBatch;
pub use checkpoint::{Checkpoint, CheckpointStore, FileStore, MemStore};
pub use element::{Element, PolicyEntry, SegmentPolicy};
pub use error::EngineError;
pub use expr::{ArithOp, CmpOp, Expr};
pub use fault::{
    ChaosReport, CipherFaultInjector, CipherFaultPlan, CipherFaultStats, FaultInjector, FaultPlan,
    FaultStats, LinkFaultInjector, LinkFaultPlan, LinkFaultStats, SocketEvent, SocketFaultInjector,
    SocketFaultPlan, SocketFaultStats,
};
pub use operator::{run_unary, Emitter, Operator};
pub use ops::{
    AggFunc, DupElim, Granularity, GroupBy, JoinVariant, MatchMode, Project, SAIntersect, SAJoin,
    SecurityShield, Select, Sink, Union,
};
pub use overload::{
    classed_channel, AdmissionConfig, AdmissionController, ClassedReceiver, ClassedSender,
    DataRejected, DegradationLadder, LadderTransition, OverloadLevel, ShedPolicy, Shedder,
    ShedderConfig, WatermarkConfig,
};
pub use parallel::{run_parallel, run_parallel_checkpointed, ParallelResults};
pub use plan::{Executor, NodeRef, PlanBuilder, SinkRef, SourceRef, Upstream};
pub use predicate_index::{PredicateIndex, QuerySet};
pub use reorder::ReorderBuffer;
pub use shard::{Partitioner, ShardedExecutor};
pub use slack::Slack;
pub use stats::{CostKind, DegradationStats, OperatorStats};
pub use supervisor::{
    run_supervised, run_supervised_sharded, RecoveryReport, SessionExecutor, SupervisedRun,
    SupervisorConfig, DEFAULT_EPOCH_INTERVAL,
};
pub use telemetry::{
    AuditEvent, AuditOp, AuditRecord, AuditTrail, CipherViolation, FlightRecorder, Histogram,
    LagTracker, MetricsRegistry, QuarantineReason, SpanRecord, SpanRecorder, SpanSheet,
    TelemetryConfig,
};
pub use window::WindowSpec;
