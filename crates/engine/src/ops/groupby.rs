//! Security-aware group-by / aggregation `G_A^{agg}(T)` (Table I, §IV-B).
//!
//! Each attribute group (AG — tuples sharing a grouping value) is
//! partitioned into *attribute subgroups* (ASGs): tuples with the same
//! grouping value **and** the same policy. An aggregate is maintained per
//! ASG and every update is emitted preceded by the subgroup's policy, so a
//! subject only ever sees aggregates over tuples it was authorized to read.
//! Aggregation without grouping is a group-by with a single group.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

use sp_core::{Policy, RoleSet, SharedPolicy, Timestamp, Tuple, Value};

use crate::checkpoint as ckpt;
use crate::element::{Element, SegmentPolicy};
use crate::error::EngineError;
use crate::operator::{Emitter, Operator};
use crate::stats::{CostKind, OperatorStats};
use crate::window::WindowSpec;

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count.
    Count,
    /// Numeric sum.
    Sum,
    /// Numeric average.
    Avg,
    /// Minimum (total order).
    Min,
    /// Maximum (total order).
    Max,
}

impl AggFunc {
    /// SQL-ish name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// `Value` wrapper ordered by [`Value::cmp_total`], usable as a BTree key.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OrdValue(Value);

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp_total(&other.0)
    }
}

/// Incremental aggregate state (supports retraction on window expiry).
#[derive(Debug, Default)]
struct AggState {
    count: u64,
    sum: f64,
    /// Multiset of values for Min/Max retraction.
    values: BTreeMap<OrdValue, usize>,
}

impl AggState {
    fn add(&mut self, v: &Value) {
        self.count += 1;
        if let Some(x) = v.as_f64() {
            self.sum += x;
        }
        *self.values.entry(OrdValue(v.clone())).or_insert(0) += 1;
    }

    fn retract(&mut self, v: &Value) {
        self.count = self.count.saturating_sub(1);
        if let Some(x) = v.as_f64() {
            self.sum -= x;
        }
        // One key construction for both the lookup and the removal.
        let key = OrdValue(v.clone());
        if let Some(n) = self.values.get_mut(&key) {
            *n -= 1;
            if *n == 0 {
                self.values.remove(&key);
            }
        }
    }

    fn result(&self, f: AggFunc) -> Value {
        match f {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => Value::Float(self.sum),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.values.keys().next().map_or(Value::Null, |k| k.0.clone()),
            AggFunc::Max => self.values.keys().next_back().map_or(Value::Null, |k| k.0.clone()),
        }
    }
}

/// One attribute subgroup: a (group value, policy) pair and its aggregate.
#[derive(Debug)]
struct Asg {
    group: Value,
    roles: RoleSet,
    state: AggState,
}

/// The group-by operator.
#[derive(Debug)]
pub struct GroupBy {
    /// Grouping attribute (`None` = one global group).
    group_attr: Option<usize>,
    agg: AggFunc,
    /// Aggregated attribute (ignored by COUNT).
    agg_attr: usize,
    window: WindowSpec,
    buffer: VecDeque<(Arc<Tuple>, SharedPolicy)>,
    asgs: Vec<Asg>,
    current: Option<Arc<SegmentPolicy>>,
    last_policy: Option<Policy>,
    stats: OperatorStats,
}

impl GroupBy {
    /// A windowed aggregate, optionally grouped by `group_attr`.
    #[must_use]
    pub fn new(group_attr: Option<usize>, agg: AggFunc, agg_attr: usize, window_ms: u64) -> Self {
        Self {
            group_attr,
            agg,
            agg_attr,
            window: WindowSpec::Time(window_ms),
            buffer: VecDeque::new(),
            asgs: Vec::new(),
            current: None,
            last_policy: None,
            stats: OperatorStats::new(),
        }
    }

    /// Replaces the window specification (e.g. a `ROWS n` count window).
    #[must_use]
    pub fn with_window(mut self, window: WindowSpec) -> Self {
        self.window = window;
        self
    }

    fn group_of(&self, t: &Tuple) -> Value {
        match self.group_attr {
            Some(i) => t.value(i).cloned().unwrap_or(Value::Null),
            None => Value::Null,
        }
    }

    fn asg_index(&self, group: &Value, roles: &RoleSet) -> Option<usize> {
        self.asgs.iter().position(|a| &a.group == group && &a.roles == roles)
    }

    /// Emits the updated aggregate of the ASG at `idx`, preceded by the
    /// subgroup's policy.
    fn emit_asg(&mut self, idx: usize, ts: Timestamp, out: &mut Emitter) {
        let asg = &self.asgs[idx];
        if asg.roles.is_empty() {
            // A deny-all subgroup's aggregate is visible to no one.
            self.stats.tuples_shielded += 1;
            return;
        }
        // The emitted policy carries the update's timestamp so output sps
        // stay ordered across subgroups.
        let policy = Policy::tuple_level(asg.roles.clone(), ts);
        // The output tuple id identifies the group stably (a hash of the
        // grouping value), independent of internal ASG bookkeeping.
        let tid = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            asg.group.hash(&mut h);
            h.finish()
        };
        let result = Tuple::new(
            sp_core::StreamId(0),
            sp_core::TupleId(tid),
            ts,
            vec![asg.group.clone(), asg.state.result(self.agg)],
        );
        let repeated =
            self.last_policy.as_ref().is_some_and(|prev| prev.same_authorizations(&policy));
        if !repeated {
            self.stats.sps_out += 1;
            out.push(Element::policy(SegmentPolicy::uniform(policy.clone())));
        }
        self.last_policy = Some(policy);
        self.stats.tuples_out += 1;
        out.push(Element::tuple(result));
    }

    fn expire(&mut self, now: Timestamp, out: &mut Emitter) {
        let Some(horizon) = self.window.horizon(now) else { return };
        while self.buffer.front().is_some_and(|(t, _)| t.ts <= horizon) {
            self.evict_front(now, out);
        }
    }

    fn trim_rows(&mut self, now: Timestamp, out: &mut Emitter) {
        if let Some(capacity) = self.window.capacity() {
            while self.buffer.len() > capacity {
                self.evict_front(now, out);
            }
        }
    }

    fn evict_front(&mut self, now: Timestamp, out: &mut Emitter) {
        let Some((t, p)) = self.buffer.pop_front() else { return };
        let group = self.group_of(&t);
        if let Some(idx) = self.asg_index(&group, p.tuple_roles()) {
            let null = Value::Null;
            let v = t.value(self.agg_attr).unwrap_or(&null);
            self.asgs[idx].state.retract(v);
            if self.asgs[idx].state.count == 0 {
                self.asgs.swap_remove(idx);
            } else {
                // Every tuple changes the aggregate twice: on arrival
                // and on expiry (§VI-A cost model).
                self.emit_asg(idx, now, out);
            }
        }
    }
}

impl Operator for GroupBy {
    fn name(&self) -> &str {
        "groupby"
    }

    fn process(
        &mut self,
        port: usize,
        elem: Element,
        out: &mut Emitter,
    ) -> Result<(), EngineError> {
        if port != 0 {
            return Err(EngineError::BadPort { operator: "groupby".into(), port, arity: 1 });
        }
        match elem {
            Element::Policy(seg) => {
                let start = std::time::Instant::now();
                self.stats.sps_in += 1;
                let newer = self.current.as_ref().is_none_or(|c| seg.ts >= c.ts);
                if newer {
                    self.current = Some(seg);
                }
                self.stats.charge(CostKind::Sp, start.elapsed());
            }
            Element::Tuple(tuple) => {
                let start = std::time::Instant::now();
                self.stats.tuples_in += 1;
                self.expire(tuple.ts, out);
                let policy: SharedPolicy = match &self.current {
                    Some(seg) => seg.policy_for(&tuple),
                    None => Arc::new(Policy::deny_all(Timestamp::ZERO)),
                };
                let group = self.group_of(&tuple);
                let idx = match self.asg_index(&group, policy.tuple_roles()) {
                    Some(i) => i,
                    None => {
                        // `group` is not needed again: move it into the ASG.
                        self.asgs.push(Asg {
                            group,
                            roles: policy.tuple_roles().clone(),
                            state: AggState::default(),
                        });
                        self.asgs.len() - 1
                    }
                };
                let null = Value::Null;
                self.asgs[idx].state.add(tuple.value(self.agg_attr).unwrap_or(&null));
                let ts = tuple.ts;
                self.buffer.push_back((tuple, policy));
                self.trim_rows(ts, out);
                self.emit_asg(idx, ts, out);
                self.stats.charge(CostKind::Tuple, start.elapsed());
            }
        }
        Ok(())
    }

    fn stats(&self) -> &OperatorStats {
        &self.stats
    }

    fn state_mem_bytes(&self) -> usize {
        let window: usize = self
            .buffer
            .iter()
            .map(|(t, _)| t.mem_bytes() + std::mem::size_of::<SharedPolicy>())
            .sum();
        let asgs: usize =
            self.asgs.iter().map(|a| std::mem::size_of::<Asg>() + a.roles.mem_bytes()).sum();
        window + asgs
    }

    /// Snapshot: counters, the input window, every attribute subgroup with
    /// its full aggregate state (the float sum via `to_bits` so restore is
    /// bit-exact; the Min/Max multiset in its `BTreeMap` order, which is
    /// already canonical), the current segment policy, and the last emitted
    /// policy. ASGs keep their `Vec` order: replay is deterministic, so
    /// order evolves identically in recovered and uninterrupted runs.
    fn snapshot(&self, buf: &mut Vec<u8>) {
        use bytes::BufMut;
        self.stats.encode_counters(buf);
        buf.put_u32(self.buffer.len() as u32);
        for (t, p) in &self.buffer {
            ckpt::encode_tuple_policy(t, p, buf);
        }
        buf.put_u32(self.asgs.len() as u32);
        for asg in &self.asgs {
            sp_core::wire::encode_value(&asg.group, buf);
            asg.roles.encode(buf);
            buf.put_u64(asg.state.count);
            buf.put_u64(asg.state.sum.to_bits());
            buf.put_u32(asg.state.values.len() as u32);
            for (v, n) in &asg.state.values {
                sp_core::wire::encode_value(&v.0, buf);
                buf.put_u64(*n as u64);
            }
        }
        ckpt::encode_opt_segment(self.current.as_ref(), buf);
        ckpt::encode_opt_policy(self.last_policy.as_ref(), buf);
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        use bytes::Buf;
        let mut slice = bytes;
        let buf = &mut slice;
        let mut apply = || -> Result<(), ckpt::CodecError> {
            self.stats.decode_counters(buf)?;
            ckpt::need(buf, 4, "groupby buffer length")?;
            let n = buf.get_u32() as usize;
            let mut buffer = VecDeque::with_capacity(n);
            for _ in 0..n {
                buffer.push_back(ckpt::decode_tuple_policy(buf)?);
            }
            self.buffer = buffer;
            ckpt::need(buf, 4, "groupby asg count")?;
            let n = buf.get_u32() as usize;
            let mut asgs = Vec::with_capacity(n);
            for _ in 0..n {
                let group = sp_core::wire::decode_value(buf).map_err(|e| e.to_string())?;
                let roles = RoleSet::decode(buf)?;
                ckpt::need(buf, 8 + 8 + 4, "groupby aggregate state")?;
                let count = buf.get_u64();
                let sum = f64::from_bits(buf.get_u64());
                let m = buf.get_u32() as usize;
                let mut values = BTreeMap::new();
                for _ in 0..m {
                    let v = sp_core::wire::decode_value(buf).map_err(|e| e.to_string())?;
                    ckpt::need(buf, 8, "groupby multiset count")?;
                    let c = buf.get_u64() as usize;
                    if c == 0 {
                        return Err("zero-count multiset entry".into());
                    }
                    if values.insert(OrdValue(v), c).is_some() {
                        return Err("duplicate multiset value".into());
                    }
                }
                asgs.push(Asg { group, roles, state: AggState { count, sum, values } });
            }
            self.asgs = asgs;
            self.current = ckpt::decode_opt_segment(buf)?;
            self.last_policy = ckpt::decode_opt_policy(buf)?;
            ckpt::done(buf)
        };
        apply().map_err(|e| EngineError::corrupt("groupby", e))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::operator::run_unary;
    use sp_core::{RoleId, StreamId, TupleId};

    fn tup(ts: u64, group: i64, v: i64) -> Element {
        Element::tuple(Tuple::new(
            StreamId(0),
            TupleId(ts),
            Timestamp(ts),
            vec![Value::Int(group), Value::Int(v)],
        ))
    }

    fn pol(roles: &[u32], ts: u64) -> Element {
        Element::policy(SegmentPolicy::uniform(Policy::tuple_level(
            roles.iter().map(|&r| RoleId(r)).collect(),
            Timestamp(ts),
        )))
    }

    /// Collects `(group, aggregate, roles)` triples in emission order.
    fn results(out: &[Element]) -> Vec<(Value, Value, Vec<u32>)> {
        let mut current = Vec::new();
        let mut res = Vec::new();
        for e in out {
            match e {
                Element::Policy(p) => {
                    current =
                        p.as_uniform().unwrap().tuple_roles().iter().map(|r| r.raw()).collect();
                }
                Element::Tuple(t) => res.push((
                    t.value(0).unwrap().clone(),
                    t.value(1).unwrap().clone(),
                    current.clone(),
                )),
            }
        }
        res
    }

    #[test]
    fn count_per_group() {
        let mut gb = GroupBy::new(Some(0), AggFunc::Count, 1, 1000);
        let out =
            run_unary(&mut gb, vec![pol(&[1], 0), tup(1, 7, 10), tup(2, 7, 20), tup(3, 8, 30)]);
        let r = results(&out);
        assert_eq!(r[0], (Value::Int(7), Value::Int(1), vec![1]));
        assert_eq!(r[1], (Value::Int(7), Value::Int(2), vec![1]));
        assert_eq!(r[2], (Value::Int(8), Value::Int(1), vec![1]));
    }

    #[test]
    fn asg_partitioning_by_policy() {
        // Same group value, two different policies → two ASGs whose
        // aggregates never mix.
        let mut gb = GroupBy::new(Some(0), AggFunc::Sum, 1, 1000);
        let out = run_unary(
            &mut gb,
            vec![
                pol(&[1], 0),
                tup(1, 7, 10),
                pol(&[2], 2),
                tup(3, 7, 5),
                pol(&[1], 4),
                tup(5, 7, 1),
            ],
        );
        let r = results(&out);
        assert_eq!(r[0], (Value::Int(7), Value::Float(10.0), vec![1]));
        assert_eq!(r[1], (Value::Int(7), Value::Float(5.0), vec![2]));
        // The third tuple re-joins ASG(roles={1}): 10 + 1.
        assert_eq!(r[2], (Value::Int(7), Value::Float(11.0), vec![1]));
    }

    #[test]
    fn avg_min_max() {
        for (f, expect) in [
            (AggFunc::Avg, Value::Float(15.0)),
            (AggFunc::Min, Value::Int(10)),
            (AggFunc::Max, Value::Int(20)),
        ] {
            let mut gb = GroupBy::new(None, f, 1, 1000);
            let out = run_unary(&mut gb, vec![pol(&[1], 0), tup(1, 0, 10), tup(2, 0, 20)]);
            let r = results(&out);
            assert_eq!(r.last().unwrap().1, expect, "{}", f.name());
        }
    }

    #[test]
    fn expiry_retracts_and_reemits() {
        let mut gb = GroupBy::new(None, AggFunc::Count, 1, 100);
        let out =
            run_unary(&mut gb, vec![pol(&[1], 0), tup(1, 0, 10), tup(50, 0, 20), tup(250, 0, 30)]);
        let r = results(&out);
        // counts: 1, 2, then both expired and re-emitted count after
        // retraction of remaining... the last arrival first expires the two
        // old tuples (emitting count 1 after first retraction, then the ASG
        // empties silently), then emits count 1 for itself.
        assert_eq!(r[0].1, Value::Int(1));
        assert_eq!(r[1].1, Value::Int(2));
        let last = r.last().unwrap();
        assert_eq!(last.1, Value::Int(1));
    }

    #[test]
    fn min_max_retraction_uses_multiset() {
        let mut gb = GroupBy::new(None, AggFunc::Max, 1, 100);
        let out = run_unary(
            &mut gb,
            vec![
                pol(&[1], 0),
                tup(1, 0, 99),
                tup(50, 0, 10),
                // 99 expires; max must fall back to 10, not stay 99.
                tup(140, 0, 5),
            ],
        );
        let r = results(&out);
        let maxes: Vec<&Value> = r.iter().map(|(_, v, _)| v).collect();
        assert_eq!(maxes.last().unwrap(), &&Value::Int(10));
    }

    #[test]
    fn deny_all_subgroup_is_invisible() {
        let mut gb = GroupBy::new(None, AggFunc::Count, 1, 1000);
        let out = run_unary(&mut gb, vec![tup(1, 0, 10)]);
        assert!(results(&out).is_empty());
        assert_eq!(gb.stats().tuples_shielded, 1);
        assert_eq!(gb.name(), "groupby");
        assert!(gb.state_mem_bytes() > 0);
    }

    #[test]
    fn row_window_aggregates_last_n() {
        use crate::window::WindowSpec;
        let mut gb = GroupBy::new(None, AggFunc::Sum, 1, 0).with_window(WindowSpec::Rows(2));
        let out =
            run_unary(&mut gb, vec![pol(&[1], 0), tup(1, 0, 10), tup(2, 0, 20), tup(3, 0, 30)]);
        let r = results(&out);
        // Sums: 10, 30, then insertion of 30 evicts 10 first → 20+30=50.
        let sums: Vec<&Value> = r.iter().map(|(_, v, _)| v).collect();
        assert_eq!(sums.last().unwrap(), &&Value::Float(50.0));
    }

    #[test]
    fn global_aggregate_when_no_group_attr() {
        let mut gb = GroupBy::new(None, AggFunc::Sum, 1, 1000);
        let out = run_unary(&mut gb, vec![pol(&[1], 0), tup(1, 3, 10), tup(2, 4, 20)]);
        let r = results(&out);
        assert_eq!(r.last().unwrap().1, Value::Float(30.0));
        assert!(r.iter().all(|(g, _, _)| g.is_null()));
    }
}
