//! Security-aware set operations — the Θ ∈ {∪, ∩} members of the binary
//! operator family that Table II's rules quantify over (the paper omits
//! their definitions "to keep the presentation concise", footnote 5; these
//! follow the same policy semantics as the other operators).
//!
//! * [`Union`] — bag union of two streams with identical schemas. Each
//!   forwarded tuple stays governed by *its own side's* policy: the
//!   operator tracks the current policy per input port and re-announces a
//!   port's policy whenever the emitting side changes, so the merged
//!   output stream remains correctly punctuated.
//! * [`SAIntersect`] — windowed intersection with SAJoin-style policy
//!   compatibility: an arriving tuple is emitted iff a value-equal tuple
//!   with a compatible policy (`P_t ∩ P_u ≠ ∅`) exists in the opposite
//!   window; the result carries the intersection of the two policies, the
//!   same combination rule as the join.

use std::collections::VecDeque;
use std::sync::Arc;

use sp_core::{Policy, SharedPolicy, Timestamp, Tuple};

use crate::checkpoint as ckpt;
use crate::element::{Element, SegmentPolicy};
use crate::error::EngineError;
use crate::operator::{Emitter, Operator};
use crate::stats::{CostKind, OperatorStats};
use crate::window::WindowSpec;

/// Security-aware bag union.
#[derive(Debug, Default)]
pub struct Union {
    current: [Option<Arc<SegmentPolicy>>; 2],
    /// Which port's policy was last announced downstream (and which
    /// segment policy it was).
    announced: Option<(usize, Arc<SegmentPolicy>)>,
    /// Timestamp of the last announcement: re-announcements of an older
    /// side's policy are restamped so the merged output stream's
    /// punctuations stay timestamp-ordered (downstream operators discard
    /// stale-looking punctuations, §V-A).
    last_announced_ts: Timestamp,
    stats: OperatorStats,
}

impl Union {
    /// A new union operator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Operator for Union {
    fn name(&self) -> &str {
        "union"
    }

    fn arity(&self) -> usize {
        2
    }

    fn process(
        &mut self,
        port: usize,
        elem: Element,
        out: &mut Emitter,
    ) -> Result<(), EngineError> {
        if port >= 2 {
            return Err(EngineError::BadPort { operator: "union".into(), port, arity: 2 });
        }
        match elem {
            Element::Policy(seg) => {
                let start = std::time::Instant::now();
                self.stats.sps_in += 1;
                let newer = self.current[port].as_ref().is_none_or(|cur| seg.ts >= cur.ts);
                if newer {
                    // Invalidate the announcement if it was this port's.
                    if matches!(&self.announced, Some((p, _)) if *p == port) {
                        self.announced = None;
                    }
                    self.current[port] = Some(seg);
                }
                self.stats.charge(CostKind::Sp, start.elapsed());
            }
            Element::Tuple(tuple) => {
                let start = std::time::Instant::now();
                self.stats.tuples_in += 1;
                let needs_announce = match (&self.announced, &self.current[port]) {
                    (Some((p, seg)), Some(cur)) => *p != port || !Arc::ptr_eq(seg, cur),
                    (None, Some(_)) => true,
                    // No policy on this port yet: forward the tuple bare;
                    // downstream denial-by-default applies. Announce a
                    // deny policy so a previous other-port grant cannot
                    // leak onto this side's tuples.
                    (_, None) => !matches!(&self.announced, Some((p, _)) if *p == port),
                };
                if needs_announce {
                    let seg = self.current[port]
                        .clone()
                        .unwrap_or_else(|| Arc::new(SegmentPolicy::deny(tuple.ts)));
                    // Keep the merged output's punctuations ordered: a
                    // re-announced policy may carry an older timestamp
                    // than the other side's last one.
                    let announce_ts = seg.ts.max(self.last_announced_ts);
                    let emitted = if announce_ts == seg.ts {
                        seg.clone()
                    } else {
                        Arc::new(seg.with_ts(announce_ts))
                    };
                    self.last_announced_ts = announce_ts;
                    self.stats.sps_out += 1;
                    out.push(Element::Policy(emitted));
                    self.announced = Some((port, seg));
                }
                self.stats.tuples_out += 1;
                out.push(Element::Tuple(tuple));
                self.stats.charge(CostKind::Tuple, start.elapsed());
            }
        }
        Ok(())
    }

    fn stats(&self) -> &OperatorStats {
        &self.stats
    }

    fn state_mem_bytes(&self) -> usize {
        self.current.iter().flatten().map(|p| p.mem_bytes()).sum()
    }

    /// Snapshot: counters, per-port current policies, the last downstream
    /// announcement (port + policy), and the announcement timestamp floor.
    fn snapshot(&self, buf: &mut Vec<u8>) {
        use bytes::BufMut;
        self.stats.encode_counters(buf);
        ckpt::encode_opt_segment(self.current[0].as_ref(), buf);
        ckpt::encode_opt_segment(self.current[1].as_ref(), buf);
        match &self.announced {
            Some((port, seg)) => {
                buf.put_u8(1);
                buf.put_u8(*port as u8);
                ckpt::encode_segment_policy(seg, buf);
            }
            None => buf.put_u8(0),
        }
        buf.put_u64(self.last_announced_ts.0);
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        use bytes::Buf;
        let mut slice = bytes;
        let buf = &mut slice;
        let mut apply = || -> Result<(), ckpt::CodecError> {
            self.stats.decode_counters(buf)?;
            self.current[0] = ckpt::decode_opt_segment(buf)?;
            self.current[1] = ckpt::decode_opt_segment(buf)?;
            ckpt::need(buf, 1, "union announced flag")?;
            self.announced = match buf.get_u8() {
                0 => None,
                1 => {
                    ckpt::need(buf, 1, "union announced port")?;
                    let port = usize::from(buf.get_u8());
                    if port >= 2 {
                        return Err(format!("union announced port {port} out of range"));
                    }
                    let seg = ckpt::decode_segment_policy(buf)?;
                    Some((port, Arc::new(seg)))
                }
                b => return Err(format!("bad union announced flag {b}")),
            };
            ckpt::need(buf, 8, "union announcement timestamp")?;
            self.last_announced_ts = Timestamp(buf.get_u64());
            ckpt::done(buf)
        };
        apply().map_err(|e| EngineError::corrupt("union", e))?;
        // The announcement-validity check in `process` compares by pointer;
        // re-share the current policy's Arc when the decoded announcement
        // matches it by value so recovery does not force a spurious
        // re-announcement.
        if let Some((port, seg)) = &mut self.announced {
            if let Some(cur) = &self.current[*port] {
                if **cur == **seg {
                    *seg = Arc::clone(cur);
                }
            }
        }
        Ok(())
    }
}

/// Security-aware windowed intersection (value-equality semi-match).
#[derive(Debug)]
pub struct SAIntersect {
    window: WindowSpec,
    windows: [VecDeque<(Arc<Tuple>, SharedPolicy)>; 2],
    current: [Option<Arc<SegmentPolicy>>; 2],
    last_policy: Option<Policy>,
    stats: OperatorStats,
}

impl SAIntersect {
    /// An intersection over sliding windows of `window_ms` per side.
    #[must_use]
    pub fn new(window_ms: u64) -> Self {
        Self {
            window: WindowSpec::Time(window_ms),
            windows: [VecDeque::new(), VecDeque::new()],
            current: [None, None],
            last_policy: None,
            stats: OperatorStats::new(),
        }
    }

    /// Replaces the window specification (e.g. a `ROWS n` count window).
    #[must_use]
    pub fn with_window(mut self, window: WindowSpec) -> Self {
        self.window = window;
        self
    }

    fn invalidate(&mut self, side: usize, now: Timestamp) {
        let Some(horizon) = self.window.horizon(now) else { return };
        let start = std::time::Instant::now();
        while self.windows[side].front().is_some_and(|(t, _)| t.ts <= horizon) {
            self.windows[side].pop_front();
        }
        self.stats.charge(CostKind::TupleMaintenance, start.elapsed());
    }
}

impl Operator for SAIntersect {
    fn name(&self) -> &str {
        "intersect"
    }

    fn arity(&self) -> usize {
        2
    }

    fn process(
        &mut self,
        port: usize,
        elem: Element,
        out: &mut Emitter,
    ) -> Result<(), EngineError> {
        if port >= 2 {
            return Err(EngineError::BadPort { operator: "intersect".into(), port, arity: 2 });
        }
        match elem {
            Element::Policy(seg) => {
                let start = std::time::Instant::now();
                self.stats.sps_in += 1;
                let newer = self.current[port].as_ref().is_none_or(|cur| seg.ts >= cur.ts);
                if newer {
                    self.current[port] = Some(seg);
                }
                self.stats.charge(CostKind::SpMaintenance, start.elapsed());
            }
            Element::Tuple(tuple) => {
                self.stats.tuples_in += 1;
                self.invalidate(1 - port, tuple.ts);
                let policy: SharedPolicy = match &self.current[port] {
                    Some(seg) => seg.policy_for(&tuple),
                    None => Arc::new(Policy::deny_all(Timestamp::ZERO)),
                };
                // Probe the opposite window for value-equal partners. The
                // governing policy of an intersection result is the union
                // over all partners of the pairwise intersections — "roles
                // that may see this tuple AND at least one matching
                // partner". (Stopping at the first partner would tie the
                // result's visibility to window order and break the
                // Table II shield push-down equivalence.) Probing before
                // the own-side insert is equivalent — a tuple never probes
                // its own window — and lets the policy Arc move into the
                // window instead of being cloned.
                let start = std::time::Instant::now();
                let mut combined = sp_core::RoleSet::new();
                for (u, up) in &self.windows[1 - port] {
                    if u.values() == tuple.values() {
                        let mut pair = policy.tuple_roles().clone();
                        pair.intersect_with(up.tuple_roles());
                        combined.union_with(&pair);
                    }
                }
                let probe_cost = start.elapsed();
                // Insert into own window (count windows trim here).
                let maint = std::time::Instant::now();
                self.windows[port].push_back((tuple.clone(), policy));
                if let Some(capacity) = self.window.capacity() {
                    while self.windows[port].len() > capacity {
                        self.windows[port].pop_front();
                    }
                }
                self.stats.charge(CostKind::TupleMaintenance, maint.elapsed());
                let start = std::time::Instant::now();
                if !combined.is_empty() {
                    let out_policy = Policy::tuple_level(combined, tuple.ts);
                    let repeated = self
                        .last_policy
                        .as_ref()
                        .is_some_and(|prev| prev.same_authorizations(&out_policy));
                    if !repeated {
                        self.stats.sps_out += 1;
                        out.push(Element::policy(SegmentPolicy::uniform(out_policy.clone())));
                    }
                    self.last_policy = Some(out_policy);
                    self.stats.tuples_out += 1;
                    out.push(Element::Tuple(tuple));
                } else {
                    self.stats.tuples_shielded += 1;
                }
                self.stats.charge(CostKind::Join, probe_cost + start.elapsed());
            }
        }
        Ok(())
    }

    fn stats(&self) -> &OperatorStats {
        &self.stats
    }

    fn state_mem_bytes(&self) -> usize {
        self.windows
            .iter()
            .flatten()
            .map(|(t, _)| t.mem_bytes() + std::mem::size_of::<SharedPolicy>())
            .sum()
    }

    /// Snapshot: counters, both windows (tuple + governing policy each),
    /// per-port current policies, and the last emitted result policy.
    fn snapshot(&self, buf: &mut Vec<u8>) {
        use bytes::BufMut;
        self.stats.encode_counters(buf);
        for side in &self.windows {
            buf.put_u32(side.len() as u32);
            for (t, p) in side {
                ckpt::encode_tuple_policy(t, p, buf);
            }
        }
        ckpt::encode_opt_segment(self.current[0].as_ref(), buf);
        ckpt::encode_opt_segment(self.current[1].as_ref(), buf);
        ckpt::encode_opt_policy(self.last_policy.as_ref(), buf);
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        use bytes::Buf;
        let mut slice = bytes;
        let buf = &mut slice;
        let mut apply = || -> Result<(), ckpt::CodecError> {
            self.stats.decode_counters(buf)?;
            for side in &mut self.windows {
                ckpt::need(buf, 4, "intersect window length")?;
                let n = buf.get_u32() as usize;
                let mut w = VecDeque::with_capacity(n);
                for _ in 0..n {
                    w.push_back(ckpt::decode_tuple_policy(buf)?);
                }
                *side = w;
            }
            self.current[0] = ckpt::decode_opt_segment(buf)?;
            self.current[1] = ckpt::decode_opt_segment(buf)?;
            self.last_policy = ckpt::decode_opt_policy(buf)?;
            ckpt::done(buf)
        };
        apply().map_err(|e| EngineError::corrupt("intersect", e))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use sp_core::{RoleId, StreamId, TupleId, Value};

    fn tup(sid: u32, tid: u64, ts: u64, v: i64) -> Element {
        Element::tuple(Tuple::new(StreamId(sid), TupleId(tid), Timestamp(ts), vec![Value::Int(v)]))
    }

    fn pol(roles: &[u32], ts: u64) -> Element {
        Element::policy(SegmentPolicy::uniform(Policy::tuple_level(
            roles.iter().map(|&r| RoleId(r)).collect(),
            Timestamp(ts),
        )))
    }

    fn run(op: &mut dyn Operator, feed: Vec<(usize, Element)>) -> Vec<Element> {
        let mut emitter = Emitter::new();
        let mut out = Vec::new();
        for (port, e) in feed {
            op.process(port, e, &mut emitter).unwrap();
            out.extend(emitter.drain());
        }
        out
    }

    /// (value, governing roles) pairs in emission order.
    fn governed(out: &[Element]) -> Vec<(i64, Vec<u32>)> {
        let mut current: Vec<u32> = Vec::new();
        let mut res = Vec::new();
        for e in out {
            match e {
                Element::Policy(p) => {
                    current = p
                        .as_uniform()
                        .map(|q| q.tuple_roles().iter().map(|r| r.raw()).collect())
                        .unwrap_or_default();
                }
                Element::Tuple(t) => {
                    res.push((t.value(0).unwrap().as_i64().unwrap(), current.clone()));
                }
            }
        }
        res
    }

    #[test]
    fn union_keeps_per_side_policies() {
        let mut u = Union::new();
        let out = run(
            &mut u,
            vec![
                (0, pol(&[1], 1)),
                (1, pol(&[2], 2)),
                (0, tup(1, 1, 3, 10)),
                (1, tup(2, 1, 4, 20)),
                (0, tup(1, 2, 5, 11)),
            ],
        );
        assert_eq!(
            governed(&out),
            vec![(10, vec![1]), (20, vec![2]), (11, vec![1])],
            "each side's tuples stay under their own policy"
        );
        // Policy re-announced at each side switch: 3 policy elements.
        assert_eq!(out.iter().filter(|e| e.as_policy().is_some()).count(), 3);
    }

    #[test]
    fn union_consecutive_same_side_share_one_announcement() {
        let mut u = Union::new();
        let out = run(
            &mut u,
            vec![
                (0, pol(&[1], 1)),
                (0, tup(1, 1, 2, 10)),
                (0, tup(1, 2, 3, 11)),
                (0, tup(1, 3, 4, 12)),
            ],
        );
        assert_eq!(out.iter().filter(|e| e.as_policy().is_some()).count(), 1);
        assert_eq!(governed(&out).len(), 3);
    }

    #[test]
    fn union_unpunctuated_side_is_denied_not_leaked() {
        let mut u = Union::new();
        let out = run(
            &mut u,
            vec![
                (0, pol(&[1], 1)),
                (0, tup(1, 1, 2, 10)),
                // Port 1 never announced a policy: its tuple must not ride
                // under port 0's grant.
                (1, tup(2, 1, 3, 20)),
            ],
        );
        let g = governed(&out);
        assert_eq!(g[0], (10, vec![1]));
        assert_eq!(g[1], (20, vec![]), "denied by default");
    }

    #[test]
    fn union_policy_update_reannounces() {
        let mut u = Union::new();
        let out = run(
            &mut u,
            vec![
                (0, pol(&[1], 1)),
                (0, tup(1, 1, 2, 10)),
                (0, pol(&[2], 3)),
                (0, tup(1, 2, 4, 11)),
            ],
        );
        assert_eq!(governed(&out), vec![(10, vec![1]), (11, vec![2])]);
    }

    #[test]
    fn intersect_requires_value_and_policy_match() {
        let mut i = SAIntersect::new(1000);
        let out = run(
            &mut i,
            vec![
                (0, pol(&[1], 1)),
                (0, tup(1, 1, 2, 42)), // no partner yet
                (1, pol(&[1, 2], 3)),
                (1, tup(2, 1, 4, 42)), // matches left 42, compatible
                (1, tup(2, 2, 5, 99)), // no value match
            ],
        );
        let g = governed(&out);
        assert_eq!(g, vec![(42, vec![1])], "intersection of {{1}} and {{1,2}}");
        assert_eq!(i.stats().tuples_shielded, 2);
    }

    #[test]
    fn intersect_rejects_incompatible_policies() {
        let mut i = SAIntersect::new(1000);
        let out = run(
            &mut i,
            vec![
                (0, pol(&[1], 1)),
                (0, tup(1, 1, 2, 42)),
                (1, pol(&[2], 3)),
                (1, tup(2, 1, 4, 42)),
            ],
        );
        assert!(governed(&out).is_empty());
    }

    #[test]
    fn intersect_row_window() {
        use crate::window::WindowSpec;
        let mut i = SAIntersect::new(0).with_window(WindowSpec::Rows(1));
        let out = run(
            &mut i,
            vec![
                (0, pol(&[1], 1)),
                (0, tup(1, 1, 2, 42)),
                (0, tup(1, 2, 3, 99)), // evicts 42 from the left window
                (1, pol(&[1], 4)),
                (1, tup(2, 1, 5, 42)), // partner evicted: no result
                (1, tup(2, 2, 6, 99)), // matches
            ],
        );
        assert_eq!(governed(&out), vec![(99, vec![1])]);
    }

    #[test]
    fn intersect_window_expiry() {
        let mut i = SAIntersect::new(100);
        let out = run(
            &mut i,
            vec![
                (0, pol(&[1], 1)),
                (0, tup(1, 1, 2, 42)),
                (1, pol(&[1], 3)),
                (1, tup(2, 1, 500, 42)), // left 42 expired
            ],
        );
        assert!(governed(&out).is_empty());
        assert_eq!(i.name(), "intersect");
        assert!(i.state_mem_bytes() > 0);
        assert_eq!(i.arity(), 2);
    }
}
