//! The security-aware selection operator `σ_c(T)` (Table I).
//!
//! Selection drops tuples failing the condition and **delays sp
//! propagation** until at least one tuple governed by the policy passes; if
//! every tuple of a segment is filtered out, the segment's punctuations are
//! discarded too (§IV-B) — downstream operators never pay for policies with
//! no surviving tuples.
//!
//! [`Select::eager`] builds the selection *without* the delay: every
//! policy is forwarded immediately, making the operator
//! policy-transparent. Eager selections trade the §IV-B traffic saving
//! for shard-compatibility — they may sit anywhere in a key-partitioned
//! plan, while a delaying selection must reach its sink through
//! policy-transparent operators only (see
//! [`Operator::policy_transparent`]).

use std::sync::Arc;

use crate::element::{Element, SegmentPolicy};
use crate::error::EngineError;
use crate::expr::Expr;
use crate::operator::{Emitter, Operator};
use crate::stats::{CostKind, OperatorStats};

/// The selection operator.
#[derive(Debug)]
pub struct Select {
    condition: Expr,
    /// Forward policies immediately instead of delaying (§IV-B off).
    eager: bool,
    /// The segment policy awaiting its first passing tuple.
    pending_policy: Option<Arc<SegmentPolicy>>,
    stats: OperatorStats,
}

impl Select {
    /// A selection with the given predicate, practising delayed sp
    /// propagation (§IV-B).
    #[must_use]
    pub fn new(condition: Expr) -> Self {
        Self { condition, eager: false, pending_policy: None, stats: OperatorStats::new() }
    }

    /// A selection that forwards every policy immediately instead of
    /// delaying it until the segment's first survivor — see the module
    /// docs for the tradeoff.
    #[must_use]
    pub fn eager(condition: Expr) -> Self {
        Self { condition, eager: true, pending_policy: None, stats: OperatorStats::new() }
    }

    /// Whether this selection forwards policies eagerly.
    #[must_use]
    pub fn is_eager(&self) -> bool {
        self.eager
    }

    /// The selection condition.
    #[must_use]
    pub fn condition(&self) -> &Expr {
        &self.condition
    }

    /// Buffers one arriving segment policy (delayed propagation core),
    /// or forwards it immediately in eager mode.
    fn absorb_policy(&mut self, seg: Arc<SegmentPolicy>, out: &mut Emitter) {
        self.stats.sps_in += 1;
        if self.eager {
            self.stats.sps_out += 1;
            out.push(Element::Policy(seg));
            return;
        }
        // The previous pending policy (if any) saw no passing tuple:
        // it is discarded, exactly the paper's delayed propagation.
        self.pending_policy = Some(seg);
    }

    /// Filters one tuple, flushing the pending policy before the first
    /// survivor of its segment.
    fn filter_tuple(&mut self, tuple: Arc<sp_core::Tuple>, out: &mut Emitter) {
        self.stats.tuples_in += 1;
        if self.condition.test(&tuple) {
            if let Some(policy) = self.pending_policy.take() {
                self.stats.sps_out += 1;
                out.push(Element::Policy(policy));
            }
            self.stats.tuples_out += 1;
            out.push(Element::Tuple(tuple));
        }
    }
}

impl Operator for Select {
    fn name(&self) -> &str {
        "select"
    }

    fn process(
        &mut self,
        port: usize,
        elem: Element,
        out: &mut Emitter,
    ) -> Result<(), EngineError> {
        if port != 0 {
            return Err(EngineError::BadPort { operator: "select".into(), port, arity: 1 });
        }
        match elem {
            Element::Policy(seg) => {
                let start = std::time::Instant::now();
                self.absorb_policy(seg, out);
                self.stats.charge(CostKind::Sp, start.elapsed());
            }
            Element::Tuple(tuple) => {
                let start = std::time::Instant::now();
                self.filter_tuple(tuple, out);
                self.stats.charge(CostKind::Tuple, start.elapsed());
            }
        }
        Ok(())
    }

    /// Vectorized fast path: a whole run is filtered in one tight loop
    /// with a single clock pair, instead of two clock reads per element.
    fn process_batch(
        &mut self,
        port: usize,
        batch: crate::batch::ElementBatch,
        out: &mut Emitter,
    ) -> Result<(), EngineError> {
        if port != 0 {
            return Err(EngineError::BadPort { operator: "select".into(), port, arity: 1 });
        }
        let start = std::time::Instant::now();
        let cost = if batch.is_control() { CostKind::Sp } else { CostKind::Tuple };
        for elem in batch {
            match elem {
                Element::Tuple(tuple) => self.filter_tuple(tuple, out),
                Element::Policy(seg) => self.absorb_policy(seg, out),
            }
        }
        self.stats.charge(cost, start.elapsed());
        Ok(())
    }

    fn stats(&self) -> &OperatorStats {
        &self.stats
    }

    /// Selection is per-tuple: safe to replicate across shards. Its
    /// delayed sp propagation is tuple-dependent, though, so the sharded
    /// builder additionally requires a delaying selection to reach its
    /// sink through policy-transparent operators only (see
    /// [`Operator::delays_sps`]). Eager selections carry no such
    /// restriction.
    fn shard_safe(&self) -> bool {
        true
    }

    /// The pending policy is flushed by the first *surviving* tuple — a
    /// shard-local event under key partitioning. Eager selections never
    /// hold a pending policy.
    fn delays_sps(&self) -> bool {
        !self.eager
    }

    /// An eager selection forwards every policy immediately, exactly
    /// once, unchanged.
    fn policy_transparent(&self) -> bool {
        self.eager
    }

    /// Suffix layout: one pending optional segment. Canonically flushed
    /// when any shard flushed.
    fn merge_shard_state(&self, parts: &[&[u8]]) -> Result<Vec<u8>, EngineError> {
        crate::checkpoint::merge_delayed_suffix("select", parts, 0)
    }

    fn state_mem_bytes(&self) -> usize {
        self.pending_policy.as_ref().map_or(0, |p| p.mem_bytes())
    }

    /// Snapshot: counters plus the policy awaiting its first passing tuple.
    fn snapshot(&self, buf: &mut Vec<u8>) {
        self.stats.encode_counters(buf);
        crate::checkpoint::encode_opt_segment(self.pending_policy.as_ref(), buf);
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        let mut slice = bytes;
        let buf = &mut slice;
        let mut apply = || -> Result<(), crate::checkpoint::CodecError> {
            self.stats.decode_counters(buf)?;
            self.pending_policy = crate::checkpoint::decode_opt_segment(buf)?;
            crate::checkpoint::done(buf)
        };
        apply().map_err(|e| EngineError::corrupt("select", e))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::expr::CmpOp;
    use crate::operator::run_unary;
    use sp_core::{Policy, RoleSet, StreamId, Timestamp, Tuple, TupleId, Value};

    fn tup(tid: u64, v: i64) -> Element {
        Element::tuple(Tuple::new(StreamId(0), TupleId(tid), Timestamp(tid), vec![Value::Int(v)]))
    }

    fn pol(ts: u64) -> Element {
        Element::policy(SegmentPolicy::uniform(Policy::tuple_level(
            RoleSet::from([1]),
            Timestamp(ts),
        )))
    }

    fn gt(limit: i64) -> Expr {
        Expr::cmp(CmpOp::Gt, Expr::Attr(0), Expr::Const(Value::Int(limit)))
    }

    #[test]
    fn filters_tuples() {
        let mut sel = Select::new(gt(5));
        let out = run_unary(&mut sel, vec![tup(1, 3), tup(2, 7), tup(3, 9)]);
        let ids: Vec<u64> = out.iter().filter_map(|e| e.as_tuple()).map(|t| t.tid.raw()).collect();
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(sel.stats().tuples_in, 3);
        assert_eq!(sel.stats().tuples_out, 2);
    }

    #[test]
    fn delays_sp_until_first_passing_tuple() {
        let mut sel = Select::new(gt(5));
        let out = run_unary(&mut sel, vec![pol(0), tup(1, 3), tup(2, 7)]);
        // Policy must appear immediately before tuple 2, not before tuple 1.
        assert_eq!(out.len(), 2);
        assert!(out[0].as_policy().is_some());
        assert_eq!(out[1].as_tuple().unwrap().tid.raw(), 2);
    }

    #[test]
    fn discards_sp_when_whole_segment_filtered() {
        let mut sel = Select::new(gt(5));
        let out = run_unary(&mut sel, vec![pol(0), tup(1, 1), pol(10), tup(2, 9)]);
        // Only the second policy survives.
        let policies: Vec<_> = out.iter().filter_map(|e| e.as_policy()).collect();
        assert_eq!(policies.len(), 1);
        assert_eq!(policies[0].ts, Timestamp(10));
        assert_eq!(sel.stats().sps_in, 2);
        assert_eq!(sel.stats().sps_out, 1);
    }

    #[test]
    fn eager_select_forwards_policies_immediately() {
        let mut sel = Select::eager(gt(5));
        assert!(sel.is_eager());
        assert!(!sel.delays_sps());
        assert!(sel.policy_transparent());
        let out = run_unary(&mut sel, vec![pol(0), tup(1, 3), pol(10), tup(2, 7)]);
        // Both policies pass through at their arrival positions, even
        // though segment 0 has no surviving tuple.
        assert!(out[0].as_policy().is_some());
        assert!(out[1].as_policy().is_some());
        assert_eq!(out[2].as_tuple().unwrap().tid.raw(), 2);
        assert_eq!(sel.stats().sps_in, 2);
        assert_eq!(sel.stats().sps_out, 2);
        assert_eq!(sel.state_mem_bytes(), 0, "eager mode never buffers a policy");
    }

    #[test]
    fn delaying_select_is_not_policy_transparent() {
        let sel = Select::new(gt(5));
        assert!(sel.delays_sps());
        assert!(!sel.policy_transparent());
        assert!(!sel.is_eager());
    }

    #[test]
    fn policy_emitted_once_per_segment() {
        let mut sel = Select::new(gt(0));
        let out = run_unary(&mut sel, vec![pol(0), tup(1, 1), tup(2, 2)]);
        assert_eq!(out.iter().filter(|e| e.as_policy().is_some()).count(), 1);
        assert_eq!(sel.name(), "select");
        assert_eq!(sel.state_mem_bytes(), 0, "pending policy was flushed");
    }
}
