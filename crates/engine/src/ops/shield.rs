//! The Security Shield (SS) operator — `ψ_p(T)` of the security-aware
//! algebra (Table I, §V-A).
//!
//! SS is a stateful filter. Its state is a *security predicate*: the set of
//! roles of the queries it protects. Arriving segment policies are checked
//! against that predicate; tuples governed by a non-intersecting policy are
//! discarded together with their punctuations, enforcing denial-by-default.
//!
//! Faithful cost behaviour (§VI-A): a tuple under an already-checked policy
//! is processed in O(1) — the verdict is cached per segment — while each
//! arriving punctuation pays a scan of the SS state. The more tuples share
//! one sp, the cheaper SS becomes per tuple (Fig. 8a). Two predicate-
//! evaluation modes are provided: `Bitmap` (word-parallel role-set
//! intersection — the paper's suggested bitmap encoding) and `Scan` (role-
//! by-role probing, the unindexed baseline whose cost grows linearly with
//! the SS state size, Fig. 8b).

use std::sync::Arc;

use sp_core::{RoleSet, SharedPolicy};

use crate::checkpoint as ckpt;
use crate::element::{Element, SegmentPolicy};
use crate::error::EngineError;
use crate::operator::{Emitter, Operator};
use crate::stats::{CostKind, OperatorStats};
use crate::telemetry::{
    AuditEvent, FlightRecorder, LagTracker, SpanRecord, SpanRecorder, NO_SP, NO_TUPLE,
};

/// Enforcement granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// Drop whole tuples whose policy does not authorize the predicate.
    #[default]
    Tuple,
    /// Pass tuples visible through attribute-scoped grants, masking (i.e.
    /// nulling) the attributes the predicate may not read.
    Attribute,
}

/// How the security predicate is evaluated against a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchMode {
    /// Word-parallel bitmap intersection (compact encoding, §I-C).
    #[default]
    Bitmap,
    /// Role-by-role membership probing — models an SS without a role
    /// index; cost grows with the SS-state size (cf. Fig. 8b).
    Scan,
}

/// Cached verdict for the current segment.
#[derive(Debug, Clone)]
enum Verdict {
    /// No policy seen yet: denial-by-default.
    Deny,
    /// Uniform segment, predicate authorized. In attribute granularity the
    /// policy is kept to derive per-arity attribute masks.
    Pass { mask_from: Option<SharedPolicy> },
    /// Uniform segment, predicate not authorized.
    Fail,
    /// Scoped segment: resolve per tuple.
    PerTuple,
}

/// Cached scoped-segment decision: the resolved policy allocation, the
/// release mask (if attribute granularity), and the authorizing role.
type TupleVerdictCache = (SharedPolicy, Option<Arc<[usize]>>, u32);

/// The Security Shield operator.
#[derive(Debug)]
pub struct SecurityShield {
    roles: RoleSet,
    granularity: Granularity,
    mode: MatchMode,
    /// Per-element wall-clock accounting (two clock reads per element).
    /// Needed by the operator-cost experiments; disable for fair
    /// end-to-end throughput comparisons.
    timed: bool,
    current: Option<Arc<SegmentPolicy>>,
    verdict: Verdict,
    /// Lazily emitted before the first passing tuple of the segment, so
    /// that discarded segments' punctuations are discarded too.
    pending_policy: Option<Arc<SegmentPolicy>>,
    /// `(arity, mask)` cache for attribute-granularity uniform segments.
    mask_cache: Option<(usize, Arc<[usize]>)>,
    /// Per-tuple verdict cache for scoped segments: consecutive tuples of
    /// one segment resolve to the *same shared policy allocation*, so a
    /// pointer compare reuses the previous decision ("once an sp has been
    /// processed, the decision applies to all tuples that follow it").
    /// Keeping the `Arc` alive makes the identity check sound. The third
    /// component is the authorizing role for the audit trail.
    tuple_cache: Option<TupleVerdictCache>,
    /// Authorizing role of the current uniform segment (for audit
    /// records); `u32::MAX` when denying or per-tuple.
    seg_role: u32,
    /// Security flight recorder (disabled unless telemetry is on).
    recorder: FlightRecorder,
    /// Causal span recorder (disabled unless spans are on): one span per
    /// policy absorption, first release, and first suppression.
    spans: SpanRecorder,
    /// Enforcement-lag histograms (armed together with `spans`).
    lag: LagTracker,
    stats: OperatorStats,
}

impl SecurityShield {
    /// An SS with the given predicate roles (tuple granularity, bitmap
    /// matching).
    #[must_use]
    pub fn new(roles: RoleSet) -> Self {
        Self {
            roles,
            granularity: Granularity::Tuple,
            mode: MatchMode::Bitmap,
            timed: true,
            current: None,
            verdict: Verdict::Deny,
            pending_policy: None,
            mask_cache: None,
            tuple_cache: None,
            seg_role: u32::MAX,
            recorder: FlightRecorder::disabled(),
            spans: SpanRecorder::disabled(),
            lag: LagTracker::new(),
            stats: OperatorStats::new(),
        }
    }

    /// Sets the enforcement granularity.
    #[must_use]
    pub fn with_granularity(mut self, g: Granularity) -> Self {
        self.granularity = g;
        self
    }

    /// Sets the predicate evaluation mode.
    #[must_use]
    pub fn with_mode(mut self, m: MatchMode) -> Self {
        self.mode = m;
        self
    }

    /// Disables per-element wall-clock accounting (throughput runs).
    #[must_use]
    pub fn without_timing(mut self) -> Self {
        self.timed = false;
        self
    }

    /// The predicate roles (SS state).
    #[must_use]
    pub fn predicate(&self) -> &RoleSet {
        &self.roles
    }

    /// Splitting rule (Rule 1): splits this SS into one shield per
    /// predicate role. `ψ_{p1∧…∧pn} ≡ ψ_{p1}(…(ψ_{pn}))` — for
    /// disjunctive role predicates the useful split is by role subsets;
    /// this helper splits into singletons.
    #[must_use]
    pub fn split(&self) -> Vec<SecurityShield> {
        self.roles
            .iter()
            .map(|r| {
                SecurityShield::new(RoleSet::single(r))
                    .with_granularity(self.granularity)
                    .with_mode(self.mode)
            })
            .collect()
    }

    /// Merging rule (Rule 1, reverse): one SS whose predicate is the union
    /// of the given shields' predicates.
    #[must_use]
    pub fn merge(shields: &[SecurityShield]) -> SecurityShield {
        let mut roles = RoleSet::new();
        for s in shields {
            roles.union_with(&s.roles);
        }
        let (granularity, mode) = shields
            .first()
            .map_or((Granularity::Tuple, MatchMode::Bitmap), |s| (s.granularity, s.mode));
        SecurityShield::new(roles).with_granularity(granularity).with_mode(mode)
    }

    /// Predicate check in the configured mode.
    fn authorized(&self, policy: &SharedPolicy) -> bool {
        match (self.mode, self.granularity) {
            (MatchMode::Bitmap, Granularity::Tuple) => policy.allows(&self.roles),
            (MatchMode::Bitmap, Granularity::Attribute) => policy.allows_any_attr(&self.roles),
            (MatchMode::Scan, _) => {
                // Role-by-role probe of the SS state (unindexed predicate
                // list), per the cost model's λ_sp(NR_sp + NR) term.
                let mut hit = false;
                for role in self.roles.iter() {
                    if policy.tuple_roles().contains(role) {
                        hit = true;
                    }
                }
                if !hit && self.granularity == Granularity::Attribute {
                    hit = policy.allows_any_attr(&self.roles);
                }
                hit
            }
        }
    }

    /// First predicate role the policy grants at tuple level, falling
    /// back to the first predicate role (attribute-scoped grants), or
    /// `u32::MAX` for an empty predicate. This is the role an audit
    /// record cites as the release justification.
    fn authorizing_role(&self, policy: &SharedPolicy) -> u32 {
        let mut fallback = u32::MAX;
        for role in self.roles.iter() {
            if fallback == u32::MAX {
                fallback = role.raw();
            }
            if policy.tuple_roles().contains(role) {
                return role.raw();
            }
        }
        fallback
    }

    fn evaluate_segment(&mut self, seg: &Arc<SegmentPolicy>) -> Verdict {
        self.mask_cache = None;
        self.tuple_cache = None;
        self.seg_role = u32::MAX;
        match seg.as_uniform() {
            Some(policy) => {
                if self.authorized(policy) {
                    self.seg_role = self.authorizing_role(policy);
                    let mask_from =
                        (self.granularity == Granularity::Attribute).then(|| policy.clone());
                    Verdict::Pass { mask_from }
                } else {
                    Verdict::Fail
                }
            }
            None => Verdict::PerTuple,
        }
    }

    /// Evaluates the predicate against a resolved policy, producing the
    /// pass verdict (with attribute mask) or `None` for deny.
    fn judge(&self, policy: &SharedPolicy, arity: usize) -> Option<Arc<[usize]>> {
        let pass = match self.granularity {
            Granularity::Tuple => policy.allows(&self.roles),
            Granularity::Attribute => policy.allows_any_attr(&self.roles),
        };
        if !pass {
            return None;
        }
        let masked: Arc<[usize]> = if self.granularity == Granularity::Attribute {
            policy.masked_attrs(arity, &self.roles).into()
        } else {
            Arc::from([])
        };
        Some(masked)
    }

    /// The attribute mask for a uniform segment at the given arity, cached.
    fn cached_mask(&mut self, policy: &SharedPolicy, arity: usize) -> Arc<[usize]> {
        match &self.mask_cache {
            Some((a, mask)) if *a == arity => mask.clone(),
            _ => {
                let mask: Arc<[usize]> = policy.masked_attrs(arity, &self.roles).into();
                self.mask_cache = Some((arity, mask.clone()));
                mask
            }
        }
    }

    /// Absorbs one arriving segment policy (the `process` policy arm,
    /// minus timing).
    fn absorb_policy(&mut self, seg: Arc<SegmentPolicy>) {
        self.stats.sps_in += 1;
        // An sp-batch with a newer timestamp replaces the buffered
        // policy (§V-A); older ones are ignored.
        let replace = self.current.as_ref().is_none_or(|cur| seg.ts >= cur.ts);
        if replace {
            self.verdict = self.evaluate_segment(&seg);
            self.pending_policy = match self.verdict {
                Verdict::Fail | Verdict::Deny => None,
                // Forward the policy narrowed to this shield's
                // predicate: downstream of ψ_p nothing may observe
                // access beyond p (least privilege), and narrowing
                // makes the Table II push-down rules exact.
                _ => Some(Arc::new(seg.map_policies(|p| p.restrict_to(&self.roles)))),
            };
            // The enforcement moment: span + enforcement-lag sample,
            // keyed to the sp-batch stamp (stream time only).
            let sp_ts = seg.ts.0;
            if self.spans.enabled() {
                let trace = sp_core::trace::trace_id_for_sp(sp_ts);
                self.spans.record(SpanRecord::at(
                    trace,
                    sp_core::trace::site::SHIELD_ENFORCE,
                    sp_core::trace::span_id(trace, sp_core::trace::site::ANALYZE),
                    NO_TUPLE,
                    sp_ts,
                ));
            }
            self.lag.observe_policy(sp_ts);
            self.current = Some(seg);
        }
    }

    /// Records the tuple-level causal span for a release/suppression
    /// decision, parented under the governing sp's enforcement span.
    fn record_decision_span(&mut self, site: u8, tid: u64, ts: u64, sp_ts: u64) {
        let trace = sp_core::trace::trace_id_for_tuple(tid);
        let parent = if sp_ts == NO_SP {
            0
        } else {
            sp_core::trace::span_id(
                sp_core::trace::trace_id_for_sp(sp_ts),
                sp_core::trace::site::SHIELD_ENFORCE,
            )
        };
        self.spans.record(SpanRecord::at(trace, site, parent, tid, ts));
    }

    /// Judges one tuple under the current verdict (the `process` tuple
    /// arm, minus timing).
    fn shield_tuple(&mut self, tuple: Arc<sp_core::Tuple>, out: &mut Emitter) {
        self.stats.tuples_in += 1;
        let (tid_raw, ts_raw) = (tuple.tid.raw(), tuple.ts.0);
        self.lag.observe_tuple(ts_raw);
        let mut audit_role = u32::MAX;
        let decision = match &self.verdict {
            Verdict::Deny | Verdict::Fail => None,
            Verdict::Pass { mask_from } => {
                audit_role = self.seg_role;
                match mask_from.clone() {
                    None => Some(Arc::from([])),
                    Some(policy) => Some(self.cached_mask(&policy, tuple.arity())),
                }
            }
            Verdict::PerTuple => {
                // Resolve with a scoped borrow, deferring any
                // mutation of the verdict cache.
                enum Hit {
                    Deny,
                    Cached(Option<Arc<[usize]>>, u32),
                    Evaluate(SharedPolicy),
                    Combined(SharedPolicy),
                }
                let hit = {
                    // Audited: the PerTuple verdict is only produced
                    // while a segment is current.
                    #[allow(clippy::expect_used)]
                    let seg = self.current.as_ref().expect("PerTuple implies a segment");
                    match seg.resolve_ref(&tuple) {
                        crate::element::Resolved::None => Hit::Deny,
                        crate::element::Resolved::One(policy) => {
                            // Hot path: consecutive tuples of one
                            // segment resolve to the same policy
                            // allocation — a pointer compare
                            // reuses the previous verdict.
                            match &self.tuple_cache {
                                Some((cached, verdict, role)) if Arc::ptr_eq(cached, policy) => {
                                    Hit::Cached(verdict.clone(), *role)
                                }
                                _ => Hit::Evaluate(policy.clone()),
                            }
                        }
                        crate::element::Resolved::Many => Hit::Combined(seg.policy_for(&tuple)),
                    }
                };
                match hit {
                    Hit::Deny => None,
                    Hit::Cached(verdict, role) => {
                        audit_role = role;
                        verdict
                    }
                    Hit::Evaluate(policy) => {
                        let verdict = self.judge(&policy, tuple.arity());
                        let role = self.authorizing_role(&policy);
                        self.tuple_cache = Some((policy, verdict.clone(), role));
                        audit_role = role;
                        verdict
                    }
                    Hit::Combined(policy) => {
                        audit_role = self.authorizing_role(&policy);
                        self.judge(&policy, tuple.arity())
                    }
                }
            }
        };
        match decision {
            Some(masked) => {
                if let Some(policy) = self.pending_policy.take() {
                    self.stats.sps_out += 1;
                    out.push(Element::Policy(policy));
                }
                self.stats.tuples_out += 1;
                let sp_ts = self.current.as_ref().map_or(NO_SP, |seg| seg.ts.0);
                if self.recorder.enabled() {
                    self.recorder.record(
                        tid_raw,
                        ts_raw,
                        AuditEvent::Released { role: audit_role, sp_ts },
                    );
                }
                self.lag.observe_release(ts_raw);
                if self.spans.enabled() {
                    self.record_decision_span(
                        sp_core::trace::site::RELEASE,
                        tid_raw,
                        ts_raw,
                        sp_ts,
                    );
                }
                if masked.is_empty() {
                    out.push(Element::Tuple(tuple));
                } else {
                    out.push(Element::tuple(tuple.mask(&masked)));
                }
            }
            None => {
                self.stats.tuples_shielded += 1;
                let sp_ts = self.current.as_ref().map_or(NO_SP, |seg| seg.ts.0);
                if self.recorder.enabled() {
                    self.recorder.record(tid_raw, ts_raw, AuditEvent::Suppressed { sp_ts });
                }
                self.lag.observe_suppress(ts_raw);
                if self.spans.enabled() {
                    self.record_decision_span(
                        sp_core::trace::site::SUPPRESS,
                        tid_raw,
                        ts_raw,
                        sp_ts,
                    );
                }
            }
        }
    }
}

impl Operator for SecurityShield {
    fn name(&self) -> &str {
        "ss"
    }

    fn process(
        &mut self,
        port: usize,
        elem: Element,
        out: &mut Emitter,
    ) -> Result<(), EngineError> {
        if port != 0 {
            return Err(EngineError::BadPort { operator: "ss".into(), port, arity: 1 });
        }
        match elem {
            Element::Policy(seg) => {
                let start = self.timed.then(std::time::Instant::now);
                self.absorb_policy(seg);
                if let Some(start) = start {
                    self.stats.charge(CostKind::Sp, start.elapsed());
                }
            }
            Element::Tuple(tuple) => {
                let start = self.timed.then(std::time::Instant::now);
                self.shield_tuple(tuple, out);
                if let Some(start) = start {
                    self.stats.charge(CostKind::Tuple, start.elapsed());
                }
            }
        }
        Ok(())
    }

    /// Vectorized fast path: a tuple-only run is judged under one cached
    /// verdict — the whole run is released (uniform pass, tuple
    /// granularity) or suppressed (deny/fail) with O(1) counter updates
    /// and one clock pair for the entire batch. Attribute-masked and
    /// scoped (per-tuple) segments, and any batch containing policies,
    /// fall back to the per-element cores, so outputs, counters, audit
    /// records, and snapshots are identical to element-at-a-time
    /// processing for every batch shape.
    fn process_batch(
        &mut self,
        port: usize,
        batch: crate::batch::ElementBatch,
        out: &mut Emitter,
    ) -> Result<(), EngineError> {
        if port != 0 {
            return Err(EngineError::BadPort { operator: "ss".into(), port, arity: 1 });
        }
        let start = self.timed.then(std::time::Instant::now);
        let cost = if batch.is_control() { CostKind::Sp } else { CostKind::Tuple };
        if batch.is_control() {
            // Policy run (or a mixed test batch): per-element cores.
            for elem in batch {
                match elem {
                    Element::Policy(seg) => self.absorb_policy(seg),
                    Element::Tuple(tuple) => self.shield_tuple(tuple, out),
                }
            }
        } else {
            // Tuple-only run: no policy can arrive mid-batch, so one
            // verdict governs the entire run.
            let n = batch.len() as u64;
            match &self.verdict {
                Verdict::Deny | Verdict::Fail => {
                    self.stats.tuples_in += n;
                    self.stats.tuples_shielded += n;
                    let audit = self.recorder.enabled();
                    if audit || self.spans.enabled() || self.lag.armed() {
                        let sp_ts = self.current.as_ref().map_or(NO_SP, |seg| seg.ts.0);
                        for elem in &batch {
                            if let Some(t) = elem.as_tuple() {
                                let (tid, ts) = (t.tid.raw(), t.ts.0);
                                self.lag.observe_tuple(ts);
                                if audit {
                                    self.recorder.record(tid, ts, AuditEvent::Suppressed { sp_ts });
                                }
                                self.lag.observe_suppress(ts);
                                if self.spans.enabled() {
                                    self.record_decision_span(
                                        sp_core::trace::site::SUPPRESS,
                                        tid,
                                        ts,
                                        sp_ts,
                                    );
                                }
                            }
                        }
                    }
                }
                Verdict::Pass { mask_from: None } => {
                    self.stats.tuples_in += n;
                    self.stats.tuples_out += n;
                    if let Some(policy) = self.pending_policy.take() {
                        self.stats.sps_out += 1;
                        out.push(Element::Policy(policy));
                    }
                    out.reserve(batch.len());
                    let audit = self.recorder.enabled();
                    if audit || self.spans.enabled() || self.lag.armed() {
                        let sp_ts = self.current.as_ref().map_or(NO_SP, |seg| seg.ts.0);
                        let role = self.seg_role;
                        for elem in batch {
                            if let Some(t) = elem.as_tuple() {
                                let (tid, ts) = (t.tid.raw(), t.ts.0);
                                self.lag.observe_tuple(ts);
                                if audit {
                                    self.recorder.record(
                                        tid,
                                        ts,
                                        AuditEvent::Released { role, sp_ts },
                                    );
                                }
                                self.lag.observe_release(ts);
                                if self.spans.enabled() {
                                    self.record_decision_span(
                                        sp_core::trace::site::RELEASE,
                                        tid,
                                        ts,
                                        sp_ts,
                                    );
                                }
                            }
                            out.push(elem);
                        }
                    } else {
                        for elem in batch {
                            out.push(elem);
                        }
                    }
                }
                // Attribute masks and scoped segments need per-tuple
                // resolution; caches inside the core keep it O(1) per
                // tuple.
                Verdict::Pass { mask_from: Some(_) } | Verdict::PerTuple => {
                    for elem in batch {
                        match elem {
                            Element::Tuple(tuple) => self.shield_tuple(tuple, out),
                            Element::Policy(seg) => self.absorb_policy(seg),
                        }
                    }
                }
            }
        }
        if let Some(start) = start {
            self.stats.charge(cost, start.elapsed());
        }
        Ok(())
    }

    fn stats(&self) -> &OperatorStats {
        &self.stats
    }

    fn set_audit(&mut self, capacity: usize) -> bool {
        self.recorder = FlightRecorder::new(capacity);
        true
    }

    fn audit(&self) -> Option<&FlightRecorder> {
        self.recorder.enabled().then_some(&self.recorder)
    }

    fn set_spans(&mut self, capacity: usize) -> bool {
        self.spans = SpanRecorder::new(capacity);
        self.lag.set_armed(capacity > 0);
        true
    }

    fn spans(&self) -> Option<&SpanRecorder> {
        (self.spans.capacity() > 0).then_some(&self.spans)
    }

    fn lag(&self) -> Option<&LagTracker> {
        self.lag.armed().then_some(&self.lag)
    }

    fn state_mem_bytes(&self) -> usize {
        self.roles.mem_bytes() + self.current.as_ref().map_or(0, |seg| seg.mem_bytes())
    }

    /// The shield decides per tuple from policy state built *only* from
    /// broadcast sps, so shard replicas hold identical policy state:
    /// safe to replicate across shards. Its lazy policy forwarding is
    /// tuple-dependent, though, so the sharded builder additionally
    /// requires it to feed its sink directly (see
    /// [`Operator::delays_sps`]).
    fn shard_safe(&self) -> bool {
        true
    }

    /// The narrowed pending policy is emitted before the first *released*
    /// tuple — a shard-local event under key partitioning.
    fn delays_sps(&self) -> bool {
        true
    }

    /// Suffix layout: the buffered segment (replicated — built from
    /// broadcast sps alone) followed by the pending narrowed policy
    /// (canonically flushed when any shard released a tuple).
    fn merge_shard_state(&self, parts: &[&[u8]]) -> Result<Vec<u8>, EngineError> {
        ckpt::merge_delayed_suffix("ss", parts, 1)
    }

    /// Snapshot: counters, the buffered segment policy, and the pending
    /// (not-yet-emitted) narrowed policy. The verdict and both caches are
    /// derived state, re-evaluated on restore.
    fn snapshot(&self, buf: &mut Vec<u8>) {
        self.stats.encode_counters(buf);
        ckpt::encode_opt_segment(self.current.as_ref(), buf);
        ckpt::encode_opt_segment(self.pending_policy.as_ref(), buf);
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        let mut slice = bytes;
        let buf = &mut slice;
        let mut apply = || -> Result<(), ckpt::CodecError> {
            self.stats.decode_counters(buf)?;
            self.current = ckpt::decode_opt_segment(buf)?;
            self.pending_policy = ckpt::decode_opt_segment(buf)?;
            ckpt::done(buf)
        };
        apply().map_err(|e| EngineError::corrupt("ss", e))?;
        // Audit/span/lag state is not checkpointed; replay repopulates.
        self.recorder.clear();
        self.spans.clear();
        self.lag.clear();
        self.verdict = match self.current.clone() {
            Some(seg) => self.evaluate_segment(&seg),
            None => {
                self.mask_cache = None;
                self.tuple_cache = None;
                self.seg_role = u32::MAX;
                Verdict::Deny
            }
        };
        Ok(())
    }

    /// Runtime role reassignment (§IX future work): swaps the predicate
    /// and re-evaluates the buffered segment so the very next tuple is
    /// judged under the new roles.
    fn update_predicate(&mut self, roles: &RoleSet) -> bool {
        self.roles = roles.clone();
        self.mask_cache = None;
        self.tuple_cache = None;
        if let Some(seg) = self.current.clone() {
            self.verdict = self.evaluate_segment(&seg);
            self.pending_policy = match self.verdict {
                Verdict::Fail | Verdict::Deny => None,
                _ => Some(Arc::new(seg.map_policies(|p| p.restrict_to(&self.roles)))),
            };
        }
        true
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::operator::run_unary;
    use sp_core::{Policy, RoleId, StreamId, Timestamp, Tuple, TupleId, Value};
    use sp_pattern::Pattern;

    fn tup(tid: u64, ts: u64) -> Element {
        Element::tuple(Tuple::new(
            StreamId(0),
            TupleId(tid),
            Timestamp(ts),
            vec![Value::Int(tid as i64), Value::Int(7)],
        ))
    }

    fn pol(roles: &[u32], ts: u64) -> Element {
        Element::policy(SegmentPolicy::uniform(Policy::tuple_level(
            roles.iter().map(|&r| RoleId(r)).collect(),
            Timestamp(ts),
        )))
    }

    fn tuples_of(elems: &[Element]) -> Vec<u64> {
        elems.iter().filter_map(|e| e.as_tuple().map(|t| t.tid.raw())).collect()
    }

    #[test]
    fn denial_by_default() {
        let mut ss = SecurityShield::new(RoleSet::from([1]));
        let out = run_unary(&mut ss, vec![tup(1, 0), tup(2, 1)]);
        assert!(out.is_empty());
        assert_eq!(ss.stats().tuples_shielded, 2);
    }

    #[test]
    fn passing_segment_flows_with_policy_first() {
        let mut ss = SecurityShield::new(RoleSet::from([1]));
        let out = run_unary(&mut ss, vec![pol(&[1, 2], 0), tup(1, 1), tup(2, 2)]);
        assert_eq!(out.len(), 3);
        assert!(out[0].as_policy().is_some(), "policy precedes its tuples");
        assert_eq!(tuples_of(&out), vec![1, 2]);
        assert_eq!(ss.stats().sps_out, 1);
    }

    #[test]
    fn failing_segment_discards_tuples_and_sps() {
        let mut ss = SecurityShield::new(RoleSet::from([9]));
        let out = run_unary(&mut ss, vec![pol(&[1], 0), tup(1, 1), pol(&[9], 2), tup(2, 3)]);
        assert_eq!(tuples_of(&out), vec![2]);
        // Only the passing segment's policy is forwarded.
        assert_eq!(out.iter().filter(|e| e.as_policy().is_some()).count(), 1);
        assert_eq!(ss.stats().tuples_shielded, 1);
    }

    #[test]
    fn newer_policy_overrides_older() {
        let mut ss = SecurityShield::new(RoleSet::from([1]));
        let out = run_unary(&mut ss, vec![pol(&[1], 10), tup(1, 11), pol(&[2], 12), tup(2, 13)]);
        assert_eq!(tuples_of(&out), vec![1]);
    }

    #[test]
    fn stale_policy_is_ignored() {
        let mut ss = SecurityShield::new(RoleSet::from([1]));
        let out = run_unary(&mut ss, vec![pol(&[1], 10), pol(&[2], 5), tup(1, 11)]);
        assert_eq!(tuples_of(&out), vec![1], "older sp must not override");
    }

    #[test]
    fn scan_mode_agrees_with_bitmap() {
        for roles in [vec![1u32], vec![5], vec![1, 5, 9]] {
            let input = vec![pol(&[1, 7], 0), tup(1, 1), pol(&[4], 2), tup(2, 3)];
            let mut bitmap = SecurityShield::new(roles.iter().map(|&r| RoleId(r)).collect());
            let mut scan = SecurityShield::new(roles.iter().map(|&r| RoleId(r)).collect())
                .with_mode(MatchMode::Scan);
            assert_eq!(
                tuples_of(&run_unary(&mut bitmap, input.clone())),
                tuples_of(&run_unary(&mut scan, input))
            );
        }
    }

    #[test]
    fn per_tuple_scoped_segments() {
        let seg = SegmentPolicy::new(
            vec![crate::element::PolicyEntry {
                scope: Pattern::numeric_range(0, 5),
                policy: std::sync::Arc::new(Policy::tuple_level(RoleSet::from([1]), Timestamp(0))),
            }],
            Timestamp(0),
        );
        let mut ss = SecurityShield::new(RoleSet::from([1]));
        let out = run_unary(&mut ss, vec![Element::policy(seg), tup(3, 1), tup(9, 2)]);
        assert_eq!(tuples_of(&out), vec![3], "tuple 9 is outside the scope");
    }

    #[test]
    fn attribute_granularity_masks() {
        let policy = Policy::tuple_level(RoleSet::new(), Timestamp(0))
            .with_attr_grant(1, RoleSet::from([1]));
        let seg = SegmentPolicy::uniform(policy);
        let mut ss =
            SecurityShield::new(RoleSet::from([1])).with_granularity(Granularity::Attribute);
        let out = run_unary(&mut ss, vec![Element::policy(seg), tup(42, 1)]);
        let t = out.iter().find_map(|e| e.as_tuple()).expect("tuple passes via attribute grant");
        assert!(t.value(0).unwrap().is_null(), "unauthorized attr masked");
        assert_eq!(t.value(1), Some(&Value::Int(7)));

        // Tuple granularity would have dropped it entirely.
        let seg2 = SegmentPolicy::uniform(
            Policy::tuple_level(RoleSet::new(), Timestamp(0))
                .with_attr_grant(1, RoleSet::from([1])),
        );
        let mut strict = SecurityShield::new(RoleSet::from([1]));
        let out2 = run_unary(&mut strict, vec![Element::policy(seg2), tup(42, 1)]);
        assert!(tuples_of(&out2).is_empty());
    }

    #[test]
    fn split_and_merge_round_trip() {
        let ss = SecurityShield::new(RoleSet::from([1, 4, 7]));
        let parts = ss.split();
        assert_eq!(parts.len(), 3);
        for p in &parts {
            assert_eq!(p.predicate().len(), 1);
        }
        let merged = SecurityShield::merge(&parts);
        assert_eq!(merged.predicate(), ss.predicate());
    }

    #[test]
    fn policy_emitted_once_per_segment() {
        let mut ss = SecurityShield::new(RoleSet::from([1]));
        let out = run_unary(&mut ss, vec![pol(&[1], 0), tup(1, 1), tup(2, 2), tup(3, 3)]);
        assert_eq!(out.iter().filter(|e| e.as_policy().is_some()).count(), 1);
        assert_eq!(tuples_of(&out).len(), 3);
    }

    #[test]
    fn mem_accounting_includes_state() {
        let mut ss = SecurityShield::new(RoleSet::from([1]));
        let empty = ss.state_mem_bytes();
        let _ = run_unary(&mut ss, vec![pol(&[1, 2, 3], 0)]);
        assert!(ss.state_mem_bytes() > empty);
        assert_eq!(ss.name(), "ss");
    }
}
