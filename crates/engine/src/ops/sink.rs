//! Result sink: terminates a query plan branch and records its output.

use std::sync::Arc;

use sp_core::Tuple;

use crate::element::{Element, SegmentPolicy};
use crate::error::EngineError;
use crate::operator::{Emitter, Operator};
use crate::stats::OperatorStats;

/// Collects the elements delivered to one registered query.
#[derive(Debug, Default)]
pub struct Sink {
    elements: Vec<Element>,
    stats: OperatorStats,
}

impl Sink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything delivered, in order.
    #[must_use]
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Only the delivered tuples, in order.
    pub fn tuples(&self) -> impl Iterator<Item = &Arc<Tuple>> {
        self.elements.iter().filter_map(Element::as_tuple)
    }

    /// Only the delivered policies, in order.
    pub fn policies(&self) -> impl Iterator<Item = &Arc<SegmentPolicy>> {
        self.elements.iter().filter_map(Element::as_policy)
    }

    /// Number of delivered tuples.
    #[must_use]
    pub fn tuple_count(&self) -> usize {
        self.tuples().count()
    }

    /// Clears collected results (bench warm-up).
    pub fn clear(&mut self) {
        self.elements.clear();
    }

    /// Takes everything delivered since the last take, leaving the sink
    /// empty (and its counters intact). Shard replicas use this to ship
    /// output increments to the exchange merge without re-sending
    /// history.
    pub(crate) fn take_elements(&mut self) -> Vec<Element> {
        std::mem::take(&mut self.elements)
    }
}

impl Operator for Sink {
    fn name(&self) -> &str {
        "sink"
    }

    fn process(
        &mut self,
        port: usize,
        elem: Element,
        _out: &mut Emitter,
    ) -> Result<(), EngineError> {
        if port != 0 {
            return Err(EngineError::BadPort { operator: "sink".into(), port, arity: 1 });
        }
        match &elem {
            Element::Tuple(_) => self.stats.tuples_in += 1,
            Element::Policy(_) => self.stats.sps_in += 1,
        }
        self.elements.push(elem);
        Ok(())
    }

    /// Vectorized fast path: bulk counter updates and one reservation,
    /// then an extend — a homogeneous batch counts entirely as tuples or
    /// entirely as sps.
    fn process_batch(
        &mut self,
        port: usize,
        batch: crate::batch::ElementBatch,
        _out: &mut Emitter,
    ) -> Result<(), EngineError> {
        if port != 0 {
            return Err(EngineError::BadPort { operator: "sink".into(), port, arity: 1 });
        }
        let mut tuples = 0u64;
        for elem in &batch {
            match elem {
                Element::Tuple(_) => tuples += 1,
                Element::Policy(_) => self.stats.sps_in += 1,
            }
        }
        self.stats.tuples_in += tuples;
        self.elements.reserve(batch.len());
        self.elements.extend(batch);
        Ok(())
    }

    fn stats(&self) -> &OperatorStats {
        &self.stats
    }

    fn state_mem_bytes(&self) -> usize {
        self.elements
            .iter()
            .map(|e| match e {
                Element::Tuple(t) => t.mem_bytes(),
                Element::Policy(p) => p.mem_bytes(),
            })
            .sum()
    }

    /// Snapshot: delivery counters only. Collected elements are *egressed
    /// output* — already released past the crash boundary — not operator
    /// state, so a checkpoint stays O(window state) instead of growing
    /// with the whole output history. After a restore the sink collects
    /// only post-restore releases; replayed segments may re-deliver, which
    /// keeps the released set a subset of the uninterrupted run (never a
    /// superset).
    fn snapshot(&self, buf: &mut Vec<u8>) {
        self.stats.encode_counters(buf);
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        let mut slice = bytes;
        let buf = &mut slice;
        self.stats
            .decode_counters(buf)
            .and_then(|()| crate::checkpoint::done(buf))
            .map_err(|e| EngineError::corrupt("sink", e))?;
        self.elements.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use sp_core::{Policy, RoleSet, StreamId, Timestamp, TupleId};

    #[test]
    fn collects_everything() {
        let mut sink = Sink::new();
        let mut em = Emitter::new();
        sink.process(
            0,
            Element::tuple(Tuple::new(StreamId(0), TupleId(1), Timestamp(0), vec![])),
            &mut em,
        )
        .unwrap();
        sink.process(
            0,
            Element::policy(SegmentPolicy::uniform(Policy::tuple_level(
                RoleSet::from([1]),
                Timestamp(1),
            ))),
            &mut em,
        )
        .unwrap();
        assert!(sink
            .process(
                1,
                Element::tuple(Tuple::new(StreamId(0), TupleId(9), Timestamp(2), vec![])),
                &mut em
            )
            .is_err());
        assert_eq!(sink.elements().len(), 2);
        assert_eq!(sink.tuple_count(), 1);
        assert_eq!(sink.policies().count(), 1);
        assert!(sink.state_mem_bytes() > 0);
        assert_eq!(sink.stats().tuples_in, 1);
        sink.clear();
        assert_eq!(sink.elements().len(), 0);
        assert_eq!(sink.name(), "sink");
    }
}
