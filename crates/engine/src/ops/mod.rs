//! Physical operators of the security-aware algebra (Table I).

pub mod dupelim;
pub mod groupby;
pub mod project;
pub mod sajoin;
pub mod select;
pub mod setops;
pub mod shield;
pub mod sink;

pub use dupelim::DupElim;
pub use groupby::{AggFunc, GroupBy};
pub use project::Project;
pub use sajoin::{JoinVariant, SAJoin};
pub use select::Select;
pub use setops::{SAIntersect, Union};
pub use shield::{Granularity, MatchMode, SecurityShield};
pub use sink::Sink;
