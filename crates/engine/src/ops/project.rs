//! The security-aware projection operator `π_a(T)` (Table I).
//!
//! Projection discards unwanted attributes on the fly and propagates
//! streaming punctuations, rewriting attribute-scoped grants to the new
//! attribute positions. Grants that only concerned projected-out
//! attributes disappear (the paper's "the sp is discarded", §IV-B) — but
//! the punctuation itself still propagates, now denying everything: under
//! override semantics a new segment's policy must replace the previous
//! one, and silently dropping it would leave a stale grant governing the
//! segment's tuples downstream.

use crate::element::Element;
use crate::error::EngineError;
use crate::operator::{Emitter, Operator};
use crate::stats::{CostKind, OperatorStats};

/// The projection operator.
#[derive(Debug)]
pub struct Project {
    /// Attribute indices to keep, in output order.
    indices: Vec<usize>,
    stats: OperatorStats,
}

impl Project {
    /// A projection keeping `indices` (in the given order).
    #[must_use]
    pub fn new(indices: Vec<usize>) -> Self {
        Self { indices, stats: OperatorStats::new() }
    }

    /// The projected attribute indices.
    #[must_use]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Remaps one segment policy's attribute-scoped grants to the output
    /// attribute positions.
    fn remap_policy(&mut self, seg: &crate::element::SegmentPolicy, out: &mut Emitter) {
        self.stats.sps_in += 1;
        let remapped = seg.map_policies(|p| {
            p.remap_attrs(|old| {
                self.indices.iter().position(|&k| k == old as usize).map(|new| new as u16)
            })
        });
        self.stats.sps_out += 1;
        out.push(Element::policy(remapped));
    }
}

impl Operator for Project {
    fn name(&self) -> &str {
        "project"
    }

    fn process(
        &mut self,
        port: usize,
        elem: Element,
        out: &mut Emitter,
    ) -> Result<(), EngineError> {
        if port != 0 {
            return Err(EngineError::BadPort { operator: "project".into(), port, arity: 1 });
        }
        match elem {
            Element::Policy(seg) => {
                let start = std::time::Instant::now();
                self.remap_policy(&seg, out);
                self.stats.charge(CostKind::Sp, start.elapsed());
            }
            Element::Tuple(tuple) => {
                let start = std::time::Instant::now();
                self.stats.tuples_in += 1;
                self.stats.tuples_out += 1;
                out.push(Element::tuple(tuple.project(&self.indices)));
                self.stats.charge(CostKind::Tuple, start.elapsed());
            }
        }
        Ok(())
    }

    /// Vectorized fast path: a tuple run projects in one tight loop with
    /// bulk counter updates, one output reservation, and a single clock
    /// pair for the whole batch.
    fn process_batch(
        &mut self,
        port: usize,
        batch: crate::batch::ElementBatch,
        out: &mut Emitter,
    ) -> Result<(), EngineError> {
        if port != 0 {
            return Err(EngineError::BadPort { operator: "project".into(), port, arity: 1 });
        }
        let start = std::time::Instant::now();
        let cost = if batch.is_control() { CostKind::Sp } else { CostKind::Tuple };
        if batch.is_tuples() && !batch.is_control() {
            let n = batch.len();
            self.stats.tuples_in += n as u64;
            self.stats.tuples_out += n as u64;
            out.reserve(n);
            for elem in batch {
                if let Element::Tuple(tuple) = elem {
                    out.push(Element::tuple(tuple.project(&self.indices)));
                }
            }
        } else {
            for elem in batch {
                match elem {
                    Element::Policy(seg) => self.remap_policy(&seg, out),
                    Element::Tuple(tuple) => {
                        self.stats.tuples_in += 1;
                        self.stats.tuples_out += 1;
                        out.push(Element::tuple(tuple.project(&self.indices)));
                    }
                }
            }
        }
        self.stats.charge(cost, start.elapsed());
        Ok(())
    }

    fn stats(&self) -> &OperatorStats {
        &self.stats
    }

    /// Projection is per-tuple: safe to replicate across shards.
    fn shard_safe(&self) -> bool {
        true
    }

    /// Every policy is forwarded immediately, exactly once, and
    /// deterministically (grants remapped to output positions), so
    /// projection may sit between a delayed-propagation operator and
    /// its sink: duplicate flushes stay byte-equal through the remap.
    fn policy_transparent(&self) -> bool {
        true
    }

    /// Snapshot: counters only — projection holds no stream state.
    fn snapshot(&self, buf: &mut Vec<u8>) {
        self.stats.encode_counters(buf);
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        let mut slice = bytes;
        let buf = &mut slice;
        self.stats
            .decode_counters(buf)
            .and_then(|()| crate::checkpoint::done(buf))
            .map_err(|e| EngineError::corrupt("project", e))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::element::SegmentPolicy;
    use crate::operator::run_unary;
    use sp_core::{Policy, RoleId, RoleSet, StreamId, Timestamp, Tuple, TupleId, Value};

    fn tup(vals: Vec<Value>) -> Element {
        Element::tuple(Tuple::new(StreamId(0), TupleId(1), Timestamp(0), vals))
    }

    #[test]
    fn projects_values_in_order() {
        let mut proj = Project::new(vec![2, 0]);
        let out =
            run_unary(&mut proj, vec![tup(vec![Value::Int(1), Value::Int(2), Value::Int(3)])]);
        let t = out[0].as_tuple().unwrap();
        assert_eq!(t.values(), &[Value::Int(3), Value::Int(1)]);
        assert_eq!(proj.indices(), &[2, 0]);
    }

    #[test]
    fn tuple_level_policies_propagate() {
        let mut proj = Project::new(vec![0]);
        let seg = SegmentPolicy::uniform(Policy::tuple_level(RoleSet::from([1]), Timestamp(0)));
        let out = run_unary(&mut proj, vec![Element::policy(seg)]);
        assert_eq!(out.len(), 1);
        assert!(out[0]
            .as_policy()
            .unwrap()
            .policy_for(&Tuple::new(StreamId(0), TupleId(0), Timestamp(0), vec![]))
            .allows(&RoleSet::from([1])));
    }

    #[test]
    fn attr_grants_are_remapped() {
        // Grant on attr 2; project [2, 0] → grant moves to output attr 0.
        let policy = Policy::tuple_level(RoleSet::new(), Timestamp(0))
            .with_attr_grant(2, RoleSet::single(RoleId(5)));
        let mut proj = Project::new(vec![2, 0]);
        let out = run_unary(&mut proj, vec![Element::policy(SegmentPolicy::uniform(policy))]);
        let seg = out[0].as_policy().unwrap();
        let p = seg.policy_for(&Tuple::new(StreamId(0), TupleId(0), Timestamp(0), vec![]));
        assert!(p.allows_attr(0, &RoleSet::from([5])));
        assert!(!p.allows_attr(1, &RoleSet::from([5])));
    }

    #[test]
    fn policy_for_only_dropped_attrs_becomes_deny() {
        // Grant exists only on attr 1, which the projection drops: the
        // grant disappears but the punctuation still propagates (it must
        // override whatever policy preceded it downstream).
        let policy = Policy::tuple_level(RoleSet::new(), Timestamp(0))
            .with_attr_grant(1, RoleSet::single(RoleId(5)));
        let mut proj = Project::new(vec![0]);
        let out = run_unary(&mut proj, vec![Element::policy(SegmentPolicy::uniform(policy))]);
        assert_eq!(out.len(), 1);
        let seg = out[0].as_policy().unwrap();
        assert!(seg.is_deny_all(), "orphaned grants leave a deny policy");
        assert_eq!(proj.stats().sps_in, 1);
        assert_eq!(proj.stats().sps_out, 1);
    }

    #[test]
    fn counts_and_name() {
        let mut proj = Project::new(vec![0]);
        let _ = run_unary(&mut proj, vec![tup(vec![Value::Int(1)])]);
        assert_eq!(proj.stats().tuples_in, 1);
        assert_eq!(proj.name(), "project");
    }
}
