//! Security-aware duplicate elimination `δ(T)` (Table I, §IV-B).
//!
//! Over a sliding window, the output contains exactly one tuple per
//! distinct value. Policies are stored with the output state, and a new
//! duplicate is released only to the subjects that could *not* already see
//! the previously released copy:
//!
//! 1. `P_old ∩ P_new = ∅` — the earlier output was invisible to the new
//!    tuple's audience: emit the value under `P_new`;
//! 2. `P_old ∩ P_new = P_new` — the earlier output was already visible to
//!    everyone authorized now: emit nothing;
//! 3. otherwise — emit under `P_new − (P_old ∩ P_new)` (only the roles that
//!    gained visibility).
//!
//! In every emitting case the stored policy widens to `P_old ∪ P_new`: the
//! output state tracks the *cumulative audience* that has been shown the
//! value. (The paper's literal text stores only `P_new` in case 1, which
//! forgets earlier viewers and re-releases values to audiences that
//! already saw them whenever a disjoint policy intervenes; the cumulative
//! form is what makes the Table II shield/δ commute rule sound. All three
//! cases then coincide with the unified rule: release `P_new − P_seen`
//! when non-empty, then `P_seen ← P_seen ∪ P_new`.)

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use sp_core::{Policy, RoleSet, SharedPolicy, Timestamp, Tuple, Value};

use crate::checkpoint as ckpt;
use crate::element::{Element, SegmentPolicy};
use crate::error::EngineError;
use crate::operator::{Emitter, Operator};
use crate::stats::{CostKind, OperatorStats};
use crate::window::WindowSpec;

/// Output-state entry for one distinct value.
#[derive(Debug)]
struct OutEntry {
    /// Roles that have been shown this value.
    roles: RoleSet,
    /// Number of window tuples supporting the value.
    support: usize,
}

/// The duplicate-elimination operator.
#[derive(Debug)]
pub struct DupElim {
    /// Attributes forming the distinctness key (empty = all attributes).
    key_attrs: Vec<usize>,
    window: WindowSpec,
    /// Input window contents, for support counting and expiry.
    buffer: VecDeque<(Arc<Tuple>, SharedPolicy)>,
    output: HashMap<Vec<Value>, OutEntry>,
    current: Option<Arc<SegmentPolicy>>,
    last_policy: Option<Policy>,
    stats: OperatorStats,
}

impl DupElim {
    /// Duplicate elimination on the given key attributes over a sliding
    /// window of `window_ms` (an empty key list means whole-tuple values).
    #[must_use]
    pub fn new(key_attrs: Vec<usize>, window_ms: u64) -> Self {
        Self {
            key_attrs,
            window: WindowSpec::Time(window_ms),
            buffer: VecDeque::new(),
            output: HashMap::new(),
            current: None,
            last_policy: None,
            stats: OperatorStats::new(),
        }
    }

    /// Replaces the window specification (e.g. a `ROWS n` count window).
    #[must_use]
    pub fn with_window(mut self, window: WindowSpec) -> Self {
        self.window = window;
        self
    }

    fn key_of(&self, tuple: &Tuple) -> Vec<Value> {
        if self.key_attrs.is_empty() {
            tuple.values().to_vec()
        } else {
            self.key_attrs.iter().map(|&i| tuple.value(i).cloned().unwrap_or(Value::Null)).collect()
        }
    }

    fn expire(&mut self, now: Timestamp) {
        let Some(horizon) = self.window.horizon(now) else { return };
        while self.buffer.front().is_some_and(|(t, _)| t.ts <= horizon) {
            self.evict_front();
        }
    }

    fn trim_rows(&mut self) {
        if let Some(capacity) = self.window.capacity() {
            while self.buffer.len() > capacity {
                self.evict_front();
            }
        }
    }

    fn evict_front(&mut self) {
        let Some((t, _)) = self.buffer.pop_front() else { return };
        let key = self.key_of(&t);
        if let Entry::Occupied(mut e) = self.output.entry(key) {
            e.get_mut().support -= 1;
            if e.get().support == 0 {
                e.remove();
            }
        }
    }

    fn emit(&mut self, out: &mut Emitter, tuple: Arc<Tuple>, roles: RoleSet, ts: Timestamp) {
        // Output policies carry the released tuple's timestamp (keeping
        // output sps ordered) and repeat only when authorizations change.
        let policy = Policy::tuple_level(roles, ts);
        let repeated =
            self.last_policy.as_ref().is_some_and(|prev| prev.same_authorizations(&policy));
        if !repeated {
            self.stats.sps_out += 1;
            out.push(Element::policy(SegmentPolicy::uniform(policy.clone())));
        }
        self.last_policy = Some(policy);
        self.stats.tuples_out += 1;
        out.push(Element::Tuple(tuple));
    }
}

impl Operator for DupElim {
    fn name(&self) -> &str {
        "dupelim"
    }

    fn process(
        &mut self,
        port: usize,
        elem: Element,
        out: &mut Emitter,
    ) -> Result<(), EngineError> {
        if port != 0 {
            return Err(EngineError::BadPort { operator: "dupelim".into(), port, arity: 1 });
        }
        match elem {
            Element::Policy(seg) => {
                let start = std::time::Instant::now();
                self.stats.sps_in += 1;
                let newer = self.current.as_ref().is_none_or(|c| seg.ts >= c.ts);
                if newer {
                    self.current = Some(seg);
                }
                self.stats.charge(CostKind::Sp, start.elapsed());
            }
            Element::Tuple(tuple) => {
                let start = std::time::Instant::now();
                self.stats.tuples_in += 1;
                self.expire(tuple.ts);
                let p_new: SharedPolicy = match &self.current {
                    Some(seg) => seg.policy_for(&tuple),
                    None => Arc::new(Policy::deny_all(Timestamp::ZERO)),
                };
                let key = self.key_of(&tuple);
                // Take the roles first so the policy Arc can move into the
                // window without an extra refcount round-trip.
                let new_roles = p_new.tuple_roles().clone();
                self.buffer.push_back((tuple.clone(), p_new));
                self.trim_rows();
                let action = match self.output.get_mut(&key) {
                    None => {
                        self.output.insert(key, OutEntry { roles: new_roles.clone(), support: 1 });
                        Some(new_roles)
                    }
                    Some(entry) => {
                        entry.support += 1;
                        let common = entry.roles.intersect(&new_roles);
                        if common.is_empty() {
                            // Case 1: previous output was invisible to this
                            // audience — re-release under P_new; the stored
                            // audience accumulates.
                            entry.roles.union_with(&new_roles);
                            if new_roles.is_empty() {
                                None // deny-all tuples are never released
                            } else {
                                Some(new_roles)
                            }
                        } else if common == new_roles {
                            // Case 2: already visible to everyone in P_new.
                            None
                        } else {
                            // Case 3: release only the newly-covered roles.
                            let delta = new_roles.minus(&common);
                            entry.roles.union_with(&new_roles);
                            Some(delta)
                        }
                    }
                };
                self.stats.charge(CostKind::Tuple, start.elapsed());
                if let Some(roles) = action {
                    if !roles.is_empty() {
                        let ts = tuple.ts;
                        let emit_start = std::time::Instant::now();
                        self.emit(out, tuple, roles, ts);
                        self.stats.charge(CostKind::Tuple, emit_start.elapsed());
                    } else {
                        self.stats.tuples_shielded += 1;
                    }
                }
            }
        }
        Ok(())
    }

    fn stats(&self) -> &OperatorStats {
        &self.stats
    }

    fn state_mem_bytes(&self) -> usize {
        let window: usize = self
            .buffer
            .iter()
            .map(|(t, _)| t.mem_bytes() + std::mem::size_of::<SharedPolicy>())
            .sum();
        let output: usize = self
            .output
            .values()
            .map(|e| e.roles.mem_bytes() + std::mem::size_of::<OutEntry>())
            .sum();
        window + output
    }

    /// Snapshot: counters, the input window, the output state (one entry
    /// per distinct value, serialized in byte-sorted key order so equal
    /// states always snapshot to identical bytes), the current segment
    /// policy, and the last emitted policy.
    fn snapshot(&self, buf: &mut Vec<u8>) {
        use bytes::BufMut;
        self.stats.encode_counters(buf);
        buf.put_u32(self.buffer.len() as u32);
        for (t, p) in &self.buffer {
            ckpt::encode_tuple_policy(t, p, buf);
        }
        let mut entries: Vec<Vec<u8>> = self
            .output
            .iter()
            .map(|(key, entry)| {
                let mut e = Vec::new();
                e.put_u16(key.len() as u16);
                for v in key {
                    sp_core::wire::encode_value(v, &mut e);
                }
                entry.roles.encode(&mut e);
                e.put_u64(entry.support as u64);
                e
            })
            .collect();
        entries.sort_unstable();
        buf.put_u32(entries.len() as u32);
        for e in entries {
            buf.extend_from_slice(&e);
        }
        ckpt::encode_opt_segment(self.current.as_ref(), buf);
        ckpt::encode_opt_policy(self.last_policy.as_ref(), buf);
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        use bytes::Buf;
        let mut slice = bytes;
        let buf = &mut slice;
        let mut apply = || -> Result<(), ckpt::CodecError> {
            self.stats.decode_counters(buf)?;
            ckpt::need(buf, 4, "dupelim buffer length")?;
            let n = buf.get_u32() as usize;
            let mut buffer = VecDeque::with_capacity(n);
            for _ in 0..n {
                buffer.push_back(ckpt::decode_tuple_policy(buf)?);
            }
            self.buffer = buffer;
            ckpt::need(buf, 4, "dupelim output length")?;
            let n = buf.get_u32() as usize;
            let mut output = HashMap::with_capacity(n);
            for _ in 0..n {
                ckpt::need(buf, 2, "dupelim key arity")?;
                let arity = buf.get_u16() as usize;
                let mut key = Vec::with_capacity(arity);
                for _ in 0..arity {
                    key.push(sp_core::wire::decode_value(buf).map_err(|e| e.to_string())?);
                }
                let roles = RoleSet::decode(buf)?;
                ckpt::need(buf, 8, "dupelim support count")?;
                let support = buf.get_u64() as usize;
                if output.insert(key, OutEntry { roles, support }).is_some() {
                    return Err("duplicate dupelim output key".into());
                }
            }
            self.output = output;
            self.current = ckpt::decode_opt_segment(buf)?;
            self.last_policy = ckpt::decode_opt_policy(buf)?;
            ckpt::done(buf)
        };
        apply().map_err(|e| EngineError::corrupt("dupelim", e))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::operator::run_unary;
    use sp_core::{RoleId, StreamId, TupleId};

    fn tup(tid: u64, ts: u64, v: i64) -> Element {
        Element::tuple(Tuple::new(StreamId(0), TupleId(tid), Timestamp(ts), vec![Value::Int(v)]))
    }

    fn pol(roles: &[u32], ts: u64) -> Element {
        Element::policy(SegmentPolicy::uniform(Policy::tuple_level(
            roles.iter().map(|&r| RoleId(r)).collect(),
            Timestamp(ts),
        )))
    }

    fn released(out: &[Element]) -> Vec<(i64, Vec<u32>)> {
        // (value, roles of the preceding policy)
        let mut current: Vec<u32> = Vec::new();
        let mut results = Vec::new();
        for e in out {
            match e {
                Element::Policy(p) => {
                    current =
                        p.as_uniform().unwrap().tuple_roles().iter().map(|r| r.raw()).collect();
                }
                Element::Tuple(t) => {
                    results.push((t.value(0).unwrap().as_i64().unwrap(), current.clone()));
                }
            }
        }
        results
    }

    #[test]
    fn distinct_values_pass_once() {
        let mut de = DupElim::new(vec![0], 1000);
        let out = run_unary(&mut de, vec![pol(&[1], 0), tup(1, 1, 5), tup(2, 2, 5), tup(3, 3, 6)]);
        assert_eq!(released(&out), vec![(5, vec![1]), (6, vec![1])]);
    }

    #[test]
    fn case1_disjoint_policies_rerelease() {
        let mut de = DupElim::new(vec![0], 1000);
        let out = run_unary(&mut de, vec![pol(&[1], 0), tup(1, 1, 5), pol(&[2], 2), tup(2, 3, 5)]);
        // Audience {2} never saw 5: re-released under {2}.
        assert_eq!(released(&out), vec![(5, vec![1]), (5, vec![2])]);
    }

    #[test]
    fn case2_subset_policy_suppressed() {
        let mut de = DupElim::new(vec![0], 1000);
        let out =
            run_unary(&mut de, vec![pol(&[1, 2], 0), tup(1, 1, 5), pol(&[2], 2), tup(2, 3, 5)]);
        // Audience {2} already saw 5 via the first release.
        assert_eq!(released(&out), vec![(5, vec![1, 2])]);
    }

    #[test]
    fn case3_partial_overlap_releases_delta() {
        let mut de = DupElim::new(vec![0], 1000);
        let out =
            run_unary(&mut de, vec![pol(&[1, 2], 0), tup(1, 1, 5), pol(&[2, 3], 2), tup(2, 3, 5)]);
        // Role 3 is the only newcomer.
        assert_eq!(released(&out), vec![(5, vec![1, 2]), (5, vec![3])]);
    }

    #[test]
    fn case3_widens_stored_policy() {
        let mut de = DupElim::new(vec![0], 1000);
        let out = run_unary(
            &mut de,
            vec![
                pol(&[1, 2], 0),
                tup(1, 1, 5),
                pol(&[2, 3], 2),
                tup(2, 3, 5),
                // {3} has now seen it through the delta release: suppress.
                pol(&[3], 4),
                tup(3, 5, 5),
            ],
        );
        assert_eq!(released(&out).len(), 2);
    }

    #[test]
    fn expiry_forgets_values() {
        let mut de = DupElim::new(vec![0], 100);
        let out = run_unary(&mut de, vec![pol(&[1], 0), tup(1, 1, 5), tup(2, 250, 5)]);
        // First copy expired before the second arrived → released again.
        assert_eq!(released(&out).len(), 2);
        assert!(de.state_mem_bytes() > 0);
    }

    #[test]
    fn deny_all_tuples_never_released() {
        let mut de = DupElim::new(vec![0], 1000);
        let out = run_unary(&mut de, vec![tup(1, 1, 5)]);
        assert!(released(&out).is_empty());
        // And a later authorized duplicate IS released.
        let out = run_unary(&mut de, vec![pol(&[4], 2), tup(2, 3, 5)]);
        assert_eq!(released(&out), vec![(5, vec![4])]);
    }

    #[test]
    fn row_window_forgets_by_count() {
        use crate::window::WindowSpec;
        let mut de = DupElim::new(vec![0], 0).with_window(WindowSpec::Rows(1));
        let out = run_unary(&mut de, vec![pol(&[1], 0), tup(1, 1, 5), tup(2, 2, 6), tup(3, 3, 5)]);
        // Value 5 was evicted by value 6, so its reappearance re-releases.
        assert_eq!(released(&out), vec![(5, vec![1]), (6, vec![1]), (5, vec![1])]);
    }

    #[test]
    fn whole_tuple_key_when_no_attrs_given() {
        let mut de = DupElim::new(vec![], 1000);
        let out = run_unary(&mut de, vec![pol(&[1], 0), tup(1, 1, 5), tup(2, 2, 5)]);
        assert_eq!(released(&out).len(), 1);
        assert_eq!(de.name(), "dupelim");
    }
}
