//! The Security-Aware Join (SAJoin) operator (§V-B).
//!
//! SAJoin is a sliding-window equijoin that stores the streaming policies
//! *together with the tuples* in its window state: each side's window is a
//! chronological list of s-punctuated segments — a segment policy followed
//! by the tuples it governs. Joining tuples must have compatible policies
//! (`P_t1 ∩ P_t2 ≠ ∅`); incompatible results are discarded and compatible
//! ones are emitted preceded by punctuations describing the intersection of
//! the base policies.
//!
//! Three physical variants are provided (Fig. 9):
//!
//! * **nested-loop, probe-and-filter (PF)** — probe by join value first,
//!   then check policy compatibility;
//! * **nested-loop, filter-and-probe (FP)** — skip policy-incompatible
//!   segments wholesale, then probe the survivors by join value;
//! * **index (SPIndex)** — a role-indexed punctuation index locates
//!   policy-compatible segments directly; the *skipping rule* (Lemma 5.1)
//!   prevents probing a segment once per shared role.
//!
//! Cost accounting matches the paper's breakdown: join time, sp
//! maintenance (index/segment bookkeeping), tuple maintenance (window
//! insertion + invalidation).

use std::collections::VecDeque;
use std::sync::Arc;

use sp_core::{Policy, RoleId, SharedPolicy, Timestamp, Tuple};

use crate::checkpoint as ckpt;
use crate::element::{Element, SegmentPolicy};
use crate::error::EngineError;
use crate::operator::{Emitter, Operator};
use crate::stats::{CostKind, OperatorStats};
use crate::window::WindowSpec;

/// Physical SAJoin variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinVariant {
    /// Nested loop, probe by value then filter by policy.
    NestedLoopPF,
    /// Nested loop, filter segments by policy then probe by value.
    NestedLoopFP,
    /// SPIndex-accelerated (the optimized version).
    #[default]
    Index,
}

/// One s-punctuated segment of a window: the governing policy and the
/// tuples (with their resolved policies) that arrived under it.
#[derive(Debug)]
struct Segment {
    /// Monotonic id, used by the SPIndex.
    id: u64,
    policy: Option<Arc<SegmentPolicy>>,
    /// `(tuple, resolved policy)` — uniform segments share one `Arc`.
    tuples: VecDeque<(Arc<Tuple>, SharedPolicy)>,
}

impl Segment {
    /// The uniform policy roles, if the segment is uniform.
    fn uniform_policy(&self) -> Option<&SharedPolicy> {
        self.policy.as_ref().and_then(|p| p.as_uniform())
    }
}

/// The SPIndex (§V-B.2): an r-node array mapping each role to the FIFO list
/// of index entries (segments whose policies contain that role). Entries
/// are appended at the r-tail on sp arrival and removed from the r-head on
/// expiry, mirroring the window's chronological order.
#[derive(Debug, Default)]
struct SpIndex {
    /// `r_nodes[role] = deque of segment ids`, oldest first.
    r_nodes: Vec<VecDeque<u64>>,
}

impl SpIndex {
    fn insert(&mut self, segment_id: u64, roles: impl Iterator<Item = RoleId>) {
        for role in roles {
            let idx = role.raw() as usize;
            if idx >= self.r_nodes.len() {
                self.r_nodes.resize_with(idx + 1, VecDeque::new);
            }
            self.r_nodes[idx].push_back(segment_id);
        }
    }

    fn remove(&mut self, segment_id: u64, roles: impl Iterator<Item = RoleId>) {
        for role in roles {
            if let Some(list) = self.r_nodes.get_mut(role.raw() as usize) {
                // The expired segment is always the globally oldest, so it
                // sits at the r-head of every list that contains it.
                if list.front() == Some(&segment_id) {
                    list.pop_front();
                } else {
                    list.retain(|&id| id != segment_id);
                }
            }
        }
    }

    fn entries(&self, role: RoleId) -> impl Iterator<Item = u64> + '_ {
        self.r_nodes.get(role.raw() as usize).into_iter().flatten().copied()
    }

    fn mem_bytes(&self) -> usize {
        std::mem::size_of::<SpIndex>()
            + self
                .r_nodes
                .iter()
                .map(|l| std::mem::size_of::<VecDeque<u64>>() + l.capacity() * 8)
                .sum::<usize>()
    }
}

/// Per-side window state.
#[derive(Debug)]
struct Side {
    segments: VecDeque<Segment>,
    index: SpIndex,
    next_segment_id: u64,
    tuple_count: usize,
    key: usize,
}

impl Side {
    fn new(key: usize) -> Self {
        Self {
            segments: VecDeque::new(),
            index: SpIndex::default(),
            next_segment_id: 0,
            tuple_count: 0,
            key,
        }
    }

    fn segment_by_id(&self, id: u64) -> Option<&Segment> {
        // Segment ids are strictly increasing (but not dense — replaced
        // empty segments leave gaps), so binary search by id.
        let idx = self.segments.partition_point(|s| s.id < id);
        self.segments.get(idx).filter(|s| s.id == id)
    }

    /// Opens a new segment for `policy`, replacing a trailing empty one.
    fn open_segment(&mut self, policy: Arc<SegmentPolicy>, use_index: bool) {
        if self.segments.back().is_some_and(|last| last.tuples.is_empty()) {
            if let Some(last) = self.segments.pop_back() {
                if use_index {
                    self.remove_index_entries(&last);
                }
            }
        }
        let id = self.next_segment_id;
        self.next_segment_id += 1;
        if use_index {
            for entry in policy.entries() {
                self.index.insert(id, entry.policy.tuple_roles().iter());
            }
        }
        self.segments.push_back(Segment { id, policy: Some(policy), tuples: VecDeque::new() });
    }

    fn remove_index_entries(&mut self, segment: &Segment) {
        if let Some(policy) = &segment.policy {
            for entry in policy.entries() {
                self.index.remove(segment.id, entry.policy.tuple_roles().iter());
            }
        }
    }

    /// Appends a tuple under the current (last) segment.
    fn insert_tuple(&mut self, tuple: Arc<Tuple>) {
        if self.segments.is_empty() {
            // Tuples before any punctuation: denial-by-default segment.
            let id = self.next_segment_id;
            self.next_segment_id += 1;
            self.segments.push_back(Segment { id, policy: None, tuples: VecDeque::new() });
        }
        // Audited: a segment was pushed just above if none existed.
        #[allow(clippy::expect_used)]
        let seg = self.segments.back_mut().expect("segment exists");
        let policy = match &seg.policy {
            Some(p) => p.policy_for(&tuple),
            None => Arc::new(Policy::deny_all(Timestamp::ZERO)),
        };
        seg.tuples.push_back((tuple, policy));
        self.tuple_count += 1;
    }

    fn mem_bytes(&self) -> usize {
        let mut bytes = self.index.mem_bytes();
        for seg in &self.segments {
            bytes += std::mem::size_of::<Segment>();
            if let Some(p) = &seg.policy {
                bytes += p.mem_bytes();
            }
            for (t, _) in &seg.tuples {
                bytes += t.mem_bytes() + std::mem::size_of::<SharedPolicy>();
            }
        }
        bytes
    }
}

/// The SAJoin operator.
#[derive(Debug)]
pub struct SAJoin {
    variant: JoinVariant,
    window: WindowSpec,
    left: Side,
    right: Side,
    left_arity: usize,
    /// Last emitted output policy, for punctuation sharing on the output.
    last_policy: Option<Policy>,
    /// Scratch: segment ids probed during the current index probe.
    probed: Vec<u64>,
    stats: OperatorStats,
}

impl SAJoin {
    /// An equijoin `left.key_l = right.key_r` over sliding windows of
    /// `window_ms` milliseconds per side. `left_arity` is the arity of
    /// left-side tuples (for attribute-grant remapping in output policies).
    #[must_use]
    pub fn new(
        variant: JoinVariant,
        window_ms: u64,
        left_key: usize,
        right_key: usize,
        left_arity: usize,
    ) -> Self {
        Self {
            variant,
            window: WindowSpec::Time(window_ms),
            left: Side::new(left_key),
            right: Side::new(right_key),
            left_arity,
            last_policy: None,
            probed: Vec::new(),
            stats: OperatorStats::new(),
        }
    }

    /// The configured variant.
    #[must_use]
    pub fn variant(&self) -> JoinVariant {
        self.variant
    }

    /// Replaces the window specification (e.g. a `ROWS n` count window).
    #[must_use]
    pub fn with_window(mut self, window: WindowSpec) -> Self {
        self.window = window;
        self
    }

    /// Current window tuple counts `(left, right)`.
    #[must_use]
    pub fn window_sizes(&self) -> (usize, usize) {
        (self.left.tuple_count, self.right.tuple_count)
    }

    /// Combines the base tuples' policies into the output policy
    /// (intersection; attribute grants of the right side shift by the left
    /// arity). Ignores the immutability shortcut — both base policies
    /// constrain the result.
    fn join_policies(&self, left: &Policy, right: &Policy) -> Policy {
        let mut l = left.clone();
        l.immutable = false;
        let shift = self.left_arity as u16;
        let r = right.remap_attrs(|a| Some(a + shift));
        let mut out = l.intersect(&r);
        out.immutable = left.immutable || right.immutable;
        out
    }

    /// Emits one join result, preceded by its policy punctuation when the
    /// authorizations differ from the previously emitted ones (punctuation
    /// sharing on the output stream). The output punctuation is stamped
    /// with the *result tuple's* timestamp so the output stream's sps stay
    /// timestamp-ordered — base policies of window tuples can be older
    /// than policies already emitted, and downstream operators rightly
    /// ignore punctuations that appear stale (§V-A).
    fn emit(&mut self, out: &mut Emitter, joined: Tuple, mut policy: Policy) {
        policy.ts = joined.ts;
        let repeated =
            self.last_policy.as_ref().is_some_and(|prev| prev.same_authorizations(&policy));
        if !repeated {
            self.stats.sps_out += 1;
            out.push(Element::policy(SegmentPolicy::uniform(policy.clone())));
        }
        self.last_policy = Some(policy);
        self.stats.tuples_out += 1;
        out.push(Element::tuple(joined));
    }

    /// Invalidation (§V-B.1 step 2): expire tuples older than `now - W`
    /// from the head of the given side; purge fully-expired segments and
    /// their punctuations (and index entries).
    fn invalidate(&mut self, from_left: bool, now: Timestamp) {
        let Some(horizon) = self.window.horizon(now) else {
            return; // row windows expire by count on insertion
        };
        let use_index = self.variant == JoinVariant::Index;
        let side = if from_left { &mut self.left } else { &mut self.right };
        while let Some(front) = side.segments.front_mut() {
            let tuple_start = std::time::Instant::now();
            while front.tuples.front().is_some_and(|(t, _)| t.ts <= horizon) {
                front.tuples.pop_front();
                side.tuple_count -= 1;
            }
            self.stats.charge(CostKind::TupleMaintenance, tuple_start.elapsed());
            // A segment is purged once empty, unless it is the live tail
            // segment still governing future arrivals.
            if front.tuples.is_empty() && side.segments.len() > 1 {
                let sp_start = std::time::Instant::now();
                // Audited: len > 1 was just checked.
                #[allow(clippy::expect_used)]
                let seg = side.segments.pop_front().expect("front exists");
                if use_index {
                    if let Some(policy) = &seg.policy {
                        for entry in policy.entries() {
                            side.index.remove(seg.id, entry.policy.tuple_roles().iter());
                        }
                    }
                }
                self.stats.charge(CostKind::SpMaintenance, sp_start.elapsed());
            } else {
                break;
            }
        }
    }

    /// Count-window eviction: trims a side to the row capacity, purging
    /// emptied segments (and their index entries).
    fn trim_rows(&mut self, from_left: bool) {
        let Some(capacity) = self.window.capacity() else { return };
        let use_index = self.variant == JoinVariant::Index;
        let side = if from_left { &mut self.left } else { &mut self.right };
        let start = std::time::Instant::now();
        while side.tuple_count > capacity {
            // Audited: tuple_count > 0 implies at least one segment.
            #[allow(clippy::expect_used)]
            let front = side.segments.front_mut().expect("non-empty when over capacity");
            if front.tuples.pop_front().is_some() {
                side.tuple_count -= 1;
            }
            if front.tuples.is_empty() && side.segments.len() > 1 {
                // Audited: len > 1 was just checked.
                #[allow(clippy::expect_used)]
                let seg = side.segments.pop_front().expect("front exists");
                if use_index {
                    if let Some(policy) = &seg.policy {
                        for entry in policy.entries() {
                            side.index.remove(seg.id, entry.policy.tuple_roles().iter());
                        }
                    }
                }
            }
        }
        self.stats.charge(CostKind::TupleMaintenance, start.elapsed());
    }

    /// Join step: probe the opposite window with the new tuple.
    fn probe(
        &mut self,
        from_left: bool,
        tuple: &Arc<Tuple>,
        policy: &SharedPolicy,
        out: &mut Emitter,
    ) {
        let start = std::time::Instant::now();
        let (own_key, opp_key) = if from_left {
            (self.left.key, self.right.key)
        } else {
            (self.right.key, self.left.key)
        };
        let key_value = tuple.value(own_key).cloned();
        let Some(key_value) = key_value else {
            self.stats.charge(CostKind::Join, start.elapsed());
            return;
        };

        // Collect matches first to keep the borrow checker happy; the
        // emission cost is still charged to the join bucket.
        let mut matches: Vec<(Arc<Tuple>, SharedPolicy)> = Vec::new();
        {
            let opposite = if from_left { &self.right } else { &self.left };
            match self.variant {
                JoinVariant::NestedLoopPF => {
                    // Probe-and-filter: value test first, then policy test.
                    for seg in &opposite.segments {
                        for (u, up) in &seg.tuples {
                            if u.value(opp_key).is_some_and(|v| v.sql_eq(&key_value))
                                && policy.tuple_roles().intersects(up.tuple_roles())
                            {
                                matches.push((u.clone(), up.clone()));
                            }
                        }
                    }
                }
                JoinVariant::NestedLoopFP => {
                    // Filter-and-probe: skip policy-incompatible segments
                    // wholesale (uniform segments need one check), then
                    // value-probe the survivors.
                    for seg in &opposite.segments {
                        if let Some(up) = seg.uniform_policy() {
                            if !policy.tuple_roles().intersects(up.tuple_roles()) {
                                continue;
                            }
                        }
                        for (u, up) in &seg.tuples {
                            if policy.tuple_roles().intersects(up.tuple_roles())
                                && u.value(opp_key).is_some_and(|v| v.sql_eq(&key_value))
                            {
                                matches.push((u.clone(), up.clone()));
                            }
                        }
                    }
                }
                JoinVariant::Index => {
                    self.probed.clear();
                    for role in policy.tuple_roles().iter() {
                        for seg_id in opposite.index.entries(role) {
                            let Some(seg) = opposite.segment_by_id(seg_id) else {
                                continue;
                            };
                            let Some(up) = seg.uniform_policy() else {
                                // Scoped segment: guard against probing the
                                // same segment via several entries.
                                if self.probed.contains(&seg_id) {
                                    continue;
                                }
                                self.probed.push(seg_id);
                                for (u, upol) in &seg.tuples {
                                    if policy.tuple_roles().intersects(upol.tuple_roles())
                                        && u.value(opp_key).is_some_and(|v| v.sql_eq(&key_value))
                                    {
                                        matches.push((u.clone(), upol.clone()));
                                    }
                                }
                                continue;
                            };
                            // Skipping rule (Lemma 5.1), refined to stay
                            // sound: skip if the *first role common to both
                            // policies* is smaller than the current r-node
                            // role — that entry was already processed when
                            // the probe visited the smaller common role.
                            let common_first = up.tuple_roles().first_common(policy.tuple_roles());
                            if common_first.is_some_and(|r| r < role) {
                                continue;
                            }
                            for (u, upol) in &seg.tuples {
                                if u.value(opp_key).is_some_and(|v| v.sql_eq(&key_value)) {
                                    matches.push((u.clone(), upol.clone()));
                                }
                            }
                        }
                    }
                }
            }
        }

        for (u, up) in matches {
            let (joined, out_policy) = if from_left {
                (tuple.join(&u), self.join_policies(policy, &up))
            } else {
                (u.join(tuple), self.join_policies(&up, policy))
            };
            if out_policy.tuple_roles().is_empty() && out_policy.attr_grants().is_empty() {
                continue; // incompatible base policies
            }
            self.emit(out, joined, out_policy);
        }
        self.stats.charge(CostKind::Join, start.elapsed());
    }

    /// The per-element join state machine (shared by `process` and
    /// `process_batch`).
    fn handle(&mut self, from_left: bool, elem: Element, out: &mut Emitter) {
        match elem {
            Element::Policy(seg) => {
                // Policy collection (§V-B.1 step 1): store the sp in the
                // window; with the index variant also create index entries.
                let start = std::time::Instant::now();
                self.stats.sps_in += 1;
                let use_index = self.variant == JoinVariant::Index;
                let side = if from_left { &mut self.left } else { &mut self.right };
                side.open_segment(seg, use_index);
                self.stats.charge(CostKind::SpMaintenance, start.elapsed());
            }
            Element::Tuple(tuple) => {
                self.stats.tuples_in += 1;
                // Step 2: invalidate the opposite window.
                self.invalidate(!from_left, tuple.ts);
                // Insert into own window.
                let insert_start = std::time::Instant::now();
                let side = if from_left { &mut self.left } else { &mut self.right };
                side.insert_tuple(tuple.clone());
                // Audited: insert_tuple just appended to the back segment.
                #[allow(clippy::expect_used)]
                let policy = side
                    .segments
                    .back()
                    .and_then(|s| s.tuples.back())
                    .map(|(_, p)| p.clone())
                    .expect("tuple was just inserted");
                self.stats.charge(CostKind::TupleMaintenance, insert_start.elapsed());
                self.trim_rows(from_left);
                // Step 3: probe the opposite window.
                self.probe(from_left, &tuple, &policy, out);
            }
        }
    }
}

impl Operator for SAJoin {
    fn name(&self) -> &str {
        "sajoin"
    }

    fn arity(&self) -> usize {
        2
    }

    fn process(
        &mut self,
        port: usize,
        elem: Element,
        out: &mut Emitter,
    ) -> Result<(), EngineError> {
        if port >= 2 {
            return Err(EngineError::BadPort { operator: "sajoin".into(), port, arity: 2 });
        }
        self.handle(port == 0, elem, out);
        Ok(())
    }

    /// Batch path: one port check, then the per-element join pipeline. All
    /// join state (windows, invalidation, probes) is inherently sequential
    /// in arrival order, so the batch loop is the per-element machine with
    /// the dispatch overhead hoisted; timing is charged per cost kind
    /// inside the maintenance/probe phases exactly as in `process`.
    fn process_batch(
        &mut self,
        port: usize,
        batch: crate::batch::ElementBatch,
        out: &mut Emitter,
    ) -> Result<(), EngineError> {
        if port >= 2 {
            return Err(EngineError::BadPort { operator: "sajoin".into(), port, arity: 2 });
        }
        let from_left = port == 0;
        for elem in batch {
            self.handle(from_left, elem, out);
        }
        Ok(())
    }

    fn stats(&self) -> &OperatorStats {
        &self.stats
    }

    fn state_mem_bytes(&self) -> usize {
        self.left.mem_bytes() + self.right.mem_bytes()
    }

    /// Snapshot: counters, both sides' s-punctuated segment lists (segment
    /// id, governing policy, tuples with resolved policies) and segment-id
    /// allocators, and the last emitted output policy. The SPIndex and the
    /// per-side tuple counts are *derived* state, rebuilt on restore rather
    /// than serialized; `probed` is per-probe scratch.
    fn snapshot(&self, buf: &mut Vec<u8>) {
        use bytes::BufMut;
        self.stats.encode_counters(buf);
        for side in [&self.left, &self.right] {
            buf.put_u64(side.next_segment_id);
            buf.put_u32(side.segments.len() as u32);
            for seg in &side.segments {
                buf.put_u64(seg.id);
                ckpt::encode_opt_segment(seg.policy.as_ref(), buf);
                buf.put_u32(seg.tuples.len() as u32);
                for (t, p) in &seg.tuples {
                    ckpt::encode_tuple_policy(t, p, buf);
                }
            }
        }
        ckpt::encode_opt_policy(self.last_policy.as_ref(), buf);
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        use bytes::Buf;
        let use_index = self.variant == JoinVariant::Index;
        let mut slice = bytes;
        let buf = &mut slice;
        let mut apply = || -> Result<(), ckpt::CodecError> {
            self.stats.decode_counters(buf)?;
            for side in [&mut self.left, &mut self.right] {
                ckpt::need(buf, 8 + 4, "sajoin side header")?;
                let next_segment_id = buf.get_u64();
                let n = buf.get_u32() as usize;
                let mut segments = VecDeque::with_capacity(n);
                let mut tuple_count = 0usize;
                let mut index = SpIndex::default();
                let mut prev_id = None;
                for _ in 0..n {
                    ckpt::need(buf, 8, "sajoin segment id")?;
                    let id = buf.get_u64();
                    // `segment_by_id` binary-searches on ids, and the id
                    // allocator must stay ahead of every live segment.
                    if prev_id.is_some_and(|p| id <= p) {
                        return Err("sajoin segment ids out of order".into());
                    }
                    if id >= next_segment_id {
                        return Err("sajoin segment id beyond allocator".into());
                    }
                    prev_id = Some(id);
                    let policy = ckpt::decode_opt_segment(buf)?;
                    ckpt::need(buf, 4, "sajoin segment tuple count")?;
                    let m = buf.get_u32() as usize;
                    let mut tuples = VecDeque::with_capacity(m);
                    for _ in 0..m {
                        tuples.push_back(ckpt::decode_tuple_policy(buf)?);
                    }
                    tuple_count += tuples.len();
                    if use_index {
                        if let Some(policy) = &policy {
                            for entry in policy.entries() {
                                index.insert(id, entry.policy.tuple_roles().iter());
                            }
                        }
                    }
                    segments.push_back(Segment { id, policy, tuples });
                }
                side.segments = segments;
                side.index = index;
                side.next_segment_id = next_segment_id;
                side.tuple_count = tuple_count;
            }
            self.last_policy = ckpt::decode_opt_policy(buf)?;
            ckpt::done(buf)
        };
        self.probed.clear();
        apply().map_err(|e| EngineError::corrupt("sajoin", e))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use sp_core::{RoleSet, StreamId, TupleId, Value};

    fn tup(sid: u32, tid: u64, ts: u64, key: i64) -> Element {
        Element::tuple(Tuple::new(
            StreamId(sid),
            TupleId(tid),
            Timestamp(ts),
            vec![Value::Int(key), Value::Int(tid as i64)],
        ))
    }

    fn pol(roles: &[u32], ts: u64) -> Element {
        Element::policy(SegmentPolicy::uniform(Policy::tuple_level(
            roles.iter().map(|&r| RoleId(r)).collect(),
            Timestamp(ts),
        )))
    }

    fn run(join: &mut SAJoin, input: Vec<(usize, Element)>) -> Vec<Element> {
        let mut em = Emitter::new();
        let mut collected = Vec::new();
        for (port, elem) in input {
            join.process(port, elem, &mut em).unwrap();
            collected.extend(em.drain());
        }
        collected
    }

    fn joined_pairs(out: &[Element]) -> Vec<(i64, i64)> {
        out.iter()
            .filter_map(|e| e.as_tuple())
            .map(|t| (t.value(1).unwrap().as_i64().unwrap(), t.value(3).unwrap().as_i64().unwrap()))
            .collect()
    }

    fn all_variants() -> [JoinVariant; 3] {
        [JoinVariant::NestedLoopPF, JoinVariant::NestedLoopFP, JoinVariant::Index]
    }

    #[test]
    fn equijoin_with_compatible_policies() {
        for variant in all_variants() {
            let mut j = SAJoin::new(variant, 1000, 0, 0, 2);
            let out = run(
                &mut j,
                vec![
                    (0, pol(&[1], 0)),
                    (0, tup(1, 10, 1, 42)),
                    (1, pol(&[1, 2], 0)),
                    (1, tup(2, 20, 2, 42)),
                ],
            );
            assert_eq!(joined_pairs(&out), vec![(10, 20)], "{variant:?}");
            // Output punctuation precedes the result and is the policy
            // intersection.
            let seg = out.iter().find_map(|e| e.as_policy()).expect("output policy emitted");
            let p = seg.as_uniform().unwrap();
            assert!(p.allows(&RoleSet::from([1])));
            assert!(!p.allows(&RoleSet::from([2])));
        }
    }

    #[test]
    fn incompatible_policies_are_discarded() {
        for variant in all_variants() {
            let mut j = SAJoin::new(variant, 1000, 0, 0, 2);
            let out = run(
                &mut j,
                vec![
                    (0, pol(&[1], 0)),
                    (0, tup(1, 10, 1, 42)),
                    (1, pol(&[2], 0)),
                    (1, tup(2, 20, 2, 42)),
                ],
            );
            assert!(joined_pairs(&out).is_empty(), "{variant:?}");
        }
    }

    #[test]
    fn non_matching_keys_do_not_join() {
        for variant in all_variants() {
            let mut j = SAJoin::new(variant, 1000, 0, 0, 2);
            let out = run(
                &mut j,
                vec![
                    (0, pol(&[1], 0)),
                    (0, tup(1, 10, 1, 42)),
                    (1, pol(&[1], 0)),
                    (1, tup(2, 20, 2, 43)),
                ],
            );
            assert!(joined_pairs(&out).is_empty(), "{variant:?}");
        }
    }

    #[test]
    fn window_invalidation_expires_old_tuples() {
        for variant in all_variants() {
            let mut j = SAJoin::new(variant, 100, 0, 0, 2);
            let out = run(
                &mut j,
                vec![
                    (0, pol(&[1], 0)),
                    (0, tup(1, 10, 0, 42)),
                    (1, pol(&[1], 0)),
                    // ts 200 > 0 + 100: the left tuple has expired.
                    (1, tup(2, 20, 200, 42)),
                ],
            );
            assert!(joined_pairs(&out).is_empty(), "{variant:?}");
            assert_eq!(j.window_sizes().0, 0, "{variant:?}: left emptied");
        }
    }

    #[test]
    fn expired_segments_purge_their_punctuations() {
        let mut j = SAJoin::new(JoinVariant::Index, 100, 0, 0, 2);
        let _ = run(
            &mut j,
            vec![
                (0, pol(&[1], 0)),
                (0, tup(1, 10, 0, 1)),
                (0, pol(&[2], 50)),
                (0, tup(1, 11, 50, 2)),
                (1, pol(&[1, 2], 0)),
                (1, tup(2, 20, 500, 3)),
            ],
        );
        // Both left segments expired; only the live tail remains.
        assert_eq!(j.left.segments.len(), 1);
        assert!(j.left.index.entries(RoleId(1)).next().is_none());
    }

    #[test]
    fn duplicate_join_prevention_with_shared_roles() {
        // Tuples share TWO roles; the skipping rule must join them once.
        for variant in all_variants() {
            let mut j = SAJoin::new(variant, 1000, 0, 0, 2);
            let out = run(
                &mut j,
                vec![
                    (0, pol(&[3, 7], 0)),
                    (0, tup(1, 10, 1, 42)),
                    (1, pol(&[3, 7], 0)),
                    (1, tup(2, 20, 2, 42)),
                ],
            );
            assert_eq!(joined_pairs(&out), vec![(10, 20)], "{variant:?}");
        }
    }

    #[test]
    fn skipping_rule_refinement_keeps_joins_whose_first_role_differs() {
        // Right policy {1, 5}; left probe policy {5}. The sp's first role
        // (1) is smaller than the probing r-node (5) but is NOT in the
        // probing policy — a naive Lemma 5.1 would wrongly skip.
        let mut j = SAJoin::new(JoinVariant::Index, 1000, 0, 0, 2);
        let out = run(
            &mut j,
            vec![
                (1, pol(&[1, 5], 0)),
                (1, tup(2, 20, 1, 42)),
                (0, pol(&[5], 0)),
                (0, tup(1, 10, 2, 42)),
            ],
        );
        assert_eq!(joined_pairs(&out), vec![(10, 20)]);
    }

    #[test]
    fn variants_agree_on_random_streams() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        // Build a random interleaving of policies and tuples on both ports.
        let mut input = Vec::new();
        for ts in 0..300u64 {
            let port = usize::from(rng.gen_bool(0.5));
            if rng.gen_bool(0.2) {
                let roles: Vec<u32> =
                    (0..rng.gen_range(1..4)).map(|_| rng.gen_range(0..6)).collect();
                input.push((port, pol(&roles, ts)));
            } else {
                input.push((port, tup(port as u32, ts, ts, rng.gen_range(0..5))));
            }
        }
        let mut outs = Vec::new();
        for variant in all_variants() {
            let mut j = SAJoin::new(variant, 80, 0, 0, 2);
            let out = run(&mut j, input.clone());
            let mut pairs = joined_pairs(&out);
            pairs.sort_unstable();
            outs.push(pairs);
        }
        assert_eq!(outs[0], outs[1], "PF vs FP");
        assert_eq!(outs[0], outs[2], "PF vs Index");
        assert!(!outs[0].is_empty(), "the workload should produce joins");
    }

    #[test]
    fn output_policies_are_shared_between_identical_results() {
        let mut j = SAJoin::new(JoinVariant::Index, 1000, 0, 0, 2);
        let out = run(
            &mut j,
            vec![
                (0, pol(&[1], 0)),
                (0, tup(1, 10, 1, 42)),
                (0, tup(1, 11, 2, 42)),
                (1, pol(&[1], 0)),
                (1, tup(2, 20, 3, 42)),
            ],
        );
        // Two join results, one shared output punctuation.
        assert_eq!(joined_pairs(&out).len(), 2);
        assert_eq!(out.iter().filter(|e| e.as_policy().is_some()).count(), 1);
    }

    #[test]
    fn tuples_before_any_punctuation_are_denied() {
        for variant in all_variants() {
            let mut j = SAJoin::new(variant, 1000, 0, 0, 2);
            let out = run(
                &mut j,
                vec![
                    (0, tup(1, 10, 1, 42)), // no sp yet: deny-all
                    (1, pol(&[1], 0)),
                    (1, tup(2, 20, 2, 42)),
                ],
            );
            assert!(joined_pairs(&out).is_empty(), "{variant:?}");
        }
    }

    #[test]
    fn attribute_grants_shift_in_output_policy() {
        let left_policy = Policy::tuple_level(RoleSet::from([1]), Timestamp(0));
        let right_policy = Policy::tuple_level(RoleSet::from([1]), Timestamp(0))
            .with_attr_grant(1, RoleSet::from([9]));
        let mut j = SAJoin::new(JoinVariant::NestedLoopPF, 1000, 0, 0, 2);
        let out = run(
            &mut j,
            vec![
                (0, Element::policy(SegmentPolicy::uniform(left_policy))),
                (0, tup(1, 10, 1, 42)),
                (1, Element::policy(SegmentPolicy::uniform(right_policy))),
                (1, tup(2, 20, 2, 42)),
            ],
        );
        let seg = out.iter().find_map(|e| e.as_policy()).unwrap();
        let p = seg.as_uniform().unwrap();
        // Right attr 1 shifted by left arity (2) → output attr 3; the
        // grant is intersected with the left tuple policy's roles, and role
        // 9 cannot see the left base tuple, so it must NOT survive.
        assert!(!p.allows_attr(3, &RoleSet::from([9])));
        assert!(p.allows(&RoleSet::from([1])));
    }

    #[test]
    fn scoped_segments_join_correctly_through_the_index() {
        use crate::element::PolicyEntry;
        use sp_pattern::Pattern;
        // A right-side segment with TWO scoped entries whose role sets both
        // intersect the probe policy: the per-probe visited guard must
        // prevent double-joining tuples of that segment.
        let seg = SegmentPolicy::new(
            vec![
                PolicyEntry {
                    scope: Pattern::numeric_range(0, 10),
                    policy: std::sync::Arc::new(Policy::tuple_level(
                        RoleSet::from([1, 2]),
                        Timestamp(0),
                    )),
                },
                PolicyEntry {
                    scope: Pattern::numeric_range(11, 99),
                    policy: std::sync::Arc::new(Policy::tuple_level(
                        RoleSet::from([1, 3]),
                        Timestamp(0),
                    )),
                },
            ],
            Timestamp(0),
        );
        for variant in all_variants() {
            let mut j = SAJoin::new(variant, 10_000, 0, 0, 2);
            let out = run(
                &mut j,
                vec![
                    (1, Element::policy(seg.clone())),
                    (1, tup(2, 5, 1, 42)),  // governed by entry 1 ({1,2})
                    (1, tup(2, 50, 2, 42)), // governed by entry 2 ({1,3})
                    (0, pol(&[1], 0)),
                    (0, tup(1, 7, 3, 42)), // probe with roles {1}
                ],
            );
            let pairs = joined_pairs(&out);
            assert_eq!(pairs.len(), 2, "{variant:?}: each partner exactly once");
            assert!(pairs.contains(&(7, 5)) && pairs.contains(&(7, 50)), "{variant:?}");
        }
    }

    #[test]
    fn scoped_segment_denies_out_of_scope_window_tuples() {
        let seg = SegmentPolicy::new(
            vec![crate::element::PolicyEntry {
                scope: sp_pattern::Pattern::numeric_range(0, 10),
                policy: std::sync::Arc::new(Policy::tuple_level(RoleSet::from([1]), Timestamp(0))),
            }],
            Timestamp(0),
        );
        for variant in all_variants() {
            let mut j = SAJoin::new(variant, 10_000, 0, 0, 2);
            let out = run(
                &mut j,
                vec![
                    (1, Element::policy(seg.clone())),
                    (1, tup(2, 99, 1, 42)), // OUT of scope → deny-all in window
                    (0, pol(&[1], 0)),
                    (0, tup(1, 7, 2, 42)),
                ],
            );
            assert!(
                joined_pairs(&out).is_empty(),
                "{variant:?}: deny-all window tuples never join"
            );
        }
    }

    #[test]
    fn row_windows_keep_the_last_n_tuples() {
        use crate::window::WindowSpec;
        for variant in all_variants() {
            let mut j = SAJoin::new(variant, 0, 0, 0, 2).with_window(WindowSpec::Rows(2));
            let out = run(
                &mut j,
                vec![
                    (0, pol(&[1], 0)),
                    (0, tup(1, 10, 1, 41)),
                    (0, tup(1, 11, 2, 42)),
                    (0, tup(1, 12, 3, 43)), // evicts the key-41 tuple
                    (1, pol(&[1], 0)),
                    (1, tup(2, 20, 4, 41)), // partner evicted: no join
                    (1, tup(2, 21, 5, 43)), // joins
                ],
            );
            assert_eq!(joined_pairs(&out), vec![(12, 21)], "{variant:?}");
            assert!(j.window_sizes().0 <= 2, "{variant:?}");
        }
    }

    #[test]
    fn state_memory_reflects_windows() {
        let mut j = SAJoin::new(JoinVariant::Index, 1000, 0, 0, 2);
        let empty = j.state_mem_bytes();
        let _ = run(&mut j, vec![(0, pol(&[1], 0)), (0, tup(1, 10, 1, 42))]);
        assert!(j.state_mem_bytes() > empty);
        assert_eq!(j.arity(), 2);
        assert_eq!(j.name(), "sajoin");
        assert_eq!(j.variant(), JoinVariant::Index);
    }
}
