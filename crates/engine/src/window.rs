//! Sliding-window specifications.
//!
//! The paper's operators use time-based sliding windows (`[RANGE n
//! SECONDS]`), which is what the CQL layer exposes. The engine additionally
//! supports the other standard CQL window type, count-based (`ROWS n`):
//! the state holds the most recent `n` tuples. Stateful operators accept a
//! [`WindowSpec`] and apply the matching expiry discipline:
//!
//! * `Time(w)` — a tuple expires once the stream reaches `ts > t.ts + w`;
//! * `Rows(n)` — inserting the `n+1`-th tuple evicts the oldest.

use sp_core::Timestamp;

/// A sliding-window specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSpec {
    /// Time-based: keep tuples newer than `now − ms`.
    Time(u64),
    /// Count-based: keep the most recent `n` tuples.
    Rows(usize),
}

impl WindowSpec {
    /// The horizon below which tuples expire for a time window at `now`;
    /// `None` for row windows (which expire by count, not time).
    #[must_use]
    pub fn horizon(&self, now: Timestamp) -> Option<Timestamp> {
        match self {
            WindowSpec::Time(ms) => Some(now.minus(*ms)),
            WindowSpec::Rows(_) => None,
        }
    }

    /// The row capacity, for count windows.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        match self {
            WindowSpec::Time(_) => None,
            WindowSpec::Rows(n) => Some(*n),
        }
    }
}

impl From<u64> for WindowSpec {
    /// Milliseconds convert to a time window (the paper's default).
    fn from(ms: u64) -> Self {
        WindowSpec::Time(ms)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn horizons_and_capacities() {
        let time = WindowSpec::Time(100);
        assert_eq!(time.horizon(Timestamp(250)), Some(Timestamp(150)));
        assert_eq!(time.horizon(Timestamp(50)), Some(Timestamp(0)), "saturates");
        assert_eq!(time.capacity(), None);

        let rows = WindowSpec::Rows(8);
        assert_eq!(rows.horizon(Timestamp(250)), None);
        assert_eq!(rows.capacity(), Some(8));

        let converted: WindowSpec = 500u64.into();
        assert_eq!(converted, WindowSpec::Time(500));
    }
}
