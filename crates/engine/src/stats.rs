//! Per-operator cost accounting.
//!
//! The evaluation figures (Figs. 8 and 9) report per-operator processing
//! time broken down by cause — tuple processing, sp processing, join
//! probing, state maintenance. Every operator owns an [`OperatorStats`] and
//! charges elapsed time into named buckets; the bench harness reads these to
//! regenerate the paper's cost breakdowns.

use std::time::{Duration, Instant};

/// Cost buckets distinguished by the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostKind {
    /// Processing data tuples (predicate checks, projections, probes).
    Tuple,
    /// Processing security punctuations / segment policies.
    Sp,
    /// Join probing and result construction (SAJoin breakdown).
    Join,
    /// Punctuation/index maintenance in stateful operators.
    SpMaintenance,
    /// Window/tuple state maintenance (insertion + invalidation).
    TupleMaintenance,
}

/// Mutable counters for one operator instance.
#[derive(Debug, Default, Clone)]
pub struct OperatorStats {
    /// Tuples processed.
    pub tuples_in: u64,
    /// Tuples emitted.
    pub tuples_out: u64,
    /// Policies (sp-batches) processed.
    pub sps_in: u64,
    /// Policies emitted.
    pub sps_out: u64,
    /// Tuples discarded by access control.
    pub tuples_shielded: u64,
    tuple_time: Duration,
    sp_time: Duration,
    join_time: Duration,
    sp_maint_time: Duration,
    tuple_maint_time: Duration,
}

impl OperatorStats {
    /// Fresh counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `elapsed` into the given bucket.
    pub fn charge(&mut self, kind: CostKind, elapsed: Duration) {
        match kind {
            CostKind::Tuple => self.tuple_time += elapsed,
            CostKind::Sp => self.sp_time += elapsed,
            CostKind::Join => self.join_time += elapsed,
            CostKind::SpMaintenance => self.sp_maint_time += elapsed,
            CostKind::TupleMaintenance => self.tuple_maint_time += elapsed,
        }
    }

    /// Runs `f`, charging its wall time into `kind`.
    pub fn timed<T>(&mut self, kind: CostKind, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.charge(kind, start.elapsed());
        out
    }

    /// Time spent in the given bucket.
    #[must_use]
    pub fn time(&self, kind: CostKind) -> Duration {
        match kind {
            CostKind::Tuple => self.tuple_time,
            CostKind::Sp => self.sp_time,
            CostKind::Join => self.join_time,
            CostKind::SpMaintenance => self.sp_maint_time,
            CostKind::TupleMaintenance => self.tuple_maint_time,
        }
    }

    /// Total time across all buckets.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.tuple_time + self.sp_time + self.join_time + self.sp_maint_time + self.tuple_maint_time
    }

    /// Serializes the five logical counters (big-endian `u64`s) for an
    /// epoch checkpoint. The wall-clock cost buckets are deliberately
    /// excluded: they are host-dependent measurements, not replayable
    /// state, and including them would break byte-identical checkpoint
    /// comparison across runs.
    pub fn encode_counters(&self, buf: &mut Vec<u8>) {
        for v in [self.tuples_in, self.tuples_out, self.sps_in, self.sps_out, self.tuples_shielded]
        {
            buf.extend_from_slice(&v.to_be_bytes());
        }
    }

    /// Restores the logical counters written by
    /// [`OperatorStats::encode_counters`], leaving time buckets untouched.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn decode_counters(&mut self, buf: &mut impl bytes::Buf) -> Result<(), String> {
        if buf.remaining() < 5 * 8 {
            return Err("truncated operator counters".into());
        }
        self.tuples_in = buf.get_u64();
        self.tuples_out = buf.get_u64();
        self.sps_in = buf.get_u64();
        self.sps_out = buf.get_u64();
        self.tuples_shielded = buf.get_u64();
        Ok(())
    }

    /// Merges another operator's counters into this one.
    pub fn merge(&mut self, other: &OperatorStats) {
        self.tuples_in += other.tuples_in;
        self.tuples_out += other.tuples_out;
        self.sps_in += other.sps_in;
        self.sps_out += other.sps_out;
        self.tuples_shielded += other.tuples_shielded;
        self.tuple_time += other.tuple_time;
        self.sp_time += other.sp_time;
        self.join_time += other.join_time;
        self.sp_maint_time += other.sp_maint_time;
        self.tuple_maint_time += other.tuple_maint_time;
    }
}

/// Counters describing **fail-closed degradation**: what the engine
/// refused to release (rather than guessed at) when the stream
/// misbehaved — lost/late sps, out-of-order arrivals, corrupted frames.
///
/// Aggregated per stream by the SP Analyzer and summed across a plan by
/// `Executor::degradation`; the evaluation harness prints them so every
/// run makes its losses visible instead of silently under-reporting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DegradationStats {
    /// Punctuations dropped because their DDP named another stream.
    pub sps_filtered: u64,
    /// Segment policies suppressed as identical to the previous one.
    pub sps_merged: u64,
    /// Sp-batches discarded for arriving older than the current policy
    /// (hardened mode: a late batch must not roll authorizations back).
    pub stale_sp_batches: u64,
    /// Tuples held back because no fresh-enough policy governed them.
    pub quarantined: u64,
    /// Quarantined tuples released when their policy arrived in time.
    pub quarantine_released: u64,
    /// Quarantined tuples dropped — timed out, or evicted by the
    /// quarantine capacity bound. Never released unshielded.
    pub quarantine_dropped: u64,
    /// Elements dropped by a `ReorderBuffer` for arriving too late.
    pub reorder_dropped: u64,
    /// Wire frames lost to corruption (from `sp_core::wire::FrameDecoder`).
    pub corrupted_frames: u64,
    /// Epoch checkpoints persisted by a supervisor.
    pub checkpoints_taken: u64,
    /// Checkpoints restored into a rebuilt pipeline after a crash.
    pub checkpoints_restored: u64,
    /// Epochs re-processed from source replay during recovery.
    pub epochs_replayed: u64,
    /// Input elements refused (never processed) because recovery entered
    /// its terminal fail-closed state. Lost, never leaked.
    pub recovery_dropped: u64,
    /// Pipeline restart attempts made by a supervisor.
    pub restart_attempts: u64,
    /// Data tuples dropped by a load shedder. Policies/sps are control
    /// traffic and are never counted here — a shedder that drops one is
    /// broken, and the overload proptests prove the harness catches it.
    pub shed_tuples: u64,
    /// Tuples shed at the top rungs of the degradation ladder
    /// (CriticalShedding discards predicate-unmatched tuples, FailClosed
    /// refuses all data). A subset of [`DegradationStats::shed_tuples`].
    pub shed_critical: u64,
    /// Data tuples refused by the admission controller at the ingestion
    /// boundary (typed `Overloaded { retry_after }`, never buffered).
    pub admission_rejected: u64,
    /// Degradation-ladder escalations (one per upward rung transition).
    pub ladder_escalations: u64,
    /// Degradation-ladder recoveries (one per downward rung transition).
    pub ladder_recoveries: u64,
    /// Highest ladder rung reached: 0 Normal, 1 Shedding,
    /// 2 CriticalShedding, 3 FailClosed. `absorb` takes the max.
    pub overload_peak: u64,
    /// Current ladder rung at the time the stats were read (same scale as
    /// [`DegradationStats::overload_peak`]). `absorb` takes the max.
    pub overload_level: u64,
}

impl DegradationStats {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates another block of counters into this one.
    pub fn absorb(&mut self, other: &DegradationStats) {
        self.sps_filtered += other.sps_filtered;
        self.sps_merged += other.sps_merged;
        self.stale_sp_batches += other.stale_sp_batches;
        self.quarantined += other.quarantined;
        self.quarantine_released += other.quarantine_released;
        self.quarantine_dropped += other.quarantine_dropped;
        self.reorder_dropped += other.reorder_dropped;
        self.corrupted_frames += other.corrupted_frames;
        self.checkpoints_taken += other.checkpoints_taken;
        self.checkpoints_restored += other.checkpoints_restored;
        self.epochs_replayed += other.epochs_replayed;
        self.recovery_dropped += other.recovery_dropped;
        self.restart_attempts += other.restart_attempts;
        self.shed_tuples += other.shed_tuples;
        self.shed_critical += other.shed_critical;
        self.admission_rejected += other.admission_rejected;
        self.ladder_escalations += other.ladder_escalations;
        self.ladder_recoveries += other.ladder_recoveries;
        self.overload_peak = self.overload_peak.max(other.overload_peak);
        self.overload_level = self.overload_level.max(other.overload_level);
    }

    /// Every counter paired with a stable metric name, in declaration
    /// order — the telemetry layer's export surface, so a new counter
    /// added here shows up in the Prometheus/JSON snapshots without
    /// further wiring. The last two (`overload_peak`, `overload_level`)
    /// are gauges combined by max in [`DegradationStats::absorb`], not
    /// monotone counts.
    #[must_use]
    pub fn named_counters(&self) -> [(&'static str, u64); 20] {
        [
            ("sps_filtered", self.sps_filtered),
            ("sps_merged", self.sps_merged),
            ("stale_sp_batches", self.stale_sp_batches),
            ("quarantined", self.quarantined),
            ("quarantine_released", self.quarantine_released),
            ("quarantine_dropped", self.quarantine_dropped),
            ("reorder_dropped", self.reorder_dropped),
            ("corrupted_frames", self.corrupted_frames),
            ("checkpoints_taken", self.checkpoints_taken),
            ("checkpoints_restored", self.checkpoints_restored),
            ("epochs_replayed", self.epochs_replayed),
            ("recovery_dropped", self.recovery_dropped),
            ("restart_attempts", self.restart_attempts),
            ("shed_tuples", self.shed_tuples),
            ("shed_critical", self.shed_critical),
            ("admission_rejected", self.admission_rejected),
            ("ladder_escalations", self.ladder_escalations),
            ("ladder_recoveries", self.ladder_recoveries),
            ("overload_peak", self.overload_peak),
            ("overload_level", self.overload_level),
        ]
    }

    /// Total elements lost (not merely delayed) to degradation.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.sps_filtered
            + self.stale_sp_batches
            + self.quarantine_dropped
            + self.reorder_dropped
            + self.corrupted_frames
            + self.recovery_dropped
            + self.shed_tuples
            + self.admission_rejected
    }
}

impl std::fmt::Display for DegradationStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sps filtered {} / merged {} / stale {}; quarantine in {} out {} dropped {}; \
             reorder dropped {}; corrupted frames {}; checkpoints taken {} restored {}; \
             epochs replayed {}; recovery dropped {}; restarts {}; shed {} (critical {}); \
             admission rejected {}; ladder up {} down {} peak {} level {}",
            self.sps_filtered,
            self.sps_merged,
            self.stale_sp_batches,
            self.quarantined,
            self.quarantine_released,
            self.quarantine_dropped,
            self.reorder_dropped,
            self.corrupted_frames,
            self.checkpoints_taken,
            self.checkpoints_restored,
            self.epochs_replayed,
            self.recovery_dropped,
            self.restart_attempts,
            self.shed_tuples,
            self.shed_critical,
            self.admission_rejected,
            self.ladder_escalations,
            self.ladder_recoveries,
            self.overload_peak,
            self.overload_level,
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn degradation_absorbs_and_totals() {
        let mut a = DegradationStats::new();
        a.quarantined = 3;
        a.quarantine_dropped = 2;
        let mut b = DegradationStats::new();
        b.quarantine_dropped = 1;
        b.reorder_dropped = 4;
        b.corrupted_frames = 5;
        a.absorb(&b);
        assert_eq!(a.quarantine_dropped, 3);
        assert_eq!(a.total_dropped(), 3 + 4 + 5);
        assert!(a.to_string().contains("dropped 3"));
    }

    #[test]
    fn overload_counters_absorb_and_total() {
        let mut a = DegradationStats::new();
        a.shed_tuples = 10;
        a.shed_critical = 4;
        a.overload_peak = 3;
        a.overload_level = 0;
        let mut b = DegradationStats::new();
        b.shed_tuples = 5;
        b.admission_rejected = 7;
        b.ladder_escalations = 2;
        b.ladder_recoveries = 2;
        b.overload_peak = 1;
        b.overload_level = 1;
        a.absorb(&b);
        assert_eq!(a.shed_tuples, 15);
        assert_eq!(a.admission_rejected, 7);
        assert_eq!(a.overload_peak, 3, "peak takes the max");
        assert_eq!(a.overload_level, 1, "level takes the max");
        assert_eq!(a.total_dropped(), 15 + 7);
        let line = a.to_string();
        assert!(line.contains("shed 15 (critical 4)"), "{line}");
        assert!(line.contains("admission rejected 7"), "{line}");
        assert!(line.contains("ladder up 2 down 2 peak 3"), "{line}");
    }

    #[test]
    fn charge_and_read() {
        let mut s = OperatorStats::new();
        s.charge(CostKind::Tuple, Duration::from_millis(3));
        s.charge(CostKind::Sp, Duration::from_millis(2));
        s.charge(CostKind::Join, Duration::from_millis(1));
        assert_eq!(s.time(CostKind::Tuple), Duration::from_millis(3));
        assert_eq!(s.total_time(), Duration::from_millis(6));
    }

    #[test]
    fn timed_charges_elapsed() {
        let mut s = OperatorStats::new();
        let v = s.timed(CostKind::TupleMaintenance, || 42);
        assert_eq!(v, 42);
        assert!(s.time(CostKind::TupleMaintenance) > Duration::ZERO);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = OperatorStats::new();
        a.tuples_in = 5;
        a.charge(CostKind::SpMaintenance, Duration::from_millis(1));
        let mut b = OperatorStats::new();
        b.tuples_in = 7;
        b.tuples_shielded = 2;
        b.charge(CostKind::SpMaintenance, Duration::from_millis(2));
        a.merge(&b);
        assert_eq!(a.tuples_in, 12);
        assert_eq!(a.tuples_shielded, 2);
        assert_eq!(a.time(CostKind::SpMaintenance), Duration::from_millis(3));
    }
}
