//! Segment-run batches: the unit of dataflow between operators.
//!
//! The paper's algebra operates on *s-punctuated segments* — runs of
//! tuples governed by one sp-batch. The executor exploits that shape: it
//! moves [`ElementBatch`]es (contiguous runs of same-kind elements, cut at
//! sp-batch / punctuation / epoch boundaries) instead of single
//! [`Element`]s, amortizing queue traffic, dispatch, timing, and telemetry
//! sampling over whole runs.
//!
//! Batches are **kind-homogeneous** by construction: a batch holds only
//! tuples or only segment policies, never both. The cutters
//! ([`ElementBatch::accepts`]-guarded coalescing in the executor and the
//! parallel feeder) start a new batch at every policy boundary, so one
//! batch never spans two segments' punctuations. Homogeneity is what lets
//! the parallel runner class a whole batch as control (policies) or data
//! (tuples) on its bounded channels, and what lets the Security Shield
//! release or suppress an entire run under one cached verdict.
//!
//! The representation is a two-variant inline/heap enum rather than an
//! external small-vector type (the workspace vendors no `smallvec`): the
//! dominant tuple-at-a-time case — a batch of one — stores its element
//! inline with no heap allocation, and only multi-element runs spill to a
//! `Vec`.

use crate::element::Element;

/// A contiguous run of same-kind elements travelling an edge together.
///
/// Equivalence invariant: processing a batch through
/// [`Operator::process_batch`](crate::operator::Operator::process_batch)
/// is observationally identical to processing its elements one at a time
/// through [`Operator::process`](crate::operator::Operator::process) —
/// same emitted elements, same logical counters, same audit records, same
/// snapshot bytes. Only wall-clock cost buckets (excluded from canonical
/// encodings) may differ.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementBatch {
    inner: Inner,
}

#[derive(Debug, Clone, PartialEq)]
enum Inner {
    /// A batch of one, stored inline — no heap allocation in
    /// tuple-at-a-time mode or for lone policy elements.
    One(Element),
    /// A multi-element run.
    Many(Vec<Element>),
}

/// Initial spill capacity when a singleton batch grows into a run.
const SPILL_CAPACITY: usize = 8;

impl ElementBatch {
    /// A batch holding one element (inline, no allocation).
    #[must_use]
    pub fn single(elem: Element) -> Self {
        Self { inner: Inner::One(elem) }
    }

    /// A batch from a pre-collected run.
    ///
    /// # Panics
    ///
    /// Debug-asserts the run is kind-homogeneous and non-empty.
    #[must_use]
    pub fn from_run(run: Vec<Element>) -> Self {
        debug_assert!(!run.is_empty(), "empty batches are never routed");
        debug_assert!(
            run.windows(2).all(|w| w[0].is_tuple() == w[1].is_tuple()),
            "batches are kind-homogeneous"
        );
        Self { inner: Inner::Many(run) }
    }

    /// True when `elem` may join this batch without breaking the
    /// homogeneity invariant (same kind as the elements already held).
    #[must_use]
    pub fn accepts(&self, elem: &Element) -> bool {
        match &self.inner {
            Inner::One(e) => e.is_tuple() == elem.is_tuple(),
            Inner::Many(v) => v.last().is_none_or(|e| e.is_tuple() == elem.is_tuple()),
        }
    }

    /// Appends an element, spilling an inline singleton to the heap.
    ///
    /// Callers routing batches must guard with [`ElementBatch::accepts`];
    /// `push` itself does not enforce homogeneity (the differential tests
    /// deliberately build mixed batches to prove `process_batch` stays
    /// correct on them).
    pub fn push(&mut self, elem: Element) {
        match &mut self.inner {
            Inner::Many(v) => v.push(elem),
            Inner::One(_) => {
                let Inner::One(first) = std::mem::replace(&mut self.inner, Inner::Many(Vec::new()))
                else {
                    unreachable!()
                };
                let Inner::Many(v) = &mut self.inner else { unreachable!() };
                v.reserve(SPILL_CAPACITY);
                v.push(first);
                v.push(elem);
            }
        }
    }

    /// Number of elements in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::One(_) => 1,
            Inner::Many(v) => v.len(),
        }
    }

    /// True when the batch holds nothing (only possible for a drained
    /// `Many`; routed batches are never empty).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        match &self.inner {
            Inner::One(_) => false,
            Inner::Many(v) => v.is_empty(),
        }
    }

    /// The elements as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Element] {
        match &self.inner {
            Inner::One(e) => std::slice::from_ref(e),
            Inner::Many(v) => v.as_slice(),
        }
    }

    /// Borrowing iterator over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, Element> {
        self.as_slice().iter()
    }

    /// True when the batch holds only tuples (data class). A policy batch
    /// is control traffic; see
    /// [`ElementBatch::is_control`].
    #[must_use]
    pub fn is_tuples(&self) -> bool {
        self.as_slice().first().is_some_and(Element::is_tuple)
    }

    /// True when the batch carries control traffic (segment policies).
    /// Classed channels admit control batches unconditionally; a mixed
    /// batch (never produced by the routers) classes as control if any
    /// element is a policy, so sps can never be stalled by a data bound.
    #[must_use]
    pub fn is_control(&self) -> bool {
        self.iter().any(|e| !e.is_tuple())
    }
}

impl IntoIterator for ElementBatch {
    type Item = Element;
    type IntoIter = IntoIter;

    fn into_iter(self) -> IntoIter {
        match self.inner {
            Inner::One(e) => IntoIter::One(Some(e)),
            Inner::Many(v) => IntoIter::Many(v.into_iter()),
        }
    }
}

impl<'a> IntoIterator for &'a ElementBatch {
    type Item = &'a Element;
    type IntoIter = std::slice::Iter<'a, Element>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// By-value iterator over a batch's elements.
#[derive(Debug)]
pub enum IntoIter {
    /// Inline singleton.
    One(Option<Element>),
    /// Heap-spilled run.
    Many(std::vec::IntoIter<Element>),
}

impl Iterator for IntoIter {
    type Item = Element;

    fn next(&mut self) -> Option<Element> {
        match self {
            IntoIter::One(e) => e.take(),
            IntoIter::Many(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            IntoIter::One(e) => {
                let n = usize::from(e.is_some());
                (n, Some(n))
            }
            IntoIter::Many(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for IntoIter {}

/// Cuts a drained element sequence into kind-homogeneous run batches,
/// invoking `sink` for each completed batch in order. This is the batch
/// cutter used by the parallel workers: a run breaks wherever the element
/// kind flips (tuple↔policy), which is exactly an sp-batch boundary.
pub fn coalesce_runs<E>(
    elems: impl Iterator<Item = Element>,
    mut sink: impl FnMut(ElementBatch) -> Result<(), E>,
) -> Result<(), E> {
    let mut open: Option<ElementBatch> = None;
    for elem in elems {
        match &mut open {
            Some(batch) if batch.accepts(&elem) => batch.push(elem),
            Some(_) => {
                if let Some(done) = open.replace(ElementBatch::single(elem)) {
                    sink(done)?;
                }
            }
            None => open = Some(ElementBatch::single(elem)),
        }
    }
    if let Some(done) = open {
        sink(done)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::element::SegmentPolicy;
    use sp_core::{Policy, RoleSet, StreamId, Timestamp, Tuple, TupleId};

    fn tup(tid: u64) -> Element {
        Element::tuple(Tuple::new(StreamId(0), TupleId(tid), Timestamp(tid), vec![]))
    }

    fn pol(ts: u64) -> Element {
        Element::policy(SegmentPolicy::uniform(Policy::tuple_level(
            RoleSet::from([1]),
            Timestamp(ts),
        )))
    }

    #[test]
    fn singleton_stays_inline_and_spills_on_push() {
        let mut b = ElementBatch::single(tup(1));
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        assert!(b.is_tuples());
        assert!(!b.is_control());
        b.push(tup(2));
        b.push(tup(3));
        assert_eq!(b.len(), 3);
        let ids: Vec<u64> = b.iter().map(|e| e.as_tuple().unwrap().tid.raw()).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        let moved: Vec<Element> = b.into_iter().collect();
        assert_eq!(moved.len(), 3);
    }

    #[test]
    fn accepts_enforces_kind_homogeneity() {
        let b = ElementBatch::single(tup(1));
        assert!(b.accepts(&tup(2)));
        assert!(!b.accepts(&pol(1)));
        let p = ElementBatch::single(pol(1));
        assert!(p.accepts(&pol(2)));
        assert!(!p.accepts(&tup(1)));
        assert!(p.is_control());
        assert!(!p.is_tuples());
    }

    #[test]
    fn coalesce_cuts_at_kind_boundaries() {
        let elems = vec![pol(0), tup(1), tup(2), tup(3), pol(4), tup(5)];
        let mut batches = Vec::new();
        coalesce_runs::<()>(elems.into_iter(), |b| {
            batches.push(b);
            Ok(())
        })
        .unwrap();
        assert_eq!(batches.len(), 4);
        assert_eq!(batches.iter().map(ElementBatch::len).collect::<Vec<_>>(), vec![1, 3, 1, 1]);
        assert!(batches[0].is_control());
        assert!(batches[1].is_tuples());
        // Order survives the cut.
        let flat: Vec<Element> = batches.into_iter().flat_map(IntoIterator::into_iter).collect();
        assert_eq!(flat.len(), 6);
        assert!(!flat[0].is_tuple());
        assert!(flat[1].is_tuple());
    }

    #[test]
    fn from_run_and_exact_size_iter() {
        let b = ElementBatch::from_run(vec![tup(1), tup(2)]);
        let it = b.clone().into_iter();
        assert_eq!(it.len(), 2);
        assert_eq!(b.as_slice().len(), 2);
        let one = ElementBatch::single(pol(1)).into_iter();
        assert_eq!(one.len(), 1);
    }
}
