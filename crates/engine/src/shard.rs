//! Key-partitioned shard scale-out with a deterministic exchange merge.
//!
//! [`run_parallel`](crate::parallel::run_parallel) caps out at pipeline
//! parallelism — one worker per operator stage, throughput bounded by the
//! slowest stage. This module scales *out* instead: the
//! [`ShardedExecutor`] runs N full replicas of a (shard-safe) plan, a
//! [`Partitioner`] routes each tuple run to the shard owning its key,
//! and a seq-ordered exchange merge reassembles one deterministic output
//! stream. The design goal is the same as every other runtime in this
//! crate: **sharded execution is observationally identical to sequential
//! execution** — released set, policy table, audit trail, and span sheet
//! are byte-identical at any shard count.
//!
//! # Who runs what
//!
//! * **The coordinator** (the caller's thread) owns the *canonical*
//!   front half of the plan: every sp-analyzer runs here, once, exactly
//!   as in the sequential executor. Analyzer state is tuple-dependent
//!   (its stream clock advances on tuples, and quarantine rings hold
//!   tuples), so per-shard analyzer replicas would diverge; centralizing
//!   them makes analyzer snapshots, hardened-source quarantine, and the
//!   `Source` sections of the audit trail exactly sequential. The
//!   coordinator also owns the canonical sinks and the canonical
//!   per-node flight/span recorders, all fed in seq order from the
//!   merged delta stream.
//! * **Shard workers** each own a full [`Executor`] built from an
//!   identical [`PlanBuilder`]. Analyzed elements are injected past the
//!   (unused) shard-local analyzers. After each injected run a worker
//!   extracts a *delta* — new sink output, new audit records, new spans
//!   — and ships it downstream tagged with the run's global seq.
//! * **The exchange merge** k-way-merges the per-shard delta streams by
//!   seq (per-shard seqs are monotone, so waiting for one head per live
//!   shard suffices) and forwards one totally ordered delta stream to
//!   the coordinator.
//!
//! # Broadcast semantics
//!
//! Tuple runs go to exactly one shard; security punctuations (policy
//! elements emitted by the analyzers), sync markers, and checkpoint
//! barriers are **broadcast to every shard under one seq**. Every shard
//! therefore sees every policy in the same stream position, which is
//! what keeps replicated operator policy state byte-identical — and the
//! executor *verifies* that at every barrier, failing closed with
//! [`EngineError::ShardDivergence`] if replicas ever disagree.
//!
//! # Delayed sp propagation under partitioning
//!
//! Select and the Security Shield flush their buffered policy before the
//! **first surviving tuple** of its segment (§IV-B) — a tuple-dependent
//! event, so under partitioning each shard flushes independently when
//! *its* partition produces a survivor. Two consequences, both handled
//! at the coordinator: the same policy may reach a sink once per shard
//! (seq order equals input order, so the *first* flush in merged order
//! lands exactly at the sequential position; later copies are dropped),
//! and replicas legitimately disagree on the pending-policy snapshot
//! (merged semantically via [`Operator::merge_shard_state`]: flushed
//! anywhere ⇒ flushed canonically). This is only sound when the flushes
//! reach a coordinator-owned sink through *policy-transparent*
//! operators only ([`Operator::policy_transparent`]: 1:1 deterministic
//! sp forwarding, as projection and eager selection practise — so
//! duplicate flushes stay byte-equal all the way down), with sole
//! ownership at every step. The builder refuses — fail-closed — any
//! plan that places a delayed-propagation operator
//! ([`Operator::delays_sps`]) upstream of a non-transparent operator,
//! and any path carrying *two* delaying operators (the downstream
//! one's pending policy diverges in value per shard).
//!
//! # Checkpoints span all shards, and re-shard on restore
//!
//! A checkpoint barrier is broadcast like any other control element, so
//! it cuts every shard at the same seq. Per-node shard snapshots are
//! *canonicalized* — tuple counters summed across shards, sp counters
//! taken from shard 0 (every shard sees every sp), policy-state bytes
//! verified identical — so the resulting [`Checkpoint`] is byte-for-byte
//! the checkpoint the sequential executor would have written at the same
//! input position. That makes re-sharding trivial: a cut taken at N
//! shards restores at any M (shard 0 carries the restored counter base;
//! other shards restart their counters at zero so sums stay exact), and
//! restoring the same cut sequentially works too.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::mpsc::{
    channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError,
};
use std::time::Instant;

use sp_core::{StreamElement, StreamId, Tuple};

use crate::batch::ElementBatch;
use crate::checkpoint::Checkpoint;
use crate::element::Element;
use crate::error::EngineError;
use crate::operator::{Emitter, Operator};
use crate::ops::Sink;
use crate::parallel::{join_with_deadline, DRAIN_TIMEOUT, STALL_DEADLINE};
use crate::plan::{Executor, PlanBuilder, SinkRef};
use crate::stats::DegradationStats;
use crate::telemetry::{
    merge_recorders, AuditOp, AuditRecord, AuditTrail, FlightRecorder, MetricsRegistry, SpanRecord,
    SpanRecorder, SpanSheet,
};

/// Envelopes per channel send: the coordinator buffers this many routed
/// runs per shard before flushing, amortizing channel overhead.
const CHUNK: usize = 64;

/// Bounded depth (in chunks) of each shard's input queue — the
/// backpressure bound, playing the role of
/// [`EDGE_CAPACITY`](crate::parallel::EDGE_CAPACITY).
const SHARD_QUEUE_CHUNKS: usize = 64;

/// Minimum ring capacity for *shard-local* recorders. Workers extract
/// new records after every injected run, so a shard ring only needs to
/// hold one run's worth of records plus unextracted history; a generous
/// floor keeps eviction from ever racing extraction. (The canonical
/// recorders use the caller's configured capacity, so trail encodings
/// still match sequential runs exactly.)
const SHARD_RECORDER_SLACK: usize = 4096;

/// The counter prefix every stateful operator snapshot starts with:
/// 5 × u64 ([`crate::stats::OperatorStats`] counters).
const COUNTER_PREFIX: usize = 40;

/// Per-shard node snapshot sections gathered at a barrier.
type BarrierSections = Vec<(usize, Vec<Vec<u8>>)>;

/// A control-marker echo surfaced while applying merged messages:
/// `(marker id, barrier sections if the marker was a barrier)`.
type MarkerEcho = Option<(u64, Option<BarrierSections>)>;

/// Stable key-hash router: maps each tuple to the shard that owns its
/// key, by FNV-1a over `(sid, tid)`. Pure and deterministic — the same
/// tuple routes to the same shard in every run at a given shard count —
/// and keyed on the data-provider id, so all tuples sharing a policy
/// key stay on one shard.
#[derive(Debug, Clone, Copy)]
pub struct Partitioner {
    shards: u64,
}

impl Partitioner {
    /// A partitioner over `shards` shards (at least 1).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self { shards: shards.max(1) as u64 }
    }

    /// Number of shards.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)] // constructed from usize
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// The shard owning `tuple`'s key.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)] // result < self.shards
    pub fn shard_of(&self, tuple: &Tuple) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tuple.sid.raw().to_be_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        for b in tuple.tid.raw().to_be_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        (h % self.shards) as usize
    }
}

/// One routed unit of work for a shard worker.
enum ShardIn {
    /// An analyzed run to inject at source slot `source`. `broadcast`
    /// runs (policy elements) arrive at every shard under the same seq.
    Data { seq: u64, broadcast: bool, source: usize, batch: ElementBatch },
    /// Read-synchronization marker: echo back, no state change.
    Sync { seq: u64, id: u64 },
    /// Checkpoint barrier: snapshot every node and echo the sections.
    Barrier { seq: u64, id: u64 },
}

/// One shard's observable increment for one seq.
struct Delta {
    seq: u64,
    broadcast: bool,
    /// New sink output per sink slot, in delivery order.
    sinks: Vec<(usize, Vec<Element>)>,
    /// New audit records per node slot, in record order.
    audit: Vec<(u32, Vec<AuditRecord>)>,
    /// New spans per node slot, in record order.
    spans: Vec<(u32, Vec<SpanRecord>)>,
}

/// Worker → exchange messages.
enum ShardOut {
    Delta(Delta),
    Sync { seq: u64, id: u64 },
    Barrier { seq: u64, id: u64, nodes: Vec<Vec<u8>> },
    Fatal(EngineError),
}

impl ShardOut {
    fn seq(&self) -> u64 {
        match self {
            Self::Delta(d) => d.seq,
            Self::Sync { seq, .. } | Self::Barrier { seq, .. } => *seq,
            Self::Fatal(_) => u64::MAX,
        }
    }

    fn is_broadcast(&self) -> bool {
        match self {
            Self::Delta(d) => d.broadcast,
            Self::Sync { .. } | Self::Barrier { .. } => true,
            Self::Fatal(_) => false,
        }
    }
}

/// Exchange → coordinator messages: the merged, totally ordered stream.
enum MergedOut {
    Delta(Delta),
    Sync {
        id: u64,
    },
    /// Barrier echoes from every shard: `(shard, per-node sections)`.
    Barrier {
        id: u64,
        nodes: BarrierSections,
    },
    Fatal(EngineError),
}

/// Extraction cursors for one shard's recorders: total records ever
/// recorded (`len + evicted`) at the last extraction, per node slot.
struct Cursors {
    audit: Vec<u64>,
    spans: Vec<u64>,
}

/// Pulls the records a recorder gained since `cursor`, advancing it.
/// Fails closed if the ring already evicted unextracted records (cannot
/// happen below [`SHARD_RECORDER_SLACK`]-sized runs, but a silent gap
/// would corrupt the canonical trail, so it is an error, not a guess).
fn extract_new<R: Copy>(
    records: impl Iterator<Item = R>,
    len: u64,
    evicted: u64,
    cursor: &mut u64,
    stage: &str,
) -> Result<Vec<R>, EngineError> {
    let total = len + evicted;
    if evicted > *cursor {
        return Err(EngineError::ShardDivergence {
            stage: stage.to_string(),
            reason: "recorder ring evicted records between exchange extractions".to_string(),
        });
    }
    let new = total - *cursor;
    *cursor = total;
    #[allow(clippy::cast_possible_truncation)] // new <= len <= ring size
    Ok(records.skip((len - new) as usize).collect())
}

/// Extracts one shard's delta after an injected run.
fn extract_delta(
    exec: &mut Executor,
    seq: u64,
    broadcast: bool,
    cursors: &mut Cursors,
) -> Result<Delta, EngineError> {
    let mut audit = Vec::new();
    let mut spans = Vec::new();
    #[allow(clippy::cast_possible_truncation)] // plan slots fit u32
    for i in 0..exec.node_count() {
        if let Some(rec) = exec.node_op(i).audit() {
            let new = extract_new(
                rec.records().copied(),
                rec.len() as u64,
                rec.evicted(),
                &mut cursors.audit[i],
                &format!("node {i} audit"),
            )?;
            if !new.is_empty() {
                audit.push((i as u32, new));
            }
        }
        if let Some(rec) = exec.node_op(i).spans() {
            let new = extract_new(
                rec.records().copied(),
                rec.len() as u64,
                rec.evicted(),
                &mut cursors.spans[i],
                &format!("node {i} spans"),
            )?;
            if !new.is_empty() {
                spans.push((i as u32, new));
            }
        }
    }
    let mut sinks = Vec::new();
    for j in 0..exec.sink_count() {
        let out = exec.take_sink_elements(j);
        if !out.is_empty() {
            sinks.push((j, out));
        }
    }
    Ok(Delta { seq, broadcast, sinks, audit, spans })
}

/// One shard worker: inject runs, extract deltas, echo control markers.
/// Never blocks on output (the exchange channel is unbounded), so the
/// graph cannot deadlock through a worker.
fn run_shard(
    mut exec: Executor,
    rx: &Receiver<Vec<ShardIn>>,
    tx: &Sender<Vec<ShardOut>>,
) -> Result<(), EngineError> {
    let mut cursors =
        Cursors { audit: vec![0; exec.node_count()], spans: vec![0; exec.node_count()] };
    let mut out: Vec<ShardOut> = Vec::with_capacity(CHUNK);
    while let Ok(chunk) = rx.recv() {
        for msg in chunk {
            match msg {
                ShardIn::Data { seq, broadcast, source, batch } => {
                    let injected = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        exec.inject(source, batch)
                    }));
                    let result = match injected {
                        Ok(r) => r,
                        Err(payload) => {
                            Err(EngineError::from_panic("shard worker", payload.as_ref()))
                        }
                    };
                    let step = result
                        .and_then(|()| extract_delta(&mut exec, seq, broadcast, &mut cursors));
                    match step {
                        Ok(delta) => out.push(ShardOut::Delta(delta)),
                        Err(e) => {
                            out.push(ShardOut::Fatal(e.clone()));
                            let _ = tx.send(std::mem::take(&mut out));
                            return Err(e);
                        }
                    }
                }
                ShardIn::Sync { seq, id } => out.push(ShardOut::Sync { seq, id }),
                ShardIn::Barrier { seq, id } => {
                    let ckpt = exec.checkpoint(0, 0);
                    out.push(ShardOut::Barrier { seq, id, nodes: ckpt.nodes });
                }
            }
        }
        if tx.send(std::mem::take(&mut out)).is_err() {
            break; // coordinator gone: clean teardown
        }
    }
    Ok(())
}

/// The exchange: k-way merge of per-shard delta streams by seq.
/// Per-shard seqs are strictly increasing, so holding one head per live
/// shard and always emitting the minimum reproduces the coordinator's
/// routing order exactly. Broadcast seqs are consumed from *every* live
/// shard at once.
fn run_merge(rxs: &[Receiver<Vec<ShardOut>>], tx: &Sender<MergedOut>) {
    let n = rxs.len();
    let mut pending: Vec<VecDeque<ShardOut>> = (0..n).map(|_| VecDeque::new()).collect();
    let mut open = vec![true; n];
    loop {
        // Ensure a head per live shard (blocking: a shard with no head
        // either produces one or closes).
        let mut done = true;
        for k in 0..n {
            while open[k] && pending[k].is_empty() {
                match rxs[k].recv() {
                    Ok(chunk) => pending[k].extend(chunk),
                    Err(_) => open[k] = false,
                }
            }
            if !pending[k].is_empty() {
                done = false;
            }
        }
        if done {
            return;
        }
        // A worker death surfaces as a Fatal head: forward it first.
        for q in &mut pending {
            if matches!(q.front(), Some(ShardOut::Fatal(_))) {
                if let Some(ShardOut::Fatal(e)) = q.pop_front() {
                    let _ = tx.send(MergedOut::Fatal(e));
                }
                return;
            }
        }
        let Some(seq) = pending.iter().filter_map(|q| q.front().map(ShardOut::seq)).min() else {
            return;
        };
        let Some(first) = (0..n).find(|&k| pending[k].front().map(ShardOut::seq) == Some(seq))
        else {
            return;
        };
        let broadcast = pending[first].front().is_some_and(ShardOut::is_broadcast);
        if !broadcast {
            if let Some(ShardOut::Delta(d)) = pending[first].pop_front() {
                if tx.send(MergedOut::Delta(d)).is_err() {
                    return;
                }
            }
            continue;
        }
        // Broadcast: every live shard's head must be this seq. A live
        // shard at a different seq would still owe this one (per-shard
        // order is preserved), so a mismatch is a protocol violation —
        // fail closed.
        let live: Vec<usize> = (0..n).filter(|&k| open[k] || !pending[k].is_empty()).collect();
        if live.iter().any(|&k| pending[k].front().map(ShardOut::seq) != Some(seq)) {
            let _ = tx.send(MergedOut::Fatal(EngineError::ShardDivergence {
                stage: "exchange".to_string(),
                reason: format!("broadcast seq {seq} not aligned across shards"),
            }));
            return;
        }
        let mut first_delta: Option<Delta> = None;
        let mut sync_id = None;
        let mut barrier_id = None;
        let mut sections: BarrierSections = Vec::new();
        for &k in &live {
            match pending[k].pop_front() {
                // Replicated input ⇒ replicated output; keep the lowest
                // shard's copy (divergence between replicas is caught
                // at the next barrier).
                Some(ShardOut::Delta(d)) if first_delta.is_none() => {
                    first_delta = Some(d);
                }
                Some(ShardOut::Sync { id, .. }) => sync_id = Some(id),
                Some(ShardOut::Barrier { id, nodes, .. }) => {
                    barrier_id = Some(id);
                    sections.push((k, nodes));
                }
                _ => {}
            }
        }
        let msg = if let Some(d) = first_delta {
            MergedOut::Delta(d)
        } else if let Some(id) = barrier_id {
            MergedOut::Barrier { id, nodes: sections }
        } else if let Some(id) = sync_id {
            MergedOut::Sync { id }
        } else {
            continue;
        };
        if tx.send(msg).is_err() {
            return;
        }
    }
}

/// Decodes the 5-counter prefix of an operator snapshot.
fn decode_prefix(bytes: &[u8]) -> [u64; 5] {
    let mut out = [0u64; 5];
    for (i, slot) in out.iter_mut().enumerate() {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
        *slot = u64::from_be_bytes(b);
    }
    out
}

/// Decodes a counter prefix when the section has one.
fn decode_prefix_opt(bytes: &[u8]) -> Option<[u64; 5]> {
    (bytes.len() >= COUNTER_PREFIX).then(|| decode_prefix(bytes))
}

/// Live sharded runtime state (workers spawned lazily at first use).
struct Running {
    in_tx: Vec<SyncSender<Vec<ShardIn>>>,
    /// Per-shard unflushed envelope buffer.
    buf: Vec<Vec<ShardIn>>,
    merged_rx: Receiver<MergedOut>,
    workers: Vec<(String, std::thread::JoinHandle<Result<(), EngineError>>)>,
    merger: Option<std::thread::JoinHandle<()>>,
}

/// The sharded executor: N key-partitioned replicas of one plan behind
/// a deterministic exchange merge, presenting the same push / finish /
/// checkpoint / restore / telemetry surface as the sequential
/// [`Executor`] — with byte-identical observables. See the module docs
/// for the architecture.
pub struct ShardedExecutor {
    partitioner: Partitioner,
    /// Coordinator replica of the plan nodes: never processes elements;
    /// exists for shard-safety validation, operator names, and the
    /// recorder-arming pattern (which nodes contribute trail sections).
    nodes: Vec<crate::plan::Node>,
    /// The canonical analyzers — the *only* analyzers that run.
    sources: Vec<crate::plan::Source>,
    /// The canonical sinks, fed in seq order from the merged stream.
    sinks: Vec<Sink>,
    /// For each node practising delayed sp propagation
    /// ([`Operator::delays_sps`]): the sink it owns. Such a node's
    /// canonical `sps_out` is its sink's deduplicated sp intake.
    delayed_sinks: Vec<Option<usize>>,
    /// For each policy-transparent node sitting between a delaying node
    /// and its sink: that sink. Such a node's sp counters are
    /// shard-local flush counts; both canonically equal the sink's
    /// deduplicated sp intake (the chain forwards 1:1).
    chain_sinks: Vec<Option<usize>>,
    /// Per sink: the encoding of the last flushed (non-broadcast) policy
    /// delivered, for exchange-side flush deduplication.
    last_flushed: Vec<Option<Vec<u8>>>,
    by_stream: HashMap<StreamId, Vec<usize>>,
    audit_capacity: usize,
    span_capacity: usize,
    /// Canonical per-node recorders, re-recorded in global seq order
    /// (capacity 0 = that node does not record).
    canonical_audit: Vec<FlightRecorder>,
    canonical_spans: Vec<SpanRecorder>,
    /// Builders for the shard replicas, consumed at first use.
    pending_builders: Option<Vec<PlanBuilder>>,
    /// A restore to apply to the shard replicas at spawn.
    restore_ckpt: Option<Checkpoint>,
    running: Option<Running>,
    staged: Vec<Element>,
    emitter: Emitter,
    seq: u64,
    marker_id: u64,
    /// Data envelopes routed per shard + broadcasts (for `/metrics`).
    routed: Vec<u64>,
    broadcasts: u64,
    /// First fatal error: once set, every operation fails closed.
    failure: Option<EngineError>,
}

impl ShardedExecutor {
    /// Builds a sharded executor over `shards` replicas of the plan
    /// `make` produces. `make` is called once per shard plus once for
    /// the coordinator's canonical front (analyzers, sinks, recorders);
    /// it must produce the same plan every time, exactly like the
    /// supervisor's rebuild closure.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShardUnsupported`] if any operator cannot be
    /// replicated across key partitions (binary operators, and any
    /// operator that does not opt in via [`Operator::shard_safe`]).
    pub fn new(mut make: impl FnMut() -> PlanBuilder, shards: usize) -> Result<Self, EngineError> {
        use crate::plan::Target;
        let shards = shards.max(1);
        let (nodes, sources, sinks, telemetry) = make().into_parts();
        for node in &nodes {
            if node.op.arity() > 1 || !node.op.shard_safe() {
                return Err(EngineError::ShardUnsupported {
                    operator: node.op.name().to_string(),
                    reason: "whole-stream state cannot be partitioned".to_string(),
                });
            }
        }
        // Delayed-sp-propagation operators flush their pending policy on
        // a tuple-dependent — hence shard-local — event, so the exchange
        // must deduplicate their per-shard flushes. That is only sound
        // when the flushes reach a canonical sink the coordinator owns
        // through a chain of policy-transparent operators (each forwards
        // policies 1:1 and deterministically, so duplicate flushes stay
        // byte-equal), with sole ownership at every step: the canonical
        // flush count is then the sink's deduplicated sp intake. Two
        // delaying operators on one path cannot be reconciled — the
        // downstream one's pending policy diverges in *value* per shard
        // — so such plans are refused fail-closed.
        let mut sink_producers = vec![0usize; sinks.len()];
        let mut node_producers = vec![0usize; nodes.len()];
        for targets in nodes.iter().map(|n| &n.outputs).chain(sources.iter().map(|s| &s.outputs)) {
            for t in targets {
                match t {
                    Target::Sink(j) => sink_producers[*j] += 1,
                    Target::Node(k, _) => node_producers[*k] += 1,
                }
            }
        }
        let refuse = |op: &dyn Operator, reason: &str| EngineError::ShardUnsupported {
            operator: op.name().to_string(),
            reason: reason.to_string(),
        };
        let mut delayed_sinks: Vec<Option<usize>> = vec![None; nodes.len()];
        let mut chain_sinks: Vec<Option<usize>> = vec![None; nodes.len()];
        for (i, node) in nodes.iter().enumerate() {
            if !node.op.delays_sps() {
                continue;
            }
            let op = node.op.as_ref();
            let mut cur = i;
            let mut chain: Vec<usize> = Vec::new();
            // Walk the (sole-producer) chain from the delaying node down
            // to its sink. Plans are DAGs by construction; the length
            // bound is a defensive backstop.
            let sink = loop {
                if chain.len() > nodes.len() {
                    return Err(refuse(op, "delayed-propagation chain does not reach a sink"));
                }
                match nodes[cur].outputs.as_slice() {
                    [] => {
                        return Err(refuse(
                            op,
                            "delayed sp propagation requires a sink to flush into",
                        ));
                    }
                    [Target::Node(k, _)] => {
                        let k = *k;
                        if nodes[k].op.delays_sps() {
                            return Err(refuse(
                                op,
                                "two delayed-propagation stages on one path cannot be \
                                 deduplicated (the downstream pending policy diverges \
                                 in value per shard)",
                            ));
                        }
                        if !nodes[k].op.policy_transparent() {
                            return Err(refuse(
                                op,
                                "delayed sp propagation must reach its sink through \
                                 policy-transparent operators (1:1 deterministic sp \
                                 forwarding) so shard-local flushes stay deduplicable",
                            ));
                        }
                        if node_producers[k] != 1 {
                            return Err(refuse(
                                op,
                                "delayed sp propagation requires sole ownership of its \
                                 downstream chain (another operator feeds it)",
                            ));
                        }
                        chain.push(k);
                        cur = k;
                    }
                    outs => {
                        let mut first_sink = None;
                        for t in outs {
                            match t {
                                Target::Sink(j) => {
                                    first_sink.get_or_insert(*j);
                                    if sink_producers[*j] != 1 {
                                        return Err(refuse(
                                            op,
                                            "delayed sp propagation requires sole ownership \
                                             of its sink (another operator shares it)",
                                        ));
                                    }
                                }
                                Target::Node(..) => {
                                    return Err(refuse(
                                        op,
                                        "delayed sp propagation cannot fan out mid-chain \
                                         (shard-local flushes would duplicate downstream)",
                                    ));
                                }
                            }
                        }
                        let Some(j) = first_sink else {
                            return Err(refuse(
                                op,
                                "delayed sp propagation requires a sink to flush into",
                            ));
                        };
                        break j;
                    }
                }
            };
            delayed_sinks[i] = Some(sink);
            for k in chain {
                chain_sinks[k] = Some(sink);
            }
        }
        let builders: Vec<PlanBuilder> = (0..shards).map(|_| make()).collect();
        let mut by_stream: HashMap<StreamId, Vec<usize>> = HashMap::new();
        for (i, s) in sources.iter().enumerate() {
            by_stream.entry(s.stream).or_default().push(i);
        }
        let last_flushed = vec![None; sinks.len()];
        let mut this = Self {
            partitioner: Partitioner::new(shards),
            nodes,
            sources,
            sinks,
            delayed_sinks,
            chain_sinks,
            last_flushed,
            by_stream,
            audit_capacity: telemetry.audit_capacity,
            span_capacity: telemetry.span_capacity,
            canonical_audit: Vec::new(),
            canonical_spans: Vec::new(),
            pending_builders: Some(builders),
            restore_ckpt: None,
            running: None,
            staged: Vec::with_capacity(16),
            emitter: Emitter::with_capacity(16),
            seq: 0,
            marker_id: 0,
            routed: vec![0; shards],
            broadcasts: 0,
            failure: None,
        };
        this.rebuild_canonical_recorders();
        Ok(this)
    }

    /// Number of shard replicas.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.partitioner.shards()
    }

    /// Sizes the canonical recorders to mirror the plan's arming
    /// pattern: node `i` gets a canonical recorder iff its operator
    /// records, so trail section sets match sequential runs exactly.
    fn rebuild_canonical_recorders(&mut self) {
        self.canonical_audit = self
            .nodes
            .iter()
            .map(|n| {
                FlightRecorder::new(if n.op.audit().is_some() { self.audit_capacity } else { 0 })
            })
            .collect();
        self.canonical_spans = self
            .nodes
            .iter()
            .map(|n| SpanRecorder::new(if n.op.spans().is_some() { self.span_capacity } else { 0 }))
            .collect();
    }

    /// Arms audit recording, like [`Executor::set_audit`]. Must be
    /// called before the first push (shard replicas arm at spawn).
    pub fn set_audit(&mut self, capacity: usize) {
        debug_assert!(self.running.is_none(), "set_audit after the shards started");
        if capacity == 0 || self.running.is_some() {
            return;
        }
        self.audit_capacity = capacity;
        for source in &mut self.sources {
            source.analyzer.set_audit(capacity);
        }
        for node in &mut self.nodes {
            node.op.set_audit(capacity);
        }
        self.rebuild_canonical_recorders();
    }

    /// Arms sp-trace span recording, like [`Executor::set_spans`]. Must
    /// be called before the first push.
    pub fn set_spans(&mut self, capacity: usize) {
        debug_assert!(self.running.is_none(), "set_spans after the shards started");
        if capacity == 0 || self.running.is_some() {
            return;
        }
        self.span_capacity = capacity;
        for source in &mut self.sources {
            source.analyzer.set_spans(capacity);
        }
        for node in &mut self.nodes {
            node.op.set_spans(capacity);
        }
        self.rebuild_canonical_recorders();
    }

    fn check_failure(&self) -> Result<(), EngineError> {
        match &self.failure {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    fn fail(&mut self, e: EngineError) -> EngineError {
        if self.failure.is_none() {
            self.failure = Some(e.clone());
        }
        e
    }

    fn running_mut(&mut self) -> Result<&mut Running, EngineError> {
        self.running
            .as_mut()
            .ok_or_else(|| EngineError::corrupt("shard", "shard runtime not started"))
    }

    /// Prepares shard `k`'s restore image from the canonical checkpoint:
    /// shard 0 carries the full counter base; other shards restart their
    /// counters at zero so cross-shard sums reproduce the canonical
    /// totals. Sink replicas always restart empty (the canonical sinks —
    /// restored on the coordinator — carry the real state).
    fn shard_restore_image(canonical: &Checkpoint, shard: usize) -> Checkpoint {
        let zero_prefix = |bytes: &[u8]| -> Vec<u8> {
            if bytes.len() >= COUNTER_PREFIX {
                let mut out = vec![0u8; COUNTER_PREFIX];
                out.extend_from_slice(&bytes[COUNTER_PREFIX..]);
                out
            } else {
                bytes.to_vec()
            }
        };
        let nodes = if shard == 0 {
            canonical.nodes.clone()
        } else {
            canonical.nodes.iter().map(|b| zero_prefix(b)).collect()
        };
        let sinks = canonical.sinks.iter().map(|b| zero_prefix(b)).collect();
        Checkpoint {
            epoch: canonical.epoch,
            input_pos: canonical.input_pos,
            analyzers: canonical.analyzers.clone(),
            nodes,
            sinks,
        }
    }

    /// Spawns the shard workers and the exchange merge (first use).
    fn start(&mut self) -> Result<(), EngineError> {
        let Some(builders) = self.pending_builders.take() else {
            return Err(EngineError::corrupt("shard", "shard replicas already consumed"));
        };
        let shards = builders.len();
        let (merged_tx, merged_rx) = channel::<MergedOut>();
        let mut in_tx = Vec::with_capacity(shards);
        let mut out_rx = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (k, builder) in builders.into_iter().enumerate() {
            let (tx, rx) = sync_channel::<Vec<ShardIn>>(SHARD_QUEUE_CHUNKS);
            let (otx, orx) = channel::<Vec<ShardOut>>();
            let mut exec = builder.build();
            if exec.source_count() != self.sources.len()
                || exec.node_count() != self.nodes.len()
                || exec.sink_count() != self.sinks.len()
            {
                return Err(self.fail(EngineError::corrupt(
                    "shard",
                    format!("shard {k} replica plan shape differs from the coordinator plan"),
                )));
            }
            if self.audit_capacity > 0 {
                exec.set_audit(self.audit_capacity.max(SHARD_RECORDER_SLACK));
            }
            if self.span_capacity > 0 {
                exec.set_spans(self.span_capacity.max(SHARD_RECORDER_SLACK));
            }
            if let Some(ckpt) = &self.restore_ckpt {
                let image = Self::shard_restore_image(ckpt, k);
                if let Err(e) = exec.restore(&image) {
                    return Err(self.fail(e));
                }
            }
            let handle = std::thread::spawn(move || run_shard(exec, &rx, &otx));
            in_tx.push(tx);
            out_rx.push(orx);
            workers.push((format!("shard {k}"), handle));
        }
        let merger = std::thread::spawn(move || run_merge(&out_rx, &merged_tx));
        self.running = Some(Running {
            in_tx,
            buf: (0..shards).map(|_| Vec::with_capacity(CHUNK)).collect(),
            merged_rx,
            workers,
            merger: Some(merger),
        });
        Ok(())
    }

    fn ensure_started(&mut self) -> Result<(), EngineError> {
        self.check_failure()?;
        if self.running.is_none() {
            self.start()?;
        }
        Ok(())
    }

    /// Applies one merged message to the canonical state. Returns the
    /// marker echo if the message was a sync/barrier echo.
    fn apply(&mut self, msg: MergedOut) -> Result<MarkerEcho, EngineError> {
        match msg {
            MergedOut::Delta(d) => {
                let mut emitter = std::mem::take(&mut self.emitter);
                for (j, out) in d.sinks {
                    for elem in out {
                        // A policy on a *tuple* seq is a delayed-
                        // propagation flush: each shard flushes the same
                        // broadcast policy before its own first
                        // survivor. Seq order equals input order, so the
                        // first flush in merged order lands exactly at
                        // the sequential position — later copies of the
                        // same policy are exchange duplicates, dropped
                        // here. (Policies on broadcast seqs are already
                        // deduplicated by the merge and pass verbatim.)
                        if !d.broadcast {
                            if let Element::Policy(seg) = &elem {
                                let mut enc = Vec::new();
                                crate::checkpoint::encode_segment_policy(seg, &mut enc);
                                if self.last_flushed[j].as_ref() == Some(&enc) {
                                    continue;
                                }
                                self.last_flushed[j] = Some(enc);
                            }
                        }
                        // Element-wise: a sink delta may mix tuples and
                        // policies, which batch runs must not.
                        if let Err(e) = self.sinks[j].process(0, elem, &mut emitter) {
                            let _ = emitter.take();
                            self.emitter = emitter;
                            return Err(self.fail(e));
                        }
                    }
                }
                let _ = emitter.take();
                self.emitter = emitter;
                for (node, recs) in d.audit {
                    let rec = &mut self.canonical_audit[node as usize];
                    for r in recs {
                        rec.record(r.tid, r.ts, r.event);
                    }
                }
                for (node, recs) in d.spans {
                    let rec = &mut self.canonical_spans[node as usize];
                    for r in recs {
                        rec.record(r);
                    }
                }
                Ok(None)
            }
            MergedOut::Sync { id } => Ok(Some((id, None))),
            MergedOut::Barrier { id, nodes } => Ok(Some((id, Some(nodes)))),
            MergedOut::Fatal(e) => Err(self.fail(e)),
        }
    }

    /// Drains merged messages without blocking (keeps canonical state
    /// fresh and the unbounded exchange channel short during pushes).
    fn drain_ready(&mut self) -> Result<(), EngineError> {
        loop {
            let msg = {
                let Some(running) = self.running.as_ref() else { return Ok(()) };
                match running.merged_rx.try_recv() {
                    Ok(msg) => msg,
                    Err(_) => return Ok(()),
                }
            };
            self.apply(msg)?;
        }
    }

    /// Flushes shard `k`'s envelope buffer, with the same bounded-stall
    /// policy as a parallel pipeline edge — and names the stalled shard
    /// when the deadline passes.
    fn flush_shard(&mut self, k: usize) -> Result<(), EngineError> {
        let mut chunk = {
            let Some(running) = self.running.as_mut() else { return Ok(()) };
            if running.buf[k].is_empty() {
                return Ok(());
            }
            std::mem::take(&mut running.buf[k])
        };
        let deadline = Instant::now() + STALL_DEADLINE;
        loop {
            let sent = self.running_mut()?.in_tx[k].try_send(chunk);
            match sent {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(_)) => {
                    // The worker died; its Fatal (if any) is already in
                    // the merged stream — surface that over a bare
                    // disconnect when possible.
                    self.drain_ready()?;
                    let e = EngineError::ChannelDisconnected { stage: format!("shard {k}") };
                    return Err(self.fail(e));
                }
                Err(TrySendError::Full(back)) => {
                    if Instant::now() >= deadline {
                        let e = EngineError::ShutdownTimeout {
                            pending_workers: 1,
                            stalled: vec![format!("shard {k}")],
                        };
                        return Err(self.fail(e));
                    }
                    chunk = back;
                    // Make progress on the output side while we wait.
                    self.drain_ready()?;
                    std::thread::yield_now();
                }
            }
        }
    }

    fn flush_all(&mut self) -> Result<(), EngineError> {
        for k in 0..self.shards() {
            self.flush_shard(k)?;
        }
        Ok(())
    }

    /// Routes one data run to its owner shard under a fresh seq.
    fn send_run(
        &mut self,
        owner: usize,
        source: usize,
        run: Vec<Element>,
    ) -> Result<(), EngineError> {
        self.seq += 1;
        let seq = self.seq;
        self.routed[owner] += 1;
        let running = self.running_mut()?;
        running.buf[owner].push(ShardIn::Data {
            seq,
            broadcast: false,
            source,
            batch: ElementBatch::from_run(run),
        });
        if running.buf[owner].len() >= CHUNK {
            self.flush_shard(owner)?;
        }
        Ok(())
    }

    /// Broadcasts one control run (policy elements) to every shard
    /// under one seq.
    fn send_broadcast(&mut self, source: usize, run: Vec<Element>) -> Result<(), EngineError> {
        self.seq += 1;
        let seq = self.seq;
        self.broadcasts += 1;
        let batch = ElementBatch::from_run(run);
        let shards = self.shards();
        {
            let running = self.running_mut()?;
            for k in 0..shards {
                running.buf[k].push(ShardIn::Data {
                    seq,
                    broadcast: true,
                    source,
                    batch: batch.clone(),
                });
            }
        }
        for k in 0..shards {
            if self.running_mut()?.buf[k].len() >= CHUNK {
                self.flush_shard(k)?;
            }
        }
        Ok(())
    }

    /// Partitions one analyzer output run into maximal same-owner
    /// sub-runs (preserving element order via seq order) and routes
    /// them. Policy elements flush the current sub-run and broadcast.
    fn route_staged(
        &mut self,
        source: usize,
        staged: &mut Vec<Element>,
    ) -> Result<(), EngineError> {
        let mut run: Vec<Element> = Vec::new();
        let mut owner = 0usize;
        for elem in staged.drain(..) {
            match &elem {
                Element::Tuple(t) => {
                    let o = self.partitioner.shard_of(t);
                    if o != owner && !run.is_empty() {
                        self.send_run(owner, source, std::mem::take(&mut run))?;
                    }
                    owner = o;
                    run.push(elem);
                }
                Element::Policy(_) => {
                    if !run.is_empty() {
                        self.send_run(owner, source, std::mem::take(&mut run))?;
                    }
                    self.send_broadcast(source, vec![elem])?;
                }
            }
        }
        if !run.is_empty() {
            self.send_run(owner, source, run)?;
        }
        Ok(())
    }

    /// Feeds one raw stream element: the canonical analyzers run here
    /// (exactly as in [`Executor::push`]), then the resolved elements
    /// are partitioned and shipped to their shards.
    ///
    /// # Errors
    ///
    /// Fails closed on the first shard, exchange, or routing error; all
    /// subsequent operations return the same error.
    pub fn push(&mut self, stream: StreamId, elem: StreamElement) -> Result<(), EngineError> {
        self.ensure_started()?;
        let Some(slots) = self.by_stream.get(&stream).cloned() else {
            return Ok(());
        };
        for idx in slots {
            let mut staged = std::mem::take(&mut self.staged);
            staged.clear();
            self.sources[idx].analyzer.push(elem.clone(), &mut staged);
            let routed = self.route_staged(idx, &mut staged);
            self.staged = staged;
            routed?;
        }
        self.drain_ready()
    }

    /// Feeds a whole recorded input (see [`Executor::push_all`]).
    ///
    /// # Errors
    ///
    /// Stops at and returns the first error, fail-closed.
    pub fn push_all(
        &mut self,
        items: impl IntoIterator<Item = (StreamId, StreamElement)>,
    ) -> Result<(), EngineError> {
        for (stream, elem) in items {
            self.push(stream, elem)?;
        }
        Ok(())
    }

    /// Broadcasts a marker and drains the merged stream until its echo
    /// applies: afterwards every delta the shards produced for already-
    /// routed input is reflected in the canonical state. Returns the
    /// barrier sections when the marker was a barrier.
    fn round_trip(&mut self, barrier: bool) -> Result<Option<BarrierSections>, EngineError> {
        self.marker_id += 1;
        let id = self.marker_id;
        self.seq += 1;
        let seq = self.seq;
        let shards = self.shards();
        {
            let running = self.running_mut()?;
            for k in 0..shards {
                running.buf[k].push(if barrier {
                    ShardIn::Barrier { seq, id }
                } else {
                    ShardIn::Sync { seq, id }
                });
            }
        }
        self.flush_all()?;
        loop {
            let received = {
                let Some(running) = self.running.as_ref() else {
                    return Err(EngineError::corrupt("shard", "shard runtime not started"));
                };
                running.merged_rx.recv_timeout(DRAIN_TIMEOUT)
            };
            let msg = match received {
                Ok(msg) => msg,
                Err(RecvTimeoutError::Timeout) => {
                    let e = EngineError::ShutdownTimeout {
                        pending_workers: 1,
                        stalled: vec!["exchange".to_string()],
                    };
                    return Err(self.fail(e));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    let e = EngineError::ChannelDisconnected { stage: "exchange".to_string() };
                    return Err(self.fail(e));
                }
            };
            if let Some((echo_id, sections)) = self.apply(msg)? {
                if echo_id == id {
                    return Ok(sections);
                }
            }
        }
    }

    /// Brings the canonical state up to date with everything routed so
    /// far. No-op before the first push.
    fn sync(&mut self) -> Result<(), EngineError> {
        self.check_failure()?;
        if self.running.is_none() {
            return Ok(());
        }
        self.round_trip(false).map(|_| ())
    }

    /// Flushes the analyzers' end-of-stream output through the shards
    /// (see [`Executor::finish`]) and synchronizes.
    ///
    /// # Errors
    ///
    /// Propagates the first engine error, fail-closed.
    pub fn finish(&mut self) -> Result<(), EngineError> {
        self.ensure_started()?;
        for idx in 0..self.sources.len() {
            let mut staged = std::mem::take(&mut self.staged);
            staged.clear();
            self.sources[idx].analyzer.flush(&mut staged);
            let routed = self.route_staged(idx, &mut staged);
            self.staged = staged;
            routed?;
        }
        self.sync()
    }

    /// Canonicalizes per-shard node snapshots into the snapshot the
    /// sequential executor would have written: tuple counters summed
    /// across shards, sp counters from shard 0 (every shard sees every
    /// sp) — except a delayed-propagation node's flush count, which
    /// comes from its canonical sink — and post-counter state merged by
    /// the operator's own [`Operator::merge_shard_state`].
    fn canonicalize_nodes(
        &mut self,
        mut per_shard: BarrierSections,
    ) -> Result<Vec<Vec<u8>>, EngineError> {
        per_shard.sort_by_key(|(k, _)| *k);
        if per_shard.len() != self.shards()
            || per_shard.iter().enumerate().any(|(i, (k, _))| i != *k)
        {
            let e = EngineError::ShardDivergence {
                stage: "barrier".to_string(),
                reason: format!(
                    "{} of {} shards reached the barrier",
                    per_shard.len(),
                    self.shards()
                ),
            };
            return Err(self.fail(e));
        }
        let mut out = Vec::with_capacity(self.nodes.len());
        for i in 0..self.nodes.len() {
            let name = self.nodes[i].op.name().to_string();
            let sections: Vec<&Vec<u8>> = per_shard.iter().map(|(_, n)| &n[i]).collect();
            if sections.iter().all(|s| s.is_empty()) {
                out.push(Vec::new());
                continue;
            }
            if sections.iter().any(|s| s.len() < COUNTER_PREFIX) {
                let e =
                    EngineError::corrupt(&name, "shard snapshot shorter than its counter prefix");
                return Err(self.fail(e));
            }
            // Post-counter state: merged by the operator itself —
            // byte-equality for replicated policy state, a semantic
            // any-shard-flushed merge for delayed-propagation pending
            // policies (see [`Operator::merge_shard_state`]).
            let suffixes: Vec<&[u8]> = sections.iter().map(|s| &s[COUNTER_PREFIX..]).collect();
            let merged = self.nodes[i].op.merge_shard_state(&suffixes);
            let suffix = match merged {
                Ok(s) => s,
                Err(e) => return Err(self.fail(e)),
            };
            // Counter layout: [tuples_in, tuples_out, sps_in, sps_out,
            // tuples_shielded]. Tuple counters are partitioned (sum);
            // sps_in is replicated (shard 0 carries the canonical value,
            // including any restored base); sps_out is replicated too —
            // except for a delayed-propagation node, whose flush count
            // is shard-local: its canonical value is its sink's
            // deduplicated sp intake. A policy-transparent node on the
            // chain below a delaying node sees only those shard-local
            // flushes, so *both* its sp counters canonicalize to the
            // sink's intake (the chain forwards 1:1).
            let decoded: Vec<[u64; 5]> = sections.iter().map(|s| decode_prefix(s)).collect();
            let mut counters = decoded[0];
            for d in &decoded[1..] {
                counters[0] += d[0];
                counters[1] += d[1];
                counters[4] += d[4];
            }
            if let Some(j) = self.delayed_sinks[i] {
                counters[3] = Operator::stats(&self.sinks[j]).sps_in;
            } else if let Some(j) = self.chain_sinks[i] {
                let sps = Operator::stats(&self.sinks[j]).sps_in;
                counters[2] = sps;
                counters[3] = sps;
            }
            let mut bytes = Vec::with_capacity(sections[0].len());
            for c in counters {
                bytes.extend_from_slice(&c.to_be_bytes());
            }
            bytes.extend_from_slice(&suffix);
            out.push(bytes);
        }
        Ok(out)
    }

    /// Takes a consistent cut spanning every shard, byte-identical to
    /// the checkpoint a sequential executor would take at the same
    /// input position — so the cut restores at *any* shard count,
    /// including 1 (plain [`Executor::restore`]).
    ///
    /// # Errors
    ///
    /// Fails closed on shard divergence or a dead/stalled shard.
    pub fn checkpoint(&mut self, epoch: u64, input_pos: u64) -> Result<Checkpoint, EngineError> {
        self.ensure_started()?;
        // The coordinator *is* the cut point: nothing is in flight
        // between the analyzers and the barrier broadcast below.
        let mut analyzers = Vec::with_capacity(self.sources.len());
        for source in &self.sources {
            let mut buf = Vec::new();
            source.analyzer.snapshot(&mut buf);
            analyzers.push(buf);
        }
        let sections = self.round_trip(true)?.ok_or_else(|| EngineError::ShardDivergence {
            stage: "barrier".to_string(),
            reason: "barrier echo carried no sections".to_string(),
        })?;
        let nodes = self.canonicalize_nodes(sections)?;
        // All deltas before the barrier are applied (seq order), so the
        // canonical sinks are exactly at the cut.
        let mut sinks = Vec::with_capacity(self.sinks.len());
        for sink in &self.sinks {
            let mut buf = Vec::new();
            Operator::snapshot(sink, &mut buf);
            sinks.push(buf);
        }
        Ok(Checkpoint { epoch, input_pos, analyzers, nodes, sinks })
    }

    /// Restores from a canonical checkpoint — taken sequentially or at
    /// *any* shard count (re-shard on restore). Must be called before
    /// the first push; the shard replicas restore at spawn.
    ///
    /// # Errors
    ///
    /// Fails closed like [`Executor::restore`] on shape mismatch or a
    /// corrupt section; additionally refuses a restore after the shards
    /// have started.
    pub fn restore(&mut self, ckpt: &Checkpoint) -> Result<(), EngineError> {
        if self.running.is_some() {
            return Err(EngineError::corrupt(
                "shard",
                "restore requires a freshly built sharded executor",
            ));
        }
        if ckpt.analyzers.len() != self.sources.len()
            || ckpt.nodes.len() != self.nodes.len()
            || ckpt.sinks.len() != self.sinks.len()
        {
            return Err(EngineError::corrupt(
                "plan",
                format!(
                    "checkpoint shape {}/{}/{} does not match plan {}/{}/{}",
                    ckpt.analyzers.len(),
                    ckpt.nodes.len(),
                    ckpt.sinks.len(),
                    self.sources.len(),
                    self.nodes.len(),
                    self.sinks.len(),
                ),
            ));
        }
        for (source, bytes) in self.sources.iter_mut().zip(&ckpt.analyzers) {
            source.analyzer.restore(bytes)?;
        }
        for (sink, bytes) in self.sinks.iter_mut().zip(&ckpt.sinks) {
            Operator::restore(sink, bytes)?;
        }
        for rec in &mut self.canonical_audit {
            rec.clear();
        }
        for rec in &mut self.canonical_spans {
            rec.clear();
        }
        // Flush dedup restarts empty: pre-restore deliveries live in the
        // checkpoint, and post-restore the first flush of any pending
        // policy is a fresh (wanted) delivery.
        for last in &mut self.last_flushed {
            *last = None;
        }
        self.restore_ckpt = Some(ckpt.clone());
        self.failure = None;
        Ok(())
    }

    /// The canonical collected sink for a query (synchronizes first; if
    /// synchronization fails the sink stays at its last good state and
    /// the failure is returned by every fallible operation).
    pub fn sink(&mut self, s: SinkRef) -> &Sink {
        let _ = self.sync();
        &self.sinks[s.index()]
    }

    /// Fail-closed degradation counters — identical to the sequential
    /// plan's: analyzers are canonical here, and shard-safe operators
    /// never degrade (load shedders are not shard-safe).
    pub fn degradation(&mut self) -> DegradationStats {
        let mut total = DegradationStats::new();
        for source in &self.sources {
            total.absorb(&source.analyzer.degradation());
        }
        total
    }

    /// The plan-wide audit trail, byte-identical to the sequential
    /// executor's over the same input (synchronizes first).
    pub fn audit_trail(&mut self) -> AuditTrail {
        let _ = self.sync();
        #[allow(clippy::cast_possible_truncation)] // plan slots fit u32
        merge_recorders(
            self.sources
                .iter()
                .enumerate()
                .map(|(i, s)| (AuditOp::Source(i as u32), s.analyzer.audit().cloned()))
                .chain(
                    self.canonical_audit.iter().enumerate().map(|(i, rec)| {
                        (AuditOp::Node(i as u32), rec.enabled().then(|| rec.clone()))
                    }),
                ),
        )
    }

    /// The plan-wide span sheet, byte-identical to the sequential
    /// executor's over the same input (synchronizes first).
    pub fn span_sheet(&mut self) -> SpanSheet {
        let _ = self.sync();
        #[allow(clippy::cast_possible_truncation)] // plan slots fit u32
        merge_recorders(
            self.sources
                .iter()
                .enumerate()
                .map(|(i, s)| (AuditOp::Source(i as u32), s.analyzer.spans().cloned()))
                .chain(
                    self.canonical_spans.iter().enumerate().map(|(i, rec)| {
                        (AuditOp::Node(i as u32), rec.enabled().then(|| rec.clone()))
                    }),
                ),
        )
    }

    /// A point-in-time metrics snapshot: canonical per-operator counters
    /// (summed across shards at a barrier), degradation and
    /// telemetry-pressure counters, plus the `sp_shard_*` series
    /// describing the shard fleet itself.
    pub fn metrics(&mut self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let counters: Vec<Option<[u64; 5]>> = if self.running.is_some() {
            self.checkpoint(0, 0)
                .map(|c| c.nodes.iter().map(|b| decode_prefix_opt(b)).collect())
                .unwrap_or_default()
        } else {
            Vec::new()
        };
        for (i, node) in self.nodes.iter().enumerate() {
            let Some(Some(s)) = counters.get(i) else { continue };
            let labels = format!("op=\"{}\",node=\"{i}\"", node.op.name());
            reg.add_counter("sp_tuples_in_total", "Tuples entering an operator", &labels, s[0]);
            reg.add_counter("sp_tuples_out_total", "Tuples emitted by an operator", &labels, s[1]);
            reg.add_counter(
                "sp_sps_in_total",
                "Security punctuations entering an operator",
                &labels,
                s[2],
            );
            reg.add_counter(
                "sp_sps_out_total",
                "Security punctuations emitted by an operator",
                &labels,
                s[3],
            );
            reg.add_counter(
                "sp_tuples_shielded_total",
                "Tuples suppressed by the Security Shield",
                &labels,
                s[4],
            );
        }
        for (kind, value) in self.degradation().named_counters() {
            reg.add_counter(
                "sp_degradation_total",
                "Fail-closed degradation counters (kind label selects the counter)",
                &format!("kind=\"{kind}\""),
                value,
            );
        }
        let trail = self.audit_trail();
        if trail.sections().next().is_some() {
            reg.add_counter(
                "sp_audit_records",
                "Audit records currently held by flight recorders",
                "",
                trail.len() as u64,
            );
            reg.add_counter(
                "sp_audit_evicted_total",
                "Audit records evicted from bounded flight recorders",
                "",
                trail.evicted(),
            );
        }
        let sheet = self.span_sheet();
        if !sheet.is_empty() || sheet.evicted() > 0 {
            reg.add_counter(
                "sp_span_records",
                "sp-trace spans currently held by span recorders",
                "",
                sheet.len() as u64,
            );
            reg.add_counter(
                "sp_spans_evicted_total",
                "sp-trace spans evicted from bounded span recorders",
                "",
                sheet.evicted(),
            );
        }
        reg.add_counter(
            "sp_shard_count",
            "Shard replicas in the sharded executor",
            "",
            self.shards() as u64,
        );
        for (k, n) in self.routed.iter().enumerate() {
            reg.add_counter(
                "sp_shard_routed_total",
                "Tuple runs routed to a shard by the partitioner",
                &format!("shard=\"{k}\""),
                *n,
            );
        }
        reg.add_counter(
            "sp_shard_broadcast_total",
            "Control elements (sps, markers) broadcast to every shard",
            "",
            self.broadcasts,
        );
        reg
    }

    /// The metrics snapshot rendered in Prometheus text exposition
    /// format.
    pub fn metrics_prometheus(&mut self) -> String {
        self.metrics().render_prometheus()
    }

    /// The metrics snapshot rendered as a JSON document.
    pub fn metrics_json(&mut self) -> String {
        self.metrics().render_json()
    }
}

impl Drop for ShardedExecutor {
    fn drop(&mut self) {
        if let Some(mut running) = self.running.take() {
            // Closing the input channels cascades: workers drain and
            // exit, their output channels close, the merge exits.
            running.in_tx.clear();
            let deadline = Instant::now() + DRAIN_TIMEOUT;
            let workers = std::mem::take(&mut running.workers);
            if join_with_deadline(workers, deadline).is_ok() {
                if let Some(merger) = running.merger.take() {
                    let _ = merger.join();
                }
            }
            // On timeout the stragglers (and the merge blocked on them)
            // stay detached; they hold only their own channels.
        }
    }
}

impl std::fmt::Debug for ShardedExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedExecutor")
            .field("shards", &self.shards())
            .field("started", &self.running.is_some())
            .field("failure", &self.failure)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::checkpoint::{CheckpointStore, MemStore};
    use crate::expr::{CmpOp, Expr};
    use crate::ops::select::Select;
    use crate::ops::shield::SecurityShield;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use sp_core::{
        RoleCatalog, RoleId, RoleSet, Schema, SecurityPunctuation, Timestamp, Tuple, TupleId,
        Value, ValueType,
    };
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::of("s", &[("id", ValueType::Int), ("v", ValueType::Int)])
    }

    fn catalog() -> Arc<RoleCatalog> {
        let mut c = RoleCatalog::new();
        c.register_synthetic_roles(8);
        Arc::new(c)
    }

    /// Mixed tuple/sp workload over two streams, deterministic per seed.
    fn workload(seed: u64, n: u64) -> Vec<(StreamId, StreamElement)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for ts in 1..=n {
            let stream = StreamId(1 + (ts % 2) as u32);
            if rng.gen_bool(0.3) {
                let roles: RoleSet = (0..rng.gen_range(0..3)) // 0..2 roles
                    .map(|_| RoleId(rng.gen_range(0..5)))
                    .collect();
                out.push((
                    stream,
                    StreamElement::punctuation(SecurityPunctuation::grant_all(
                        roles,
                        Timestamp(ts),
                    )),
                ));
            }
            let id = rng.gen_range(0..5u64);
            out.push((
                stream,
                StreamElement::tuple(Tuple::new(
                    stream,
                    TupleId(id),
                    Timestamp(ts),
                    vec![Value::Int(id as i64), Value::Int(rng.gen_range(0..10))],
                )),
            ));
        }
        out
    }

    /// Two-stream shield plan (the paper's enforcement shape); both
    /// streams feed the same shape. The shield feeds its sink directly,
    /// as the sharded builder requires of delayed-propagation operators.
    fn pipeline_builder() -> (PlanBuilder, Vec<SinkRef>) {
        let mut b = PlanBuilder::new(catalog());
        let mut sinks = Vec::new();
        for sid in [1u32, 2] {
            let src = b.source(StreamId(sid), schema());
            let ss = b.add(SecurityShield::new(RoleSet::from([1])), src);
            sinks.push(b.sink(ss));
        }
        (b, sinks)
    }

    /// Two-stream select plan: exercises Select's delayed propagation
    /// (pending flush + exchange dedup) without a shield behind it.
    fn select_builder() -> (PlanBuilder, Vec<SinkRef>) {
        let mut b = PlanBuilder::new(catalog());
        let mut sinks = Vec::new();
        for sid in [1u32, 2] {
            let src = b.source(StreamId(sid), schema());
            let sel = b.add(
                Select::new(Expr::cmp(CmpOp::Gt, Expr::Attr(1), Expr::Const(Value::Int(2)))),
                src,
            );
            sinks.push(b.sink(sel));
        }
        (b, sinks)
    }

    fn telemetry_on(b: &mut PlanBuilder) {
        b.enable_telemetry(crate::telemetry::TelemetryConfig {
            audit_capacity: 4096,
            span_capacity: 4096,
            metrics: false,
        });
    }

    type BuildFn = fn() -> (PlanBuilder, Vec<SinkRef>);

    /// Sequential reference run: returns (per-sink elements, trail
    /// encoding, sheet encoding, checkpoint at end).
    #[allow(clippy::type_complexity)]
    fn sequential_reference(
        build: BuildFn,
        input: &[(StreamId, StreamElement)],
    ) -> (Vec<Vec<Element>>, Vec<u8>, Vec<u8>, Checkpoint) {
        let (mut b, sinks) = build();
        telemetry_on(&mut b);
        let mut exec = b.build();
        exec.push_all(input.iter().cloned()).unwrap();
        exec.finish().unwrap();
        let outs = sinks.iter().map(|&s| exec.sink(s).elements().to_vec()).collect::<Vec<_>>();
        let trail = exec.audit_trail().encode_to_vec();
        let sheet = exec.span_sheet().encode_to_vec();
        let ckpt = exec.checkpoint(7, input.len() as u64);
        (outs, trail, sheet, ckpt)
    }

    #[allow(clippy::type_complexity)]
    fn sharded_run(
        build: BuildFn,
        input: &[(StreamId, StreamElement)],
        shards: usize,
    ) -> (Vec<Vec<Element>>, Vec<u8>, Vec<u8>, Checkpoint) {
        let mut exec = ShardedExecutor::new(
            move || {
                let (mut b, _) = build();
                telemetry_on(&mut b);
                b
            },
            shards,
        )
        .unwrap();
        let (_, sinks) = build();
        exec.push_all(input.iter().cloned()).unwrap();
        exec.finish().unwrap();
        let ckpt = exec.checkpoint(7, input.len() as u64).unwrap();
        let outs = sinks.iter().map(|&s| exec.sink(s).elements().to_vec()).collect::<Vec<_>>();
        let trail = exec.audit_trail().encode_to_vec();
        let sheet = exec.span_sheet().encode_to_vec();
        (outs, trail, sheet, ckpt)
    }

    #[test]
    fn partitioner_is_stable_and_in_range() {
        let p = Partitioner::new(4);
        for tid in 0..64u64 {
            let t = Tuple::new(StreamId(1), TupleId(tid), Timestamp(0), vec![]);
            let s1 = p.shard_of(&t);
            let s2 = p.shard_of(&t);
            assert_eq!(s1, s2);
            assert!(s1 < 4);
        }
        // Zero shards clamps to one.
        assert_eq!(Partitioner::new(0).shards(), 1);
    }

    #[test]
    fn sharded_matches_sequential_at_every_shard_count() {
        let input = workload(11, 400);
        let (seq_outs, seq_trail, seq_sheet, seq_ckpt) =
            sequential_reference(pipeline_builder, &input);
        for shards in [1usize, 2, 4, 8] {
            let (outs, trail, sheet, ckpt) = sharded_run(pipeline_builder, &input, shards);
            assert_eq!(outs, seq_outs, "released set diverged at {shards} shards");
            assert_eq!(trail, seq_trail, "audit trail diverged at {shards} shards");
            assert_eq!(sheet, seq_sheet, "span sheet diverged at {shards} shards");
            assert_eq!(ckpt, seq_ckpt, "checkpoint diverged at {shards} shards");
        }
    }

    #[test]
    fn select_flush_dedup_matches_sequential() {
        let input = workload(17, 400);
        let (seq_outs, seq_trail, seq_sheet, seq_ckpt) =
            sequential_reference(select_builder, &input);
        for shards in [2usize, 4, 8] {
            let (outs, trail, sheet, ckpt) = sharded_run(select_builder, &input, shards);
            assert_eq!(outs, seq_outs, "released set diverged at {shards} shards");
            assert_eq!(trail, seq_trail, "audit trail diverged at {shards} shards");
            assert_eq!(sheet, seq_sheet, "span sheet diverged at {shards} shards");
            assert_eq!(ckpt, seq_ckpt, "checkpoint diverged at {shards} shards");
        }
    }

    #[test]
    fn delayed_propagation_mid_plan_is_refused() {
        // select → shield: the select's shard-local flushes would feed
        // another operator — refused fail-closed.
        let err = ShardedExecutor::new(
            || {
                let mut b = PlanBuilder::new(catalog());
                let src = b.source(StreamId(1), schema());
                let sel = b.add(
                    Select::new(Expr::cmp(CmpOp::Gt, Expr::Attr(1), Expr::Const(Value::Int(2)))),
                    src,
                );
                let ss = b.add(SecurityShield::new(RoleSet::from([1])), sel);
                b.sink(ss);
                b
            },
            2,
        )
        .err()
        .unwrap();
        assert!(
            matches!(err, EngineError::ShardUnsupported { ref operator, .. } if operator == "select"),
            "{err}"
        );
    }

    /// Two-stream shield-over-chain plan: ψ flushes reach the sink
    /// through a projection (policy-transparent) — the query layer's
    /// natural shape (shield above scan, projection at the root).
    fn chain_builder() -> (PlanBuilder, Vec<SinkRef>) {
        let mut b = PlanBuilder::new(catalog());
        let mut sinks = Vec::new();
        for sid in [1u32, 2] {
            let src = b.source(StreamId(sid), schema());
            let ss = b.add(SecurityShield::new(RoleSet::from([1])), src);
            let proj = b.add(crate::ops::project::Project::new(vec![1, 0]), ss);
            sinks.push(b.sink(proj));
        }
        (b, sinks)
    }

    /// Shield → eager select → project: the full query shape. The eager
    /// select forwards the shield's shard-local flushes 1:1, so the
    /// whole chain stays deduplicable at the sink.
    fn eager_chain_builder() -> (PlanBuilder, Vec<SinkRef>) {
        let mut b = PlanBuilder::new(catalog());
        let mut sinks = Vec::new();
        for sid in [1u32, 2] {
            let src = b.source(StreamId(sid), schema());
            let ss = b.add(SecurityShield::new(RoleSet::from([1])), src);
            let sel = b.add(
                Select::eager(Expr::cmp(CmpOp::Gt, Expr::Attr(1), Expr::Const(Value::Int(2)))),
                ss,
            );
            let proj = b.add(crate::ops::project::Project::new(vec![0]), sel);
            sinks.push(b.sink(proj));
        }
        (b, sinks)
    }

    #[test]
    fn delayed_flush_through_transparent_chain_matches_sequential() {
        let input = workload(29, 400);
        let (seq_outs, seq_trail, seq_sheet, seq_ckpt) =
            sequential_reference(chain_builder, &input);
        for shards in [2usize, 4, 8] {
            let (outs, trail, sheet, ckpt) = sharded_run(chain_builder, &input, shards);
            assert_eq!(outs, seq_outs, "released set diverged at {shards} shards");
            assert_eq!(trail, seq_trail, "audit trail diverged at {shards} shards");
            assert_eq!(sheet, seq_sheet, "span sheet diverged at {shards} shards");
            assert_eq!(ckpt, seq_ckpt, "checkpoint diverged at {shards} shards");
        }
    }

    #[test]
    fn eager_select_chain_matches_sequential() {
        let input = workload(31, 400);
        let (seq_outs, seq_trail, seq_sheet, seq_ckpt) =
            sequential_reference(eager_chain_builder, &input);
        for shards in [2usize, 4, 8] {
            let (outs, trail, sheet, ckpt) = sharded_run(eager_chain_builder, &input, shards);
            assert_eq!(outs, seq_outs, "released set diverged at {shards} shards");
            assert_eq!(trail, seq_trail, "audit trail diverged at {shards} shards");
            assert_eq!(sheet, seq_sheet, "span sheet diverged at {shards} shards");
            assert_eq!(ckpt, seq_ckpt, "checkpoint diverged at {shards} shards");
        }
    }

    #[test]
    fn two_delaying_stages_on_one_path_refused() {
        // shield → delaying select: the select's pending policy would
        // diverge in value per shard — refused, named after the shield
        // (the upstream stage whose chain fails).
        let err = ShardedExecutor::new(
            || {
                let mut b = PlanBuilder::new(catalog());
                let src = b.source(StreamId(1), schema());
                let ss = b.add(SecurityShield::new(RoleSet::from([1])), src);
                let sel = b.add(
                    Select::new(Expr::cmp(CmpOp::Gt, Expr::Attr(1), Expr::Const(Value::Int(2)))),
                    ss,
                );
                b.sink(sel);
                b
            },
            2,
        )
        .err()
        .unwrap();
        assert!(
            matches!(err, EngineError::ShardUnsupported { ref operator, .. } if operator == "ss"),
            "{err}"
        );
    }

    #[test]
    fn checkpoint_taken_at_n_restores_at_m() {
        let input = workload(23, 300);
        let (cut, rest) = input.split_at(150);

        // Uninterrupted sequential run = ground truth.
        let (want_outs, _, _, want_ckpt) = sequential_reference(pipeline_builder, &input);

        // Cut at 4 shards…
        let mut at4 = ShardedExecutor::new(
            || {
                let (mut b, _) = pipeline_builder();
                telemetry_on(&mut b);
                b
            },
            4,
        )
        .unwrap();
        at4.push_all(cut.iter().cloned()).unwrap();
        let mid = at4.checkpoint(1, cut.len() as u64).unwrap();
        drop(at4);

        // …restore at 2 shards (N → M), continue, compare end state.
        let mut store = MemStore::default();
        store.save(&mid).unwrap();
        let loaded = store.load_latest().unwrap();
        let mut at2 = ShardedExecutor::new(
            || {
                let (mut b, _) = pipeline_builder();
                telemetry_on(&mut b);
                b
            },
            2,
        )
        .unwrap();
        at2.restore(&loaded).unwrap();
        at2.push_all(rest.iter().cloned()).unwrap();
        at2.finish().unwrap();
        let end = at2.checkpoint(7, input.len() as u64).unwrap();

        // Analyzer + node sections must equal the uninterrupted run's
        // (sinks restart their element lists on restore by design, and
        // counters continue from the restored base, so compare nodes +
        // analyzers).
        assert_eq!(end.analyzers, want_ckpt.analyzers, "analyzer state diverged after re-shard");
        assert_eq!(end.nodes, want_ckpt.nodes, "node state diverged after re-shard");

        // Post-restore releases are exactly the sequential executor's
        // post-restore releases: replay the same protocol sequentially.
        let (mut sb, seq_sinks) = pipeline_builder();
        telemetry_on(&mut sb);
        let mut seq = sb.build();
        seq.restore(&loaded).unwrap();
        seq.push_all(rest.iter().cloned()).unwrap();
        seq.finish().unwrap();
        let (_, sharded_sinks) = pipeline_builder();
        let mut resumed = Vec::new();
        for &s in &sharded_sinks {
            resumed.push(at2.sink(s).elements().to_vec());
        }
        for (i, &s) in seq_sinks.iter().enumerate() {
            assert_eq!(
                resumed[i],
                seq.sink(s).elements().to_vec(),
                "post-restore releases diverged at sink {i}"
            );
        }
        // And the full released set is covered by the ground truth run.
        for (i, outs) in resumed.iter().enumerate() {
            for e in outs {
                assert!(
                    want_outs[i].contains(e),
                    "sharded resume released an element the uninterrupted run never did"
                );
            }
        }
    }

    #[test]
    fn sequential_checkpoint_restores_sharded_and_back() {
        let input = workload(5, 200);
        let (cut, rest) = input.split_at(100);

        // Take the cut sequentially.
        let (mut b, _) = pipeline_builder();
        telemetry_on(&mut b);
        let mut seq = b.build();
        seq.push_all(cut.iter().cloned()).unwrap();
        let mid = seq.checkpoint(1, cut.len() as u64);

        // Restore at 4 shards, run the rest, checkpoint.
        let mut sharded = ShardedExecutor::new(
            || {
                let (mut b, _) = pipeline_builder();
                telemetry_on(&mut b);
                b
            },
            4,
        )
        .unwrap();
        sharded.restore(&mid).unwrap();
        sharded.push_all(rest.iter().cloned()).unwrap();
        sharded.finish().unwrap();
        let sharded_end = sharded.checkpoint(2, input.len() as u64).unwrap();

        // Reference: continue the sequential executor over the rest.
        seq.push_all(rest.iter().cloned()).unwrap();
        seq.finish().unwrap();
        let seq_end = seq.checkpoint(2, input.len() as u64);
        assert_eq!(sharded_end, seq_end, "sequential → sharded restore diverged");
    }

    #[test]
    fn shard_unsafe_operator_is_refused() {
        let err = ShardedExecutor::new(
            || {
                let mut b = PlanBuilder::new(catalog());
                let src = b.source(StreamId(1), schema());
                let dup = b.add(crate::ops::dupelim::DupElim::new(vec![0], 1_000), src);
                b.sink(dup);
                b
            },
            2,
        )
        .err()
        .unwrap();
        assert!(
            matches!(err, EngineError::ShardUnsupported { ref operator, .. } if operator == "dupelim"),
            "{err}"
        );
    }

    #[test]
    fn worker_panic_fails_closed_with_operator_panic() {
        /// Shard-safe wrapper that panics on a marker tuple id.
        struct PanicOn(Select);
        impl Operator for PanicOn {
            fn name(&self) -> &str {
                "panic-on"
            }
            fn process(
                &mut self,
                port: usize,
                elem: Element,
                out: &mut Emitter,
            ) -> Result<(), EngineError> {
                if let Element::Tuple(t) = &elem {
                    assert!(t.tid.raw() != 3, "injected shard failure");
                }
                self.0.process(port, elem, out)
            }
            fn stats(&self) -> &crate::stats::OperatorStats {
                self.0.stats()
            }
            fn snapshot(&self, buf: &mut Vec<u8>) {
                self.0.snapshot(buf);
            }
            fn restore(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
                self.0.restore(bytes)
            }
            fn shard_safe(&self) -> bool {
                true
            }
            fn delays_sps(&self) -> bool {
                self.0.delays_sps()
            }
            fn merge_shard_state(&self, parts: &[&[u8]]) -> Result<Vec<u8>, EngineError> {
                self.0.merge_shard_state(parts)
            }
        }

        let mut exec = ShardedExecutor::new(
            || {
                let mut b = PlanBuilder::new(catalog());
                let src = b.source(StreamId(1), schema());
                let p = b.add(
                    PanicOn(Select::new(Expr::cmp(
                        CmpOp::Ge,
                        Expr::Attr(1),
                        Expr::Const(Value::Int(0)),
                    ))),
                    src,
                );
                b.sink(p);
                b
            },
            2,
        )
        .unwrap();
        exec.push(
            StreamId(1),
            StreamElement::punctuation(SecurityPunctuation::grant_all(
                RoleSet::from([1]),
                Timestamp(1),
            )),
        )
        .unwrap();
        let mut saw_err = None;
        for tid in 0..16u64 {
            let elem = StreamElement::tuple(Tuple::new(
                StreamId(1),
                TupleId(tid % 5),
                Timestamp(tid + 2),
                vec![Value::Int((tid % 5) as i64), Value::Int(1)],
            ));
            if let Err(e) = exec.push(StreamId(1), elem).and_then(|()| exec.finish()) {
                saw_err = Some(e);
                break;
            }
        }
        let e = saw_err.expect("panicking shard surfaces an error");
        assert!(
            matches!(e, EngineError::OperatorPanic { .. })
                || matches!(e, EngineError::ChannelDisconnected { .. }),
            "unexpected error: {e}"
        );
        // Everything after the failure keeps failing closed.
        assert!(exec.finish().is_err());
    }

    #[test]
    fn metrics_report_shard_series_and_canonical_counters() {
        let input = workload(3, 120);
        let mut exec = ShardedExecutor::new(
            || {
                let (b, _) = pipeline_builder();
                b
            },
            2,
        )
        .unwrap();
        exec.push_all(input.iter().cloned()).unwrap();
        exec.finish().unwrap();
        let text = exec.metrics_prometheus();
        assert!(text.contains("sp_shard_count 2"), "{text}");
        assert!(text.contains("sp_shard_routed_total{shard=\"0\"}"), "{text}");
        assert!(text.contains("sp_shard_broadcast_total"), "{text}");
        assert!(text.contains("sp_tuples_in_total"), "{text}");

        // Canonical counters equal the sequential executor's.
        let (b, _) = pipeline_builder();
        let mut seq = b.build();
        seq.push_all(input.iter().cloned()).unwrap();
        seq.finish().unwrap();
        let seq_ckpt = seq.checkpoint(0, 0);
        let sharded_ckpt = exec.checkpoint(0, 0).unwrap();
        assert_eq!(sharded_ckpt.nodes, seq_ckpt.nodes);
    }
}
