//! The stream operator abstraction and output collector.

use crate::batch::ElementBatch;
use crate::element::Element;
use crate::error::EngineError;
use crate::stats::OperatorStats;

/// Collects the elements an operator emits during one `process` or
/// `process_batch` call; the executor then routes them to downstream
/// operators.
#[derive(Debug, Default)]
pub struct Emitter {
    buf: Vec<Element>,
}

impl Emitter {
    /// An empty emitter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty emitter with room for `capacity` elements, so hot loops
    /// reusing one emitter avoid regrowing it per drain.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self { buf: Vec::with_capacity(capacity) }
    }

    /// Ensures space for at least `additional` more elements (batch fast
    /// paths reserve once per run instead of growing per element).
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Emits one element downstream.
    pub fn push(&mut self, elem: Element) {
        self.buf.push(elem);
    }

    /// Drains everything emitted so far.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Element> {
        self.buf.drain(..)
    }

    /// Takes the buffer (test helper).
    #[must_use]
    pub fn take(&mut self) -> Vec<Element> {
        std::mem::take(&mut self.buf)
    }

    /// Number of pending elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A pipelined stream operator.
///
/// Operators are single-threaded state machines: the executor feeds them one
/// element at a time through [`Operator::process`] together with the input
/// port it arrived on (0 for unary operators, 0/1 for joins). Operators own
/// their cost counters so the evaluation harness can read per-operator
/// breakdowns.
pub trait Operator: Send {
    /// Operator name for plan display ("ss", "select", "sajoin", ...).
    fn name(&self) -> &str;

    /// Number of input ports (1 for unary, 2 for binary operators).
    fn arity(&self) -> usize {
        1
    }

    /// Processes one input element, emitting any outputs.
    ///
    /// Stream data is untrusted: implementations must report malformed
    /// input through [`EngineError`] rather than panicking, so a hostile
    /// stream can fail one query without taking the engine down.
    fn process(&mut self, port: usize, elem: Element, out: &mut Emitter)
        -> Result<(), EngineError>;

    /// Processes a whole run of elements that arrived on one port.
    ///
    /// The default loops [`Operator::process`], so every operator is
    /// batch-capable by construction. Hot operators override this with
    /// vectorized fast paths (the Security Shield releases or suppresses a
    /// whole segment run under one cached verdict; select/project run
    /// tight loops without per-element clock reads).
    ///
    /// **Equivalence contract**: an override must be observationally
    /// identical to the default — same emitted elements in the same
    /// order, same logical counters, same audit records, same snapshot
    /// bytes — for *any* batch, including mixed-kind ones (the routers
    /// only build kind-homogeneous batches, but the differential tests
    /// drive arbitrary cuts). Only wall-clock cost buckets, which are
    /// excluded from canonical encodings, may differ.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EngineError`]; elements after the failing
    /// one are not processed (fail-closed, matching the executor's
    /// discard-on-error semantics).
    fn process_batch(
        &mut self,
        port: usize,
        batch: ElementBatch,
        out: &mut Emitter,
    ) -> Result<(), EngineError> {
        for elem in batch {
            self.process(port, elem, out)?;
        }
        Ok(())
    }

    /// Cost counters.
    fn stats(&self) -> &OperatorStats;

    /// Fail-closed degradation counters this operator contributes, if it
    /// participates in degradation (load shedders report shed counts and
    /// ladder state here). The executor sums these into the plan-wide
    /// [`crate::stats::DegradationStats`]; operators that never degrade
    /// use the default `None`.
    fn degradation(&self) -> Option<crate::stats::DegradationStats> {
        None
    }

    /// Whether this operator may be replicated across key-partitioned
    /// shards (each replica sees only its shard's tuples, but *every*
    /// security punctuation). True only when the operator's output and
    /// state depend on each tuple independently plus broadcast policy
    /// state — per-tuple filters, projections, and the Security Shield
    /// qualify. Whole-stream operators (joins, dup-elim, aggregation,
    /// load shedders) must keep the default `false`: partitioning would
    /// silently change their results, so the sharded builder refuses
    /// them fail-closed.
    fn shard_safe(&self) -> bool {
        false
    }

    /// Whether this operator practises *delayed sp propagation*: it holds
    /// the latest segment policy pending and flushes it downstream only
    /// before the first surviving tuple of the segment (§IV-B). Under key
    /// partitioning the flush moment is tuple-dependent and therefore
    /// shard-local, so the sharded builder requires such an operator to
    /// reach its sink through [`Operator::policy_transparent`] operators
    /// only (sole ownership at every step) — the exchange coordinator
    /// then deduplicates the per-shard flushes (the first flush in merged
    /// seq order lands exactly at the sequential position) and
    /// reconstructs the canonical `sps_out` from the canonical sink's
    /// intake. Two delaying operators on one path are refused: the
    /// downstream one's pending policy diverges in *value* per shard.
    fn delays_sps(&self) -> bool {
        false
    }

    /// Whether this operator forwards every arriving segment policy
    /// downstream immediately, exactly once, and deterministically
    /// (possibly transformed — projection remaps attribute grants to
    /// output positions). Such operators may sit *between* a
    /// delayed-propagation operator and its sink under key-partitioned
    /// sharding: per-shard duplicate flushes stay byte-equal through
    /// them, so the exchange's sink-side dedup still recognizes copies,
    /// and their canonical sp counters equal the sink's deduplicated
    /// intake. Operators that hold, drop, reorder, or multiply policies
    /// keep the default `false`.
    fn policy_transparent(&self) -> bool {
        false
    }

    /// Merges the post-counter state suffixes of this operator's shard
    /// replicas into the canonical (sequential-equivalent) suffix for a
    /// shard-spanning checkpoint. `parts` holds one suffix per shard (the
    /// snapshot bytes after the logical-counter prefix), aligned on the
    /// same barrier.
    ///
    /// The default demands byte-equality — correct for every operator
    /// whose state is a pure function of the broadcast policy sequence.
    /// Operators with tuple-dependent state (a pending policy awaiting its
    /// first survivor) override this with a semantic merge.
    ///
    /// # Errors
    ///
    /// Fails closed with [`EngineError::ShardDivergence`] when the
    /// replicas disagree in a way the operator cannot reconcile.
    fn merge_shard_state(&self, parts: &[&[u8]]) -> Result<Vec<u8>, EngineError> {
        let Some((first, rest)) = parts.split_first() else {
            return Ok(Vec::new());
        };
        if rest.iter().any(|p| p != first) {
            return Err(EngineError::ShardDivergence {
                stage: self.name().into(),
                reason: "shard replicas hold different operator state at an aligned barrier".into(),
            });
        }
        Ok(first.to_vec())
    }

    /// Approximate heap footprint of the operator state in bytes.
    fn state_mem_bytes(&self) -> usize {
        0
    }

    /// Replaces the operator's security predicate, if it has one. Returns
    /// false for operators without a predicate (the default).
    ///
    /// This implements the paper's §IX future-work item — "runtime changes
    /// in subjects' role assignments": when a subject's roles change, the
    /// shields of its registered queries are updated in place instead of
    /// tearing the plan down.
    fn update_predicate(&mut self, _roles: &sp_core::RoleSet) -> bool {
        false
    }

    /// Enables the operator's security flight recorder with the given
    /// ring capacity. Returns false (the default) for operators that make
    /// no access-control decisions and therefore record nothing.
    ///
    /// Audit state is observability, not operator state: it is excluded
    /// from [`Operator::snapshot`] and cleared by [`Operator::restore`],
    /// so deterministic replay after a crash repopulates the ring without
    /// duplicating pre-crash records.
    fn set_audit(&mut self, _capacity: usize) -> bool {
        false
    }

    /// The operator's flight recorder, when it has one and it is enabled.
    fn audit(&self) -> Option<&crate::telemetry::FlightRecorder> {
        None
    }

    /// Enables the operator's sp-trace span recorder with the given ring
    /// capacity. Returns false (the default) for operators that record no
    /// spans. Like audit state, span state is observability, not operator
    /// state: excluded from [`Operator::snapshot`] and cleared by
    /// [`Operator::restore`] so deterministic replay repopulates it.
    fn set_spans(&mut self, _capacity: usize) -> bool {
        false
    }

    /// The operator's span recorder, when it has one and it is enabled.
    fn spans(&self) -> Option<&crate::telemetry::SpanRecorder> {
        None
    }

    /// The operator's enforcement-lag tracker, when it has one and it is
    /// armed (tracking is armed together with spans via
    /// [`Operator::set_spans`]).
    fn lag(&self) -> Option<&crate::telemetry::LagTracker> {
        None
    }

    /// Serializes the operator's mutable state for an epoch checkpoint.
    ///
    /// The encoding must be **canonical**: two operators in the same state
    /// produce identical bytes (maps are written in sorted order, derived
    /// caches are excluded), so checkpoints can be compared byte-wise
    /// across runs and runtimes. Configuration (predicates, windows,
    /// roles) is *not* serialized — a restore target is rebuilt from the
    /// same plan, so only runtime state travels. Wall-clock cost buckets
    /// are excluded for the same reason; logical counters are included via
    /// [`OperatorStats::encode_counters`](crate::stats::OperatorStats::encode_counters).
    ///
    /// Stateless operators use the default empty snapshot.
    fn snapshot(&self, buf: &mut Vec<u8>) {
        let _ = buf;
    }

    /// Restores state from bytes produced by [`Operator::snapshot`] on an
    /// identically-configured operator.
    ///
    /// Restore is fail-closed: on any decode error the operator must
    /// return [`EngineError::CheckpointCorrupt`] and the caller must
    /// discard the whole executor rather than run with partial state.
    ///
    /// # Errors
    ///
    /// Fails when the snapshot is truncated or malformed.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(EngineError::corrupt(self.name(), "stateless operator given non-empty snapshot"))
        }
    }
}

/// Test/bench helper: runs a sequence of elements through a single operator
/// and returns everything it emits.
///
/// # Panics
///
/// Panics if the operator reports an [`EngineError`]; harness code wants
/// the loud failure. Production paths go through the executor, which
/// propagates instead.
#[allow(clippy::expect_used)] // harness helper: a loud failure is the point
pub fn run_unary(op: &mut dyn Operator, input: impl IntoIterator<Item = Element>) -> Vec<Element> {
    let mut out = Emitter::new();
    let mut collected = Vec::new();
    for elem in input {
        op.process(0, elem, &mut out).expect("operator failed in run_unary");
        collected.extend(out.drain());
    }
    collected
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use sp_core::{StreamId, Timestamp, Tuple, TupleId};

    struct Echo {
        stats: OperatorStats,
    }

    impl Operator for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn process(
            &mut self,
            _port: usize,
            elem: Element,
            out: &mut Emitter,
        ) -> Result<(), EngineError> {
            self.stats.tuples_in += 1;
            out.push(elem);
            Ok(())
        }
        fn stats(&self) -> &OperatorStats {
            &self.stats
        }
    }

    #[test]
    fn emitter_collects_and_drains() {
        let mut e = Emitter::new();
        assert!(e.is_empty());
        e.push(Element::tuple(Tuple::new(StreamId(0), TupleId(1), Timestamp(0), vec![])));
        assert_eq!(e.len(), 1);
        let taken = e.take();
        assert_eq!(taken.len(), 1);
        assert!(e.is_empty());
    }

    #[test]
    fn run_unary_round_trips() {
        let mut op = Echo { stats: OperatorStats::new() };
        let input = vec![
            Element::tuple(Tuple::new(StreamId(0), TupleId(1), Timestamp(0), vec![])),
            Element::tuple(Tuple::new(StreamId(0), TupleId(2), Timestamp(1), vec![])),
        ];
        let out = run_unary(&mut op, input.clone());
        assert_eq!(out, input);
        assert_eq!(op.stats().tuples_in, 2);
        assert_eq!(op.arity(), 1);
        assert_eq!(op.state_mem_bytes(), 0);
    }
}
