//! Scalar expressions over tuples — selection predicates, projection inputs
//! and join conditions are built from these.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use sp_core::{Schema, Tuple, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        })
    }
}

/// A scalar expression evaluated against one tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The attribute at a positional index.
    Attr(usize),
    /// A constant.
    Const(Value),
    /// Comparison of two sub-expressions (SQL three-valued: incomparable
    /// operands evaluate to false).
    Cmp(CmpOp, Arc<Expr>, Arc<Expr>),
    /// Arithmetic over numerics (`Null` if either side is non-numeric).
    Arith(ArithOp, Arc<Expr>, Arc<Expr>),
    /// Logical conjunction.
    And(Arc<Expr>, Arc<Expr>),
    /// Logical disjunction.
    Or(Arc<Expr>, Arc<Expr>),
    /// Logical negation.
    Not(Arc<Expr>),
}

impl Expr {
    /// `attr op const` shorthand.
    #[must_use]
    pub fn cmp(op: CmpOp, left: Expr, right: Expr) -> Expr {
        Expr::Cmp(op, Arc::new(left), Arc::new(right))
    }

    /// Conjunction shorthand.
    #[must_use]
    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::And(Arc::new(left), Arc::new(right))
    }

    /// Disjunction shorthand.
    #[must_use]
    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::Or(Arc::new(left), Arc::new(right))
    }

    /// Negation shorthand.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // associated constructor, not an operator impl
    pub fn not(inner: Expr) -> Expr {
        Expr::Not(Arc::new(inner))
    }

    /// Arithmetic shorthand.
    #[must_use]
    pub fn arith(op: ArithOp, left: Expr, right: Expr) -> Expr {
        Expr::Arith(op, Arc::new(left), Arc::new(right))
    }

    /// Evaluates to a [`Value`].
    #[must_use]
    pub fn eval(&self, tuple: &Tuple) -> Value {
        match self {
            Expr::Attr(i) => tuple.value(*i).cloned().unwrap_or(Value::Null),
            Expr::Const(v) => v.clone(),
            Expr::Cmp(op, l, r) => {
                let (lv, rv) = (l.eval(tuple), r.eval(tuple));
                match lv.compare(&rv) {
                    Some(ord) => Value::Bool(op.test(ord)),
                    None => Value::Bool(false),
                }
            }
            Expr::Arith(op, l, r) => {
                let (lv, rv) = (l.eval(tuple), r.eval(tuple));
                match (lv.as_i64(), rv.as_i64()) {
                    // Integer arithmetic when both sides are ints.
                    (Some(a), Some(b)) => match op {
                        ArithOp::Add => Value::Int(a.wrapping_add(b)),
                        ArithOp::Sub => Value::Int(a.wrapping_sub(b)),
                        ArithOp::Mul => Value::Int(a.wrapping_mul(b)),
                        ArithOp::Div => {
                            if b == 0 {
                                Value::Null
                            } else {
                                Value::Int(a.wrapping_div(b))
                            }
                        }
                    },
                    _ => match (lv.as_f64(), rv.as_f64()) {
                        (Some(a), Some(b)) => match op {
                            ArithOp::Add => Value::Float(a + b),
                            ArithOp::Sub => Value::Float(a - b),
                            ArithOp::Mul => Value::Float(a * b),
                            ArithOp::Div => Value::Float(a / b),
                        },
                        _ => Value::Null,
                    },
                }
            }
            Expr::And(l, r) => Value::Bool(
                l.eval(tuple).as_bool().unwrap_or(false)
                    && r.eval(tuple).as_bool().unwrap_or(false),
            ),
            Expr::Or(l, r) => Value::Bool(
                l.eval(tuple).as_bool().unwrap_or(false)
                    || r.eval(tuple).as_bool().unwrap_or(false),
            ),
            Expr::Not(inner) => Value::Bool(!inner.eval(tuple).as_bool().unwrap_or(false)),
        }
    }

    /// Evaluates as a predicate (`Null`/non-boolean → false).
    #[must_use]
    pub fn test(&self, tuple: &Tuple) -> bool {
        self.eval(tuple).as_bool().unwrap_or(false)
    }

    /// Every attribute index referenced by this expression.
    pub fn referenced_attrs(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Attr(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            Expr::Const(_) => {}
            Expr::Cmp(_, l, r) | Expr::Arith(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) => {
                l.referenced_attrs(out);
                r.referenced_attrs(out);
            }
            Expr::Not(inner) => inner.referenced_attrs(out),
        }
    }

    /// Rewrites attribute indices through `mapping` (used when commuting
    /// operators past projections).
    #[must_use]
    pub fn remap_attrs(&self, mapping: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Attr(i) => Expr::Attr(mapping(*i)),
            Expr::Const(v) => Expr::Const(v.clone()),
            Expr::Cmp(op, l, r) => {
                Expr::Cmp(*op, Arc::new(l.remap_attrs(mapping)), Arc::new(r.remap_attrs(mapping)))
            }
            Expr::Arith(op, l, r) => {
                Expr::Arith(*op, Arc::new(l.remap_attrs(mapping)), Arc::new(r.remap_attrs(mapping)))
            }
            Expr::And(l, r) => Expr::and(l.remap_attrs(mapping), r.remap_attrs(mapping)),
            Expr::Or(l, r) => Expr::or(l.remap_attrs(mapping), r.remap_attrs(mapping)),
            Expr::Not(inner) => Expr::not(inner.remap_attrs(mapping)),
        }
    }

    /// Renders the expression with attribute names from `schema`.
    #[must_use]
    pub fn display(&self, schema: &Schema) -> String {
        match self {
            Expr::Attr(i) => {
                schema.field(*i).map_or_else(|| format!("#{i}"), |f| f.name.to_string())
            }
            Expr::Const(v) => match v {
                Value::Text(s) => format!("'{s}'"),
                other => other.to_string(),
            },
            Expr::Cmp(op, l, r) => {
                format!("{} {} {}", l.display(schema), op, r.display(schema))
            }
            Expr::Arith(op, l, r) => {
                format!("({} {} {})", l.display(schema), op, r.display(schema))
            }
            Expr::And(l, r) => format!("({} AND {})", l.display(schema), r.display(schema)),
            Expr::Or(l, r) => format!("({} OR {})", l.display(schema), r.display(schema)),
            Expr::Not(inner) => format!("NOT {}", inner.display(schema)),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use sp_core::{StreamId, Timestamp, TupleId, ValueType};

    fn tup(vals: Vec<Value>) -> Tuple {
        Tuple::new(StreamId(0), TupleId(0), Timestamp(0), vals)
    }

    #[test]
    fn comparisons() {
        let t = tup(vec![Value::Int(5), Value::text("x")]);
        assert!(Expr::cmp(CmpOp::Gt, Expr::Attr(0), Expr::Const(Value::Int(3))).test(&t));
        assert!(Expr::cmp(CmpOp::Le, Expr::Attr(0), Expr::Const(Value::Int(5))).test(&t));
        assert!(Expr::cmp(CmpOp::Eq, Expr::Attr(1), Expr::Const(Value::text("x"))).test(&t));
        assert!(Expr::cmp(CmpOp::Ne, Expr::Attr(1), Expr::Const(Value::text("y"))).test(&t));
        // incomparable -> false
        assert!(!Expr::cmp(CmpOp::Eq, Expr::Attr(1), Expr::Const(Value::Int(1))).test(&t));
        // missing attr -> Null -> false
        assert!(!Expr::cmp(CmpOp::Eq, Expr::Attr(9), Expr::Const(Value::Int(1))).test(&t));
    }

    #[test]
    fn boolean_logic() {
        let t = tup(vec![Value::Int(5)]);
        let gt3 = Expr::cmp(CmpOp::Gt, Expr::Attr(0), Expr::Const(Value::Int(3)));
        let lt4 = Expr::cmp(CmpOp::Lt, Expr::Attr(0), Expr::Const(Value::Int(4)));
        assert!(Expr::or(gt3.clone(), lt4.clone()).test(&t));
        assert!(!Expr::and(gt3.clone(), lt4.clone()).test(&t));
        assert!(Expr::not(lt4).test(&t));
        assert!(Expr::and(gt3.clone(), Expr::not(Expr::not(gt3))).test(&t));
    }

    #[test]
    fn arithmetic() {
        let t = tup(vec![Value::Int(10), Value::Float(2.5)]);
        let sum = Expr::arith(ArithOp::Add, Expr::Attr(0), Expr::Attr(1));
        assert_eq!(sum.eval(&t), Value::Float(12.5));
        let int_div = Expr::arith(ArithOp::Div, Expr::Attr(0), Expr::Const(Value::Int(3)));
        assert_eq!(int_div.eval(&t), Value::Int(3));
        let div0 = Expr::arith(ArithOp::Div, Expr::Attr(0), Expr::Const(Value::Int(0)));
        assert!(div0.eval(&t).is_null());
        let bad = Expr::arith(ArithOp::Mul, Expr::Attr(0), Expr::Const(Value::text("x")));
        assert!(bad.eval(&t).is_null());
        let float_div0 = Expr::arith(ArithOp::Div, Expr::Attr(1), Expr::Const(Value::Float(0.0)));
        assert_eq!(float_div0.eval(&t), Value::Float(f64::INFINITY));
    }

    #[test]
    fn referenced_and_remap() {
        let e = Expr::and(
            Expr::cmp(CmpOp::Eq, Expr::Attr(2), Expr::Attr(0)),
            Expr::cmp(CmpOp::Gt, Expr::Attr(2), Expr::Const(Value::Int(1))),
        );
        let mut attrs = Vec::new();
        e.referenced_attrs(&mut attrs);
        assert_eq!(attrs, vec![2, 0]);
        let remapped = e.remap_attrs(&|i| i + 10);
        let mut attrs2 = Vec::new();
        remapped.referenced_attrs(&mut attrs2);
        assert_eq!(attrs2, vec![12, 10]);
    }

    #[test]
    fn display_uses_schema_names() {
        let schema = Schema::of("s", &[("x", ValueType::Int), ("y", ValueType::Int)]);
        let e = Expr::cmp(CmpOp::Lt, Expr::Attr(0), Expr::Const(Value::Int(9)));
        assert_eq!(e.display(&schema), "x < 9");
        let txt = Expr::cmp(CmpOp::Eq, Expr::Attr(1), Expr::Const(Value::text("hi")));
        assert_eq!(txt.display(&schema), "y = 'hi'");
    }
}
