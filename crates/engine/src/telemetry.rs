//! Security-decision audit trail and live telemetry.
//!
//! Three cooperating facilities (ISSUE 4; motivated by SecureStreams'
//! and Streamforce's auditable-enforcement requirements):
//!
//! 1. **Flight recorder** ([`FlightRecorder`]) — a bounded ring buffer of
//!    [`AuditRecord`]s, one per access-control decision: tuple released
//!    (with the authorizing role and the governing sp-batch timestamp),
//!    suppressed, shed, quarantined (with a [`QuarantineReason`]),
//!    stale-sp discarded, ladder transition, checkpoint restore, terminal
//!    fail-closed. Records are keyed to *stream time* and tuple ids only
//!    — never wall clock — so sequential and parallel runs over the same
//!    input produce byte-identical audit streams (see [`AuditTrail`]).
//! 2. **Metrics registry** ([`MetricsRegistry`]) — log₂-bucket
//!    [`Histogram`]s (per-operator latency, queue depth) plus named
//!    counters, with associative order-insensitive merge, rendered as
//!    Prometheus text exposition or a JSON snapshot.
//! 3. **Causal span plane — sp-trace** ([`SpanRecorder`] / [`SpanSheet`])
//!    — a bounded ring of [`SpanRecord`]s per operator, one per causal
//!    hop of an element (wire ingress, analyzer resolution, shield
//!    enforcement, release/suppress, standby apply). Trace and span ids
//!    are derived deterministically from element identity
//!    ([`sp_core::trace`]), so spans recorded by the client, the server,
//!    a parallel worker, and a promoted standby merge into one tree.
//!    Recording is *runtime-toggleable* via [`span::set_enabled`]; the
//!    `trace-off` cargo feature is a compile-time hard-off override.
//! 4. **Enforcement-lag tracking** ([`LagTracker`]) — per-shield
//!    histograms of the paper's immediate-enforcement promise: sp-arrival
//!    → enforcement lag, sp-arrival → first-affected-release lag, and
//!    revocation → suppression lag (the "security hole" width), all in
//!    stream time so replays reproduce them exactly.
//! 5. **Span facade** ([`span::span`]) — structured begin/end markers
//!    around executor steps, epoch cuts and supervisor recoveries.
//!    Compiled to nothing unless the `trace` cargo feature is on (no
//!    `tracing` crate is vendored, so the facade is in-crate).
//!
//! Telemetry is **off by default**: a [`FlightRecorder`] or
//! [`SpanRecorder`] with capacity 0 never allocates, and an executor
//! built without [`TelemetryConfig::enabled`] takes no histogram samples,
//! so the hot path is unchanged when observability is not requested.
//!
//! Audit state is deliberately **not** checkpointed: the recorder is an
//! observability surface, not replayable operator state. On restore every
//! recorder is cleared, and deterministic replay repopulates it — so a
//! recovered run's audit suffix matches an unkilled run's.

use std::collections::VecDeque;

use sp_core::{RoleCatalog, RoleId};

use crate::overload::OverloadLevel;

/// Sentinel tuple id for audit records not tied to a single tuple
/// (ladder transitions, restores, stale-sp batch discards).
pub const NO_TUPLE: u64 = u64::MAX;

/// Sentinel sp-batch timestamp meaning "no governing sp" (suppression by
/// the default-deny rule rather than an explicit policy).
pub const NO_SP: u64 = u64::MAX;

/// Default ring capacity used by [`TelemetryConfig::enabled`].
pub const DEFAULT_AUDIT_CAPACITY: usize = 4096;

/// Default span-ring capacity used by [`TelemetryConfig::enabled`].
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// Why the analyzer quarantined (or dropped a quarantined) tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// No sp-batch governed the tuple's timestamp on arrival (ttl check).
    Uncovered,
    /// The tuple sat in quarantine longer than the policy's slack allows.
    SlackExpired,
    /// The quarantine ring was full; the oldest occupant was evicted.
    CapacityEvicted,
    /// A newer sp-batch settled the quarantine but its interval had
    /// already passed the tuple over — no policy will ever cover it.
    PassedOver,
}

impl QuarantineReason {
    /// Stable numeric code used in the deterministic encoding.
    #[must_use]
    pub const fn code(self) -> u8 {
        match self {
            Self::Uncovered => 0,
            Self::SlackExpired => 1,
            Self::CapacityEvicted => 2,
            Self::PassedOver => 3,
        }
    }

    /// Short human-readable name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Uncovered => "no governing sp",
            Self::SlackExpired => "slack expired",
            Self::CapacityEvicted => "capacity evicted",
            Self::PassedOver => "passed over by newer sp",
        }
    }
}

/// Why the crypto-enforced client suppressed ciphertext instead of
/// releasing it (carried in [`AuditEvent::CipherSuppressed`]).
///
/// Every variant is fail-closed: the offending frame — and, where the
/// violation poisons the whole segment, every frame of that segment — is
/// suppressed and counted, never released, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CipherViolation {
    /// The AEAD tag did not verify (corrupted or forged ciphertext).
    AuthFailed,
    /// The frame was shorter than a tag, or otherwise cut mid-body.
    Truncated,
    /// The segment sequence number was not strictly greater than the
    /// last committed segment (a replayed segment).
    Replayed,
    /// A DATA frame's index broke the strictly-increasing order the
    /// nonce schedule requires (a reused or swapped nonce).
    NonceReused,
    /// The header's key epoch was not the client's current epoch
    /// (revoked or rolled-back key material).
    StaleKeyEpoch,
    /// The segment digest verified the AEAD but did not match the
    /// received DATA ciphertext (dropped/substituted frames).
    DigestMismatch,
    /// The terminator arrived without any digest frame.
    DigestMissing,
    /// A segment was abandoned before its terminator (interleaved or
    /// torn segment).
    Incomplete,
    /// The frame's fields made no sense for the current state (wrong
    /// stream, data before header, …).
    Malformed,
}

impl CipherViolation {
    /// Stable numeric code used in the deterministic encoding.
    #[must_use]
    pub const fn code(self) -> u8 {
        match self {
            Self::AuthFailed => 0,
            Self::Truncated => 1,
            Self::Replayed => 2,
            Self::NonceReused => 3,
            Self::StaleKeyEpoch => 4,
            Self::DigestMismatch => 5,
            Self::DigestMissing => 6,
            Self::Incomplete => 7,
            Self::Malformed => 8,
        }
    }

    /// Short human-readable name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::AuthFailed => "authentication failed",
            Self::Truncated => "truncated frame",
            Self::Replayed => "replayed segment",
            Self::NonceReused => "nonce reuse",
            Self::StaleKeyEpoch => "stale key epoch",
            Self::DigestMismatch => "segment digest mismatch",
            Self::DigestMissing => "segment digest missing",
            Self::Incomplete => "incomplete segment",
            Self::Malformed => "malformed frame",
        }
    }
}

/// One security-relevant event, the payload of an [`AuditRecord`].
///
/// Every variant is `Copy` and carries only stream-time / identifier
/// fields so the encoding is deterministic across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditEvent {
    /// The security shield released the tuple to a subject holding
    /// `role`, authorized by the sp-batch stamped `sp_ts`.
    Released {
        /// First predicate role the governing policy grants.
        role: u32,
        /// Timestamp of the governing sp-batch (its DDP identity).
        sp_ts: u64,
    },
    /// The shield suppressed the tuple; `sp_ts` is the governing
    /// sp-batch, or [`NO_SP`] for default-deny (no policy at all).
    Suppressed {
        /// Governing sp-batch timestamp, or [`NO_SP`].
        sp_ts: u64,
    },
    /// The load shedder discarded the tuple at the given ladder rung
    /// ([`OverloadLevel::code`]).
    Shed {
        /// Ladder rung code at the moment of the decision.
        level: u8,
    },
    /// The analyzer quarantined the tuple instead of forwarding it.
    Quarantined {
        /// Why the tuple could not be forwarded.
        reason: QuarantineReason,
    },
    /// A late sp-batch covered a quarantined tuple; it was released back
    /// into the stream.
    QuarantineReleased,
    /// A quarantined tuple was dropped for good.
    QuarantineDropped {
        /// Why the tuple was condemned.
        reason: QuarantineReason,
    },
    /// An entire sp-batch arrived too late (behind the stream clock) and
    /// was discarded unapplied. `ts` on the record is the batch stamp.
    StaleSpDiscarded,
    /// The degradation ladder moved between rungs
    /// (codes per [`OverloadLevel::code`]).
    LadderTransition {
        /// Rung before the move.
        from: u8,
        /// Rung after the move.
        to: u8,
    },
    /// The supervisor restored the pipeline from the checkpoint cut at
    /// `epoch` (record `ts` is the resumed input position).
    Restored {
        /// Epoch of the checkpoint used.
        epoch: u64,
    },
    /// Recovery was exhausted and the supervisor failed closed, refusing
    /// the remaining input.
    RecoveryFailClosed {
        /// Number of input elements refused (never processed).
        refused: u64,
    },
    /// A tentatively released tuple was retracted because its segment
    /// failed verification before the terminator committed it.
    TentativeRolledBack {
        /// Segment whose verification failed.
        seg: u64,
    },
    /// The crypto-enforced client suppressed ciphertext (record `ts` is
    /// the stream time of the decision; `tid` is the tuple when known,
    /// [`NO_TUPLE`] for whole-frame/segment violations).
    CipherSuppressed {
        /// Why the ciphertext could not be released.
        reason: CipherViolation,
    },
}

impl AuditEvent {
    /// Short event name (used in rendering and the JSON snapshot).
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            Self::Released { .. } => "released",
            Self::Suppressed { .. } => "suppressed",
            Self::Shed { .. } => "shed",
            Self::Quarantined { .. } => "quarantined",
            Self::QuarantineReleased => "quarantine_released",
            Self::QuarantineDropped { .. } => "quarantine_dropped",
            Self::StaleSpDiscarded => "stale_sp_discarded",
            Self::LadderTransition { .. } => "ladder_transition",
            Self::Restored { .. } => "restored",
            Self::RecoveryFailClosed { .. } => "recovery_fail_closed",
            Self::TentativeRolledBack { .. } => "tentative_rolled_back",
            Self::CipherSuppressed { .. } => "cipher_suppressed",
        }
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            Self::Released { role, sp_ts } => {
                buf.push(0);
                buf.extend_from_slice(&role.to_be_bytes());
                buf.extend_from_slice(&sp_ts.to_be_bytes());
            }
            Self::Suppressed { sp_ts } => {
                buf.push(1);
                buf.extend_from_slice(&sp_ts.to_be_bytes());
            }
            Self::Shed { level } => {
                buf.push(2);
                buf.push(level);
            }
            Self::Quarantined { reason } => {
                buf.push(3);
                buf.push(reason.code());
            }
            Self::QuarantineReleased => buf.push(4),
            Self::QuarantineDropped { reason } => {
                buf.push(5);
                buf.push(reason.code());
            }
            Self::StaleSpDiscarded => buf.push(6),
            Self::LadderTransition { from, to } => {
                buf.push(7);
                buf.push(from);
                buf.push(to);
            }
            Self::Restored { epoch } => {
                buf.push(8);
                buf.extend_from_slice(&epoch.to_be_bytes());
            }
            Self::RecoveryFailClosed { refused } => {
                buf.push(9);
                buf.extend_from_slice(&refused.to_be_bytes());
            }
            Self::TentativeRolledBack { seg } => {
                buf.push(10);
                buf.extend_from_slice(&seg.to_be_bytes());
            }
            Self::CipherSuppressed { reason } => {
                buf.push(11);
                buf.push(reason.code());
            }
        }
    }
}

/// One entry in the flight recorder: *which tuple*, *when in stream
/// time*, *what was decided*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditRecord {
    /// Tuple id the decision concerns, or [`NO_TUPLE`].
    pub tid: u64,
    /// Stream time of the decision (tuple or batch timestamp — never
    /// wall clock, so replays reproduce it exactly).
    pub ts: u64,
    /// The decision itself.
    pub event: AuditEvent,
}

impl AuditRecord {
    /// Appends the deterministic big-endian encoding to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.tid.to_be_bytes());
        buf.extend_from_slice(&self.ts.to_be_bytes());
        self.event.encode(buf);
    }
}

/// Bounded ring buffer of [`AuditRecord`]s — the per-operator "flight
/// recorder".
///
/// Capacity 0 (the [`Default`]) means *disabled*: [`FlightRecorder::record`]
/// is a branch and a return, with no allocation ever. When full, the
/// oldest record is evicted and counted, so the ring always holds the
/// most recent `capacity` decisions and [`FlightRecorder::evicted`]
/// reports how much history scrolled off.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    capacity: usize,
    records: VecDeque<AuditRecord>,
    evicted: u64,
}

impl FlightRecorder {
    /// A recorder that keeps the latest `capacity` records
    /// (0 = disabled).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self { capacity, records: VecDeque::new(), evicted: 0 }
    }

    /// A disabled recorder (capacity 0).
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether recording is on (capacity > 0).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Configured ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one decision; a no-op when disabled.
    #[inline]
    pub fn record(&mut self, tid: u64, ts: u64, event: AuditEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.records.len() >= self.capacity {
            self.records.pop_front();
            self.evicted += 1;
        }
        self.records.push_back(AuditRecord { tid, ts, event });
    }

    /// Records kept, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &AuditRecord> {
        self.records.iter()
    }

    /// Number of records currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the ring holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted because the ring was full.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Discards all records and the eviction count (capacity keeps).
    /// Called on operator `restore` so deterministic replay repopulates
    /// the ring without duplicating pre-crash history.
    pub fn clear(&mut self) {
        self.records.clear();
        self.evicted = 0;
    }

    /// Appends the deterministic encoding: eviction count, record count,
    /// then each record oldest-first.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.evicted.to_be_bytes());
        buf.extend_from_slice(&(self.records.len() as u32).to_be_bytes());
        for r in &self.records {
            r.encode(buf);
        }
    }
}

/// Which pipeline stage a trail section came from. The derived `Ord`
/// (sources ascending, then nodes ascending, then the supervisor) is the
/// canonical section order of an [`AuditTrail`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AuditOp {
    /// The ingestion boundary before the pipeline (server tenant worker
    /// or standby apply loop) — used by the span plane; ordinary audit
    /// trails never contain it, so their encodings are unchanged.
    Ingress,
    /// The sp-analyzer guarding source slot `n`.
    Source(u32),
    /// The operator in plan node slot `n`.
    Node(u32),
    /// The crash-recovery supervisor.
    Supervisor,
}

impl AuditOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            Self::Source(i) => {
                buf.push(0);
                buf.extend_from_slice(&i.to_be_bytes());
            }
            Self::Node(i) => {
                buf.push(1);
                buf.extend_from_slice(&i.to_be_bytes());
            }
            Self::Supervisor => buf.push(2),
            Self::Ingress => buf.push(3),
        }
    }

    fn label(&self) -> String {
        match *self {
            Self::Source(i) => format!("source {i}"),
            Self::Node(i) => format!("node {i}"),
            Self::Supervisor => "supervisor".into(),
            Self::Ingress => "ingress".into(),
        }
    }
}

/// A whole pipeline's audit history: one [`FlightRecorder`] per
/// recording operator, in canonical [`AuditOp`] order.
///
/// Within one operator, record order is fixed by the runtime (each
/// operator processes its input serially in both the sequential executor
/// and the pipeline-parallel runner), and the canonical section order
/// removes the only run-dependent freedom — thread interleaving — so
/// [`AuditTrail::encode_to_vec`] is identical for sequential and
/// parallel runs over the same input.
#[derive(Debug, Clone, Default)]
pub struct AuditTrail {
    sections: Vec<(AuditOp, FlightRecorder)>,
}

impl AuditTrail {
    /// An empty trail.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one operator's recorder, keeping sections in canonical
    /// order regardless of insertion order.
    pub fn push_section(&mut self, op: AuditOp, recorder: FlightRecorder) {
        self.sections.push((op, recorder));
        self.sections.sort_by_key(|(op, _)| *op);
    }

    /// The sections in canonical order.
    pub fn sections(&self) -> impl Iterator<Item = (AuditOp, &FlightRecorder)> {
        self.sections.iter().map(|(op, r)| (*op, r))
    }

    /// Every record with its originating operator, section by section.
    pub fn records(&self) -> impl Iterator<Item = (AuditOp, &AuditRecord)> {
        self.sections.iter().flat_map(|(op, r)| r.records().map(move |rec| (*op, rec)))
    }

    /// Total records held across all sections.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sections.iter().map(|(_, r)| r.len()).sum()
    }

    /// Whether no section holds any record.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records evicted across all sections (history that scrolled
    /// off the bounded rings).
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.sections.iter().map(|(_, r)| r.evicted()).sum()
    }

    /// The deterministic encoding of the whole trail. Two runs over the
    /// same input are *audit-equivalent* iff these bytes are equal.
    #[must_use]
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(self.sections.len() as u32).to_be_bytes());
        for (op, rec) in &self.sections {
            op.encode(&mut buf);
            rec.encode(&mut buf);
        }
        buf
    }

    /// Renders the trail as human-readable lines, one per record —
    /// e.g. `[node 2] tuple 42 released to role Nurse via DDP @1300ms`.
    /// Role ids resolve to names through `catalog` when provided.
    #[must_use]
    pub fn render(&self, catalog: Option<&RoleCatalog>) -> String {
        let role_name = |role: u32| -> String {
            if role == u32::MAX {
                return "<none>".into();
            }
            catalog
                .and_then(|c| c.role_name(RoleId(role)).map(str::to_owned))
                .unwrap_or_else(|| format!("role#{role}"))
        };
        let level_name = |code: u8| -> &'static str {
            OverloadLevel::from_code(code).map(OverloadLevel::name).unwrap_or("?")
        };
        let mut out = String::new();
        for (op, rec) in self.records() {
            let who = op.label();
            let subject =
                if rec.tid == NO_TUPLE { String::new() } else { format!("tuple {} ", rec.tid) };
            let what = match rec.event {
                AuditEvent::Released { role, sp_ts } => {
                    format!("released to role {} via DDP @{sp_ts}ms", role_name(role))
                }
                AuditEvent::Suppressed { sp_ts } if sp_ts == NO_SP => {
                    "suppressed (default deny: no governing sp)".into()
                }
                AuditEvent::Suppressed { sp_ts } => {
                    format!("suppressed by DDP @{sp_ts}ms")
                }
                AuditEvent::Shed { level } => {
                    format!("shed at level {}", level_name(level))
                }
                AuditEvent::Quarantined { reason } => {
                    format!("quarantined ({})", reason.name())
                }
                AuditEvent::QuarantineReleased => "released from quarantine by late sp".into(),
                AuditEvent::QuarantineDropped { reason } => {
                    format!("dropped from quarantine ({})", reason.name())
                }
                AuditEvent::StaleSpDiscarded => "stale sp-batch discarded unapplied".into(),
                AuditEvent::LadderTransition { from, to } => {
                    format!("load ladder {} -> {}", level_name(from), level_name(to))
                }
                AuditEvent::Restored { epoch } => {
                    format!("restored from checkpoint at epoch {epoch}")
                }
                AuditEvent::RecoveryFailClosed { refused } => {
                    format!("recovery exhausted: failed closed, {refused} elements refused")
                }
                AuditEvent::TentativeRolledBack { seg } => {
                    format!("tentative release rolled back (segment {seg} failed verification)")
                }
                AuditEvent::CipherSuppressed { reason } => {
                    format!("ciphertext suppressed ({})", reason.name())
                }
            };
            out.push_str(&format!("[{who}] {subject}{what} (ts {}ms)\n", rec.ts));
        }
        out
    }
}

/// One causal span: an element's visit to one pipeline site.
///
/// Like [`AuditRecord`], every field is derived from *element identity*
/// and stream time — never wall clock — so sequential, parallel, and
/// replayed runs over the same input record byte-identical spans. Ids
/// come from [`sp_core::trace`]: `span_id` is a pure function of
/// `(trace_id, site)` and `parent` names the causally preceding hop,
/// which may have been recorded in another process entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to (per-element identity).
    pub trace_id: u64,
    /// This span's id (derived from `trace_id` + `site`).
    pub span_id: u64,
    /// The causally preceding span's id (0 = root).
    pub parent: u64,
    /// The pipeline site ([`sp_core::trace::site`]).
    pub site: u8,
    /// Tuple id the hop concerns, or [`NO_TUPLE`] for sp/policy hops.
    pub tid: u64,
    /// Stream time of the hop (tuple or sp-batch timestamp).
    pub ts: u64,
}

impl SpanRecord {
    /// Builds the span for `site` of `trace_id`, deriving the span id.
    #[must_use]
    pub fn at(trace_id: u64, site: u8, parent: u64, tid: u64, ts: u64) -> Self {
        Self { trace_id, span_id: sp_core::trace::span_id(trace_id, site), parent, site, tid, ts }
    }

    /// Appends the deterministic big-endian encoding to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.trace_id.to_be_bytes());
        buf.extend_from_slice(&self.span_id.to_be_bytes());
        buf.extend_from_slice(&self.parent.to_be_bytes());
        buf.push(self.site);
        buf.extend_from_slice(&self.tid.to_be_bytes());
        buf.extend_from_slice(&self.ts.to_be_bytes());
    }
}

/// Bounded ring buffer of [`SpanRecord`]s — the per-operator span plane.
///
/// Same discipline as [`FlightRecorder`]: capacity 0 (the [`Default`])
/// means disabled with no allocation ever; when full, the oldest span is
/// evicted and counted. On top of the capacity gate, recording consults
/// the *runtime* toggle [`span::enabled`] on every call, so an operator
/// built with spans on can be silenced (and re-armed) live without a
/// rebuild — and the `trace-off` cargo feature compiles the whole check
/// to `false`.
#[derive(Debug, Clone, Default)]
pub struct SpanRecorder {
    capacity: usize,
    records: VecDeque<SpanRecord>,
    evicted: u64,
}

impl SpanRecorder {
    /// A recorder keeping the latest `capacity` spans (0 = disabled).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self { capacity, records: VecDeque::new(), evicted: 0 }
    }

    /// A disabled recorder (capacity 0).
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether this recorder would record right now (capacity > 0 *and*
    /// the runtime toggle is on).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.capacity > 0 && span::enabled()
    }

    /// Configured ring capacity (> 0 even while the runtime toggle is
    /// off).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one span; a no-op when disabled by capacity or toggle.
    #[inline]
    pub fn record(&mut self, rec: SpanRecord) {
        if self.capacity == 0 || !span::enabled() {
            return;
        }
        if self.records.len() >= self.capacity {
            self.records.pop_front();
            self.evicted += 1;
        }
        self.records.push_back(rec);
    }

    /// Spans kept, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &SpanRecord> {
        self.records.iter()
    }

    /// Number of spans currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the ring holds no spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Spans evicted because the ring was full.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Discards all spans and the eviction count (capacity keeps).
    /// Called on operator `restore` so deterministic replay repopulates
    /// the ring without duplicating pre-crash history.
    pub fn clear(&mut self) {
        self.records.clear();
        self.evicted = 0;
    }

    /// Appends the deterministic encoding: eviction count, span count,
    /// then each span oldest-first.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.evicted.to_be_bytes());
        buf.extend_from_slice(&(self.records.len() as u32).to_be_bytes());
        for r in &self.records {
            r.encode(buf);
        }
    }
}

/// A whole pipeline's span history: one [`SpanRecorder`] per recording
/// site, in canonical [`AuditOp`] order — the span-plane analogue of
/// [`AuditTrail`], with the same determinism contract: two runs over the
/// same input are *trace-equivalent* iff [`SpanSheet::encode_to_vec`]
/// bytes are equal.
#[derive(Debug, Clone, Default)]
pub struct SpanSheet {
    sections: Vec<(AuditOp, SpanRecorder)>,
}

impl SpanSheet {
    /// An empty sheet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one site's recorder, keeping sections in canonical order
    /// regardless of insertion order.
    pub fn push_section(&mut self, op: AuditOp, recorder: SpanRecorder) {
        self.sections.push((op, recorder));
        self.sections.sort_by_key(|(op, _)| *op);
    }

    /// The sections in canonical order.
    pub fn sections(&self) -> impl Iterator<Item = (AuditOp, &SpanRecorder)> {
        self.sections.iter().map(|(op, r)| (*op, r))
    }

    /// Every span with its originating site, section by section.
    pub fn records(&self) -> impl Iterator<Item = (AuditOp, &SpanRecord)> {
        self.sections.iter().flat_map(|(op, r)| r.records().map(move |rec| (*op, rec)))
    }

    /// Total spans held across all sections.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sections.iter().map(|(_, r)| r.len()).sum()
    }

    /// Whether no section holds any span.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total spans evicted across all sections.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.sections.iter().map(|(_, r)| r.evicted()).sum()
    }

    /// The deterministic encoding of the whole sheet.
    #[must_use]
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(self.sections.len() as u32).to_be_bytes());
        for (op, rec) in &self.sections {
            op.encode(&mut buf);
            rec.encode(&mut buf);
        }
        buf
    }

    /// Appends this sheet's spans as Chrome trace-event objects to
    /// `events`, one JSON object per span, under process id `pid`
    /// (callers merging several pipelines — e.g. one per tenant — give
    /// each its own pid). Span sites become the viewer's thread lanes.
    pub fn chrome_events(&self, pid: u32, events: &mut Vec<String>) {
        for (op, rec) in self.records() {
            events.push(format!(
                concat!(
                    "{{\"name\":\"{}\",\"cat\":\"sp-trace\",\"ph\":\"X\",",
                    "\"ts\":{},\"dur\":1,\"pid\":{},\"tid\":{},\"args\":{{",
                    "\"trace_id\":\"{:016x}\",\"span_id\":\"{:016x}\",",
                    "\"parent\":\"{:016x}\",\"section\":\"{}\",\"tuple\":{}}}}}"
                ),
                sp_core::trace::site::name(rec.site),
                rec.ts.saturating_mul(1000), // stream ms -> trace µs
                pid,
                rec.site,
                rec.trace_id,
                rec.span_id,
                rec.parent,
                op.label(),
                if rec.tid == NO_TUPLE { -1i64 } else { rec.tid as i64 },
            ));
        }
    }

    /// Renders the whole sheet as one Chrome trace-event JSON document
    /// (load it in `chrome://tracing` / Perfetto).
    #[must_use]
    pub fn render_chrome_json(&self) -> String {
        let mut events = Vec::new();
        self.chrome_events(0, &mut events);
        format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
    }

    /// Renders the sheet as a human-readable forest: one tree per trace
    /// (sorted by trace id), children indented under the span they name
    /// as parent. Spans whose parent lives in another process (e.g. the
    /// client-side root) print as roots here.
    #[must_use]
    pub fn render_tree(&self) -> String {
        let all: Vec<(AuditOp, SpanRecord)> = self.records().map(|(op, rec)| (op, *rec)).collect();
        let mut traces: Vec<u64> = all.iter().map(|(_, r)| r.trace_id).collect();
        traces.sort_unstable();
        traces.dedup();
        let mut out = String::new();
        for trace in traces {
            let mut spans: Vec<&(AuditOp, SpanRecord)> =
                all.iter().filter(|(_, r)| r.trace_id == trace).collect();
            spans.sort_by_key(|(op, r)| (r.site, r.tid, r.ts, *op));
            spans.dedup();
            out.push_str(&format!("trace {trace:016x}\n"));
            let local: Vec<u64> = spans.iter().map(|(_, r)| r.span_id).collect();
            let roots: Vec<usize> =
                (0..spans.len()).filter(|&i| !local.contains(&spans[i].1.parent)).collect();
            let mut visited = vec![false; spans.len()];
            for root in roots {
                Self::tree_line(&spans, root, 1, &mut visited, &mut out);
            }
            // Anything unreachable (parent cycles can't happen with
            // derived ids, but stay total): print flat.
            for i in 0..spans.len() {
                if !visited[i] {
                    Self::tree_line(&spans, i, 1, &mut visited, &mut out);
                }
            }
        }
        out
    }

    fn tree_line(
        spans: &[&(AuditOp, SpanRecord)],
        i: usize,
        depth: usize,
        visited: &mut [bool],
        out: &mut String,
    ) {
        if visited[i] {
            return;
        }
        visited[i] = true;
        let (op, rec) = spans[i];
        let subject =
            if rec.tid == NO_TUPLE { String::new() } else { format!(" tuple {}", rec.tid) };
        out.push_str(&format!(
            "{}[{}] {}{subject} @{}ms\n",
            "  ".repeat(depth),
            op.label(),
            sp_core::trace::site::name(rec.site),
            rec.ts
        ));
        for j in 0..spans.len() {
            if spans[j].1.parent == rec.span_id {
                Self::tree_line(spans, j, depth + 1, visited, out);
            }
        }
    }
}

/// A telemetry plane assembled from per-operator recorder sections:
/// [`AuditTrail`] (of [`FlightRecorder`]s) or [`SpanSheet`] (of
/// [`SpanRecorder`]s). Exists so [`merge_recorders`] can serve both
/// planes with one implementation of the section-ordering rules.
pub trait RecorderPlane: Default {
    /// The per-operator recorder this plane collects.
    type Recorder;
    /// Adds one section, keeping sections in canonical [`AuditOp`] order.
    fn add_section(&mut self, op: AuditOp, rec: Self::Recorder);
}

impl RecorderPlane for AuditTrail {
    type Recorder = FlightRecorder;
    fn add_section(&mut self, op: AuditOp, rec: FlightRecorder) {
        self.push_section(op, rec);
    }
}

impl RecorderPlane for SpanSheet {
    type Recorder = SpanRecorder;
    fn add_section(&mut self, op: AuditOp, rec: SpanRecorder) {
        self.push_section(op, rec);
    }
}

/// Merges per-operator recorder sections — gathered from a sequential
/// executor, pipeline-parallel worker threads, or shard replicas — into
/// one canonically ordered plane. `None` sections (recorder disabled at
/// that operator) are omitted, *not* added empty, which is what keeps a
/// run with telemetry armed encoding identically however it executed.
///
/// Every assembly path in the engine funnels through this function so
/// the omit-disabled rule and the canonical section order live in
/// exactly one place.
pub fn merge_recorders<P: RecorderPlane>(
    sections: impl IntoIterator<Item = (AuditOp, Option<P::Recorder>)>,
) -> P {
    let mut plane = P::default();
    for (op, rec) in sections {
        if let Some(rec) = rec {
            plane.add_section(op, rec);
        }
    }
    plane
}

/// Enforcement-lag tracking for one Security Shield — the paper's
/// immediate-enforcement promise, measured.
///
/// Three stream-time histograms (ms):
///
/// * **enforce** — sp-arrival → shield-enforcement lag: the gap between
///   an sp-batch's stamp and the shield's stream clock when the policy
///   was absorbed. In-order streams absorb at ~0 ms — the paper's
///   "immediate enforcement"; anything larger is reorder/queueing delay
///   during which the *old* policy still governed.
/// * **release** — sp-arrival → first-affected-release lag: how long
///   (in stream time) until the first tuple was released *under* the
///   new policy.
/// * **suppress** — revocation → suppression lag: how long until the
///   first tuple was suppressed under the new policy — the width of the
///   "security hole" a revocation leaves open.
///
/// All inputs are stream timestamps, so sequential, parallel, and
/// replayed runs produce identical histograms. Like the recorders, lag
/// state is *not* checkpointed: it clears on restore and deterministic
/// replay repopulates it.
#[derive(Debug, Clone)]
pub struct LagTracker {
    armed: bool,
    clock: u64,
    sp_ts: u64,
    pending_release: bool,
    pending_suppress: bool,
    enforce: Histogram,
    release: Histogram,
    suppress: Histogram,
}

impl Default for LagTracker {
    fn default() -> Self {
        Self {
            armed: false,
            clock: 0,
            sp_ts: NO_SP,
            pending_release: false,
            pending_suppress: false,
            enforce: Histogram::new(),
            release: Histogram::new(),
            suppress: Histogram::new(),
        }
    }
}

impl LagTracker {
    /// A disarmed tracker (every observe is a branch and a return).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms or disarms the tracker.
    pub fn set_armed(&mut self, armed: bool) {
        self.armed = armed;
    }

    /// Whether the tracker is recording.
    #[must_use]
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// Advances the shield's stream clock to `ts` (monotonic max).
    #[inline]
    pub fn observe_tuple(&mut self, ts: u64) {
        if self.armed {
            self.clock = self.clock.max(ts);
        }
    }

    /// The shield absorbed the policy stamped `sp_ts`: records the
    /// enforcement lag against the stream clock and starts waiting for
    /// the first release/suppression it affects.
    pub fn observe_policy(&mut self, sp_ts: u64) {
        if !self.armed {
            return;
        }
        self.enforce.record(self.clock.saturating_sub(sp_ts));
        self.sp_ts = sp_ts;
        self.pending_release = true;
        self.pending_suppress = true;
    }

    /// A tuple stamped `ts` was released; records the first-release lag
    /// once per absorbed policy.
    #[inline]
    pub fn observe_release(&mut self, ts: u64) {
        if self.armed && self.pending_release {
            self.pending_release = false;
            if self.sp_ts != NO_SP {
                self.release.record(ts.saturating_sub(self.sp_ts));
            }
        }
    }

    /// A tuple stamped `ts` was suppressed; records the suppression lag
    /// once per absorbed policy (default-deny suppressions — no
    /// governing sp — don't count: there was no revocation to date
    /// the hole from).
    #[inline]
    pub fn observe_suppress(&mut self, ts: u64) {
        if self.armed && self.pending_suppress {
            self.pending_suppress = false;
            if self.sp_ts != NO_SP {
                self.suppress.record(ts.saturating_sub(self.sp_ts));
            }
        }
    }

    /// sp-arrival → enforcement lag histogram (ms).
    #[must_use]
    pub fn enforce(&self) -> &Histogram {
        &self.enforce
    }

    /// sp-arrival → first-affected-release lag histogram (ms).
    #[must_use]
    pub fn release(&self) -> &Histogram {
        &self.release
    }

    /// Revocation → suppression lag histogram (ms).
    #[must_use]
    pub fn suppress(&self) -> &Histogram {
        &self.suppress
    }

    /// Resets samples and pending state (armed keeps). Called on
    /// restore; deterministic replay repopulates.
    pub fn clear(&mut self) {
        let armed = self.armed;
        *self = Self::default();
        self.armed = armed;
    }
}

/// Number of log₂ buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Fixed-size log₂-bucket histogram for latency / queue-depth samples.
///
/// Bucket 0 holds the value 0; bucket `i` (1 ≤ i < 63) holds
/// `[2^(i-1), 2^i)`; bucket 63 holds everything from `2^62` up. State is
/// three plain integers per bucket-array slot, and
/// [`Histogram::merge`] is a bucket-wise sum — associative, commutative
/// and lossless, so per-thread histograms can be combined in any order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self { count: 0, sum: 0, buckets: [0; HISTOGRAM_BUCKETS] }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Which bucket a value falls into.
    #[must_use]
    pub fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros()).min(63) as usize
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    #[must_use]
    pub fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 63 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Records `n` samples of value `v` in one update — the batched
    /// executor samples telemetry once per element batch with a count
    /// instead of once per element, so the hot loop pays one histogram
    /// update per run.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_index(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
    }

    /// Bucket-wise sum of `other` into `self`.
    pub fn merge(&mut self, other: &Self) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `p`-th percentile
    /// (`0 < p ≤ 100`); 0 when empty. Log-scale resolution: the answer
    /// overestimates by at most 2×, which is the documented trade for
    /// constant mergeable state.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Self::bucket_upper(i);
            }
        }
        u64::MAX
    }

    /// Raw bucket counts (index per [`Histogram::bucket_index`]).
    #[must_use]
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }
}

/// A named metric series: Prometheus family name plus a rendered label
/// set like `op="ss",node="2"` (empty for no labels).
type SeriesKey = (String, String);

/// Snapshot registry of counters and histograms, rendered as Prometheus
/// text exposition or a JSON document.
///
/// Merging two registries ([`MetricsRegistry::merge`]) sums counters and
/// merges histograms key-wise; rendering sorts series, so the output is
/// independent of insertion and merge order.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    help: Vec<(String, String)>,
    counters: Vec<(SeriesKey, u64)>,
    histograms: Vec<(SeriesKey, Histogram)>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn note_help(&mut self, family: &str, help: &str) {
        if !self.help.iter().any(|(f, _)| f == family) {
            self.help.push((family.into(), help.into()));
        }
    }

    /// Sets (or adds to) a counter series.
    pub fn add_counter(&mut self, family: &str, help: &str, labels: &str, value: u64) {
        self.note_help(family, help);
        let key = (family.to_owned(), labels.to_owned());
        if let Some((_, v)) = self.counters.iter_mut().find(|(k, _)| *k == key) {
            *v += value;
        } else {
            self.counters.push((key, value));
        }
    }

    /// Merges a histogram into a series (creating it if absent).
    pub fn merge_histogram(&mut self, family: &str, help: &str, labels: &str, hist: &Histogram) {
        self.note_help(family, help);
        let key = (family.to_owned(), labels.to_owned());
        if let Some((_, h)) = self.histograms.iter_mut().find(|(k, _)| *k == key) {
            h.merge(hist);
        } else {
            self.histograms.push((key, hist.clone()));
        }
    }

    /// Merges every series of `other` into `self` (order-insensitive).
    pub fn merge(&mut self, other: &Self) {
        for (family, help) in &other.help {
            self.note_help(family, help);
        }
        for ((family, labels), v) in &other.counters {
            self.add_counter(family, "", labels, *v);
        }
        for ((family, labels), h) in &other.histograms {
            self.merge_histogram(family, "", labels, h);
        }
    }

    /// Looks up a counter series.
    #[must_use]
    pub fn counter(&self, family: &str, labels: &str) -> Option<u64> {
        self.counters.iter().find(|((f, l), _)| f == family && l == labels).map(|(_, v)| *v)
    }

    /// Looks up a histogram series.
    #[must_use]
    pub fn histogram(&self, family: &str, labels: &str) -> Option<&Histogram> {
        self.histograms.iter().find(|((f, l), _)| f == family && l == labels).map(|(_, h)| h)
    }

    fn help_for(&self, family: &str) -> &str {
        self.help
            .iter()
            .find(|(f, _)| f == family)
            .map(|(_, h)| h.as_str())
            .filter(|h| !h.is_empty())
            .unwrap_or("(no help)")
    }

    /// Renders the registry in Prometheus text-exposition format
    /// (version 0.0.4). Series are sorted, so equal registries render
    /// identically regardless of construction order.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let series_name = |family: &str, labels: &str, suffix: &str, extra: &str| -> String {
            let mut all = String::new();
            if !labels.is_empty() {
                all.push_str(labels);
            }
            if !extra.is_empty() {
                if !all.is_empty() {
                    all.push(',');
                }
                all.push_str(extra);
            }
            if all.is_empty() {
                format!("{family}{suffix}")
            } else {
                format!("{family}{suffix}{{{all}}}")
            }
        };

        let mut counters: Vec<&(SeriesKey, u64)> = self.counters.iter().collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut last_family = "";
        for ((family, labels), v) in counters {
            if family != last_family {
                out.push_str(&format!("# HELP {family} {}\n", self.help_for(family)));
                out.push_str(&format!("# TYPE {family} counter\n"));
                last_family = family;
            }
            out.push_str(&format!("{} {v}\n", series_name(family, labels, "", "")));
        }

        let mut hists: Vec<&(SeriesKey, Histogram)> = self.histograms.iter().collect();
        hists.sort_by(|a, b| a.0.cmp(&b.0));
        let mut last_family = "";
        for ((family, labels), h) in hists {
            if family != last_family {
                out.push_str(&format!("# HELP {family} {}\n", self.help_for(family)));
                out.push_str(&format!("# TYPE {family} histogram\n"));
                last_family = family;
            }
            let mut cum = 0u64;
            for (i, &b) in h.buckets().iter().enumerate() {
                if b == 0 {
                    continue;
                }
                cum += b;
                let le = if i >= 63 {
                    "+Inf".to_owned()
                } else {
                    Histogram::bucket_upper(i).to_string()
                };
                let extra = format!("le=\"{le}\"");
                out.push_str(&format!(
                    "{} {cum}\n",
                    series_name(family, labels, "_bucket", &extra)
                ));
            }
            // The +Inf bucket is mandatory and must equal the count.
            out.push_str(&format!(
                "{} {}\n",
                series_name(family, labels, "_bucket", "le=\"+Inf\""),
                h.count()
            ));
            out.push_str(&format!("{} {}\n", series_name(family, labels, "_sum", ""), h.sum()));
            out.push_str(&format!("{} {}\n", series_name(family, labels, "_count", ""), h.count()));
        }

        // Precomputed summary-style quantile gauges: one `{family}_pNN`
        // gauge family per histogram family, so consumers read p50/p90/
        // p99 directly instead of re-deriving them from the log₂
        // buckets. Values inherit the histogram's ≤2× log-scale
        // overestimate.
        let mut hists: Vec<&(SeriesKey, Histogram)> = self.histograms.iter().collect();
        hists.sort_by(|a, b| a.0.cmp(&b.0));
        for (suffix, p) in [("_p50", 50.0), ("_p90", 90.0), ("_p99", 99.0)] {
            let mut last_family = "";
            for ((family, labels), h) in &hists {
                if family != last_family {
                    out.push_str(&format!(
                        "# HELP {family}{suffix} {} ({} percentile, log2-bucket upper bound)\n",
                        self.help_for(family),
                        suffix.trim_start_matches("_p")
                    ));
                    out.push_str(&format!("# TYPE {family}{suffix} gauge\n"));
                    last_family = family;
                }
                out.push_str(&format!(
                    "{} {}\n",
                    series_name(family, labels, suffix, ""),
                    h.percentile(p)
                ));
            }
        }
        out
    }

    /// Renders the registry as a JSON document (hand-rolled; the
    /// workspace vendors no serde). Histograms are summarized as
    /// count/sum/mean plus p50/p90/p99 from the log buckets.
    #[must_use]
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let mut counters: Vec<&(SeriesKey, u64)> = self.counters.iter().collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut hists: Vec<&(SeriesKey, Histogram)> = self.histograms.iter().collect();
        hists.sort_by(|a, b| a.0.cmp(&b.0));

        let mut out = String::from("{\n  \"counters\": [\n");
        for (i, ((family, labels), v)) in counters.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"labels\": \"{}\", \"value\": {v}}}{}\n",
                esc(family),
                esc(labels),
                if i + 1 == counters.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n  \"histograms\": [\n");
        for (i, ((family, labels), h)) in hists.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "    {{\"name\": \"{}\", \"labels\": \"{}\", \"count\": {}, ",
                    "\"sum\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, ",
                    "\"p99\": {}}}{}\n"
                ),
                esc(family),
                esc(labels),
                h.count(),
                h.sum(),
                h.mean(),
                h.percentile(50.0),
                h.percentile(90.0),
                h.percentile(99.0),
                if i + 1 == hists.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// What telemetry an executor collects. Every knob defaults to off, so
/// an unconfigured plan pays nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryConfig {
    /// Flight-recorder ring capacity per operator (0 = no audit trail).
    pub audit_capacity: usize,
    /// Span-recorder ring capacity per operator (0 = no causal spans or
    /// enforcement-lag histograms). Capacity builds the rings; the
    /// runtime toggle [`span::set_enabled`] silences/re-arms them live.
    pub span_capacity: usize,
    /// Whether the executor samples latency/queue-depth histograms.
    pub metrics: bool,
}

impl TelemetryConfig {
    /// Everything off (the default).
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Audit trail at [`DEFAULT_AUDIT_CAPACITY`], spans at
    /// [`DEFAULT_SPAN_CAPACITY`], plus metrics sampling.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            audit_capacity: DEFAULT_AUDIT_CAPACITY,
            span_capacity: DEFAULT_SPAN_CAPACITY,
            metrics: true,
        }
    }

    /// Whether any telemetry is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.audit_capacity > 0 || self.span_capacity > 0 || self.metrics
    }
}

/// Span collection state and the begin/end marker facade.
///
/// Two layers live here:
///
/// * **The sp-trace runtime toggle** — [`span::enabled`] /
///   [`span::set_enabled`], a process-wide atomic consulted by every
///   [`SpanRecorder::record`]. Tracing is *on* by default (the recorders
///   still cost nothing unless a plan allocates them via
///   [`TelemetryConfig::span_capacity`]); the `trace-off` cargo feature
///   is the compile-time hard-off override that folds the whole check to
///   `false`, restoring the old fully-compiled-away behavior.
/// * **The marker facade** — [`span::span`] returns a zero-sized guard
///   unless the `trace` cargo feature is on, in which case spans append
///   `(name, Enter|Exit)` events to a thread-local buffer drained by
///   [`span::take_events`]. There is no vendored `tracing` crate, and
///   new dependencies are out of bounds, so this in-crate facade is the
///   whole integration surface.
pub mod span {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Process-wide runtime toggle for sp-trace span recording.
    static RUNTIME: AtomicBool = AtomicBool::new(true);

    /// Whether span recording is on right now: the `trace-off` feature
    /// is a hard compile-time off; otherwise the runtime toggle decides.
    #[inline]
    #[must_use]
    pub fn enabled() -> bool {
        !cfg!(feature = "trace-off") && RUNTIME.load(Ordering::Relaxed)
    }

    /// Flips the runtime toggle. A no-op in effect when the `trace-off`
    /// feature is compiled in ([`enabled`] stays `false`).
    pub fn set_enabled(on: bool) {
        RUNTIME.store(on, Ordering::Relaxed);
    }

    /// Span lifecycle edge.
    #[cfg(feature = "trace")]
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SpanEdge {
        /// The span was opened.
        Enter,
        /// The span guard dropped.
        Exit,
    }

    /// One collected span event.
    #[cfg(feature = "trace")]
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SpanEvent {
        /// Static span name, e.g. `executor.push`.
        pub name: &'static str,
        /// Enter or exit.
        pub edge: SpanEdge,
    }

    #[cfg(feature = "trace")]
    thread_local! {
        static EVENTS: std::cell::RefCell<Vec<SpanEvent>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }

    #[cfg(feature = "trace")]
    fn push(name: &'static str, edge: SpanEdge) {
        EVENTS.with(|e| {
            if let Ok(mut v) = e.try_borrow_mut() {
                v.push(SpanEvent { name, edge });
            }
        });
    }

    /// Drains this thread's collected span events.
    #[cfg(feature = "trace")]
    #[must_use]
    pub fn take_events() -> Vec<SpanEvent> {
        EVENTS.with(|e| e.try_borrow_mut().map(|mut v| std::mem::take(&mut *v)).unwrap_or_default())
    }

    /// RAII guard closing the span on drop. Zero-sized when the `trace`
    /// feature is off.
    #[must_use = "a span closes when its guard drops"]
    pub struct SpanGuard {
        #[cfg(feature = "trace")]
        name: &'static str,
    }

    #[cfg(feature = "trace")]
    impl Drop for SpanGuard {
        fn drop(&mut self) {
            push(self.name, SpanEdge::Exit);
        }
    }

    /// Opens a span around the enclosing scope.
    #[inline(always)]
    pub fn span(name: &'static str) -> SpanGuard {
        #[cfg(feature = "trace")]
        {
            push(name, SpanEdge::Enter);
            SpanGuard { name }
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = name;
            SpanGuard {}
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn disabled_recorder_never_stores() {
        let mut r = FlightRecorder::disabled();
        r.record(1, 2, AuditEvent::QuarantineReleased);
        assert!(!r.enabled());
        assert!(r.is_empty());
        assert_eq!(r.evicted(), 0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut r = FlightRecorder::new(2);
        for tid in 0..5u64 {
            r.record(tid, tid * 10, AuditEvent::Shed { level: 1 });
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.evicted(), 3);
        let tids: Vec<u64> = r.records().map(|rec| rec.tid).collect();
        assert_eq!(tids, vec![3, 4]);
    }

    #[test]
    fn record_encoding_is_deterministic_and_distinct() {
        let a = AuditRecord { tid: 7, ts: 9, event: AuditEvent::Released { role: 3, sp_ts: 5 } };
        let b = AuditRecord { tid: 7, ts: 9, event: AuditEvent::Suppressed { sp_ts: 5 } };
        let (mut ba, mut bb, mut ba2) = (Vec::new(), Vec::new(), Vec::new());
        a.encode(&mut ba);
        b.encode(&mut bb);
        a.encode(&mut ba2);
        assert_eq!(ba, ba2);
        assert_ne!(ba, bb);
    }

    #[test]
    fn trail_sections_are_canonically_ordered() {
        let mut t1 = AuditTrail::new();
        let mut t2 = AuditTrail::new();
        let mut rec = FlightRecorder::new(4);
        rec.record(1, 1, AuditEvent::StaleSpDiscarded);
        for op in [AuditOp::Node(1), AuditOp::Source(0), AuditOp::Node(0)] {
            t1.push_section(op, rec.clone());
        }
        for op in [AuditOp::Source(0), AuditOp::Node(0), AuditOp::Node(1)] {
            t2.push_section(op, rec.clone());
        }
        assert_eq!(t1.encode_to_vec(), t2.encode_to_vec());
        let order: Vec<AuditOp> = t1.sections().map(|(op, _)| op).collect();
        assert_eq!(order, vec![AuditOp::Source(0), AuditOp::Node(0), AuditOp::Node(1)]);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = Histogram::new();
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
        for v in [0u64, 1, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1104);
        assert_eq!(h.percentile(100.0), 1023); // 1000 lands in [512, 1024)
        assert!(h.percentile(50.0) <= h.percentile(99.0));
        assert_eq!(Histogram::new().percentile(99.0), 0);
    }

    #[test]
    fn histogram_merge_is_commutative() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 5, 900] {
            a.record(v);
        }
        for v in [0u64, 2, 1 << 40] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn registry_renders_sorted_and_parses_shape() {
        let mut m = MetricsRegistry::new();
        let mut h = Histogram::new();
        h.record(10);
        h.record(5000);
        m.merge_histogram("sp_operator_latency_ns", "per-op latency", "op=\"ss\"", &h);
        m.add_counter("sp_tuples_released_total", "released", "op=\"ss\"", 2);
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE sp_operator_latency_ns histogram"));
        assert!(text.contains("sp_operator_latency_ns_bucket{op=\"ss\",le=\"+Inf\"} 2"));
        assert!(text.contains("sp_operator_latency_ns_count{op=\"ss\"} 2"));
        assert!(text.contains("sp_tuples_released_total{op=\"ss\"} 2"));
        let json = m.render_json();
        assert!(json.contains("\"p99\""));
    }

    #[test]
    fn quantile_gauges_accompany_every_histogram() {
        let mut m = MetricsRegistry::new();
        let mut h = Histogram::new();
        for v in [10u64, 20, 5000] {
            h.record(v);
        }
        m.merge_histogram("sp_operator_latency_ns", "lat", "op=\"ss\"", &h);
        m.merge_histogram("sp_queue_depth", "depth", "", &Histogram::new());
        let text = m.render_prometheus();
        for family in ["sp_operator_latency_ns", "sp_queue_depth"] {
            for q in ["p50", "p90", "p99"] {
                assert!(text.contains(&format!("# TYPE {family}_{q} gauge")), "{text}");
            }
        }
        // Labeled series carry their labels; quantiles are monotone.
        assert!(text.contains("sp_operator_latency_ns_p50{op=\"ss\"}"), "{text}");
        let grab = |q: &str| -> u64 {
            let needle = format!("sp_operator_latency_ns_{q}{{op=\"ss\"}} ");
            let at = text.find(&needle).unwrap() + needle.len();
            text[at..].lines().next().unwrap().trim().parse().unwrap()
        };
        assert!(grab("p50") <= grab("p90") && grab("p90") <= grab("p99"));
        // An empty histogram still renders zeroed gauges.
        assert!(text.contains("sp_queue_depth_p99 0"), "{text}");
    }

    #[test]
    fn registry_merge_is_order_insensitive() {
        let mk = |vals: &[u64], c: u64| {
            let mut m = MetricsRegistry::new();
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            m.merge_histogram("lat", "h", "op=\"x\"", &h);
            m.add_counter("tot", "c", "", c);
            m
        };
        let (a, b) = (mk(&[1, 2, 3], 5), mk(&[9, 9], 7));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.render_prometheus(), ba.render_prometheus());
        assert_eq!(ab.counter("tot", ""), Some(12));
    }

    #[test]
    fn render_names_roles() {
        let mut catalog = RoleCatalog::new();
        let nurse = catalog.register_role("Nurse").unwrap();
        let mut rec = FlightRecorder::new(8);
        rec.record(42, 1300, AuditEvent::Released { role: nurse.raw(), sp_ts: 700 });
        let mut trail = AuditTrail::new();
        trail.push_section(AuditOp::Node(2), rec);
        let text = trail.render(Some(&catalog));
        assert!(text.contains("tuple 42 released to role Nurse via DDP @700ms"), "{text}");
    }

    #[test]
    fn span_facade_compiles_both_ways() {
        {
            let _g = span::span("test.scope");
        }
        #[cfg(feature = "trace")]
        {
            let events = span::take_events();
            assert!(events.iter().any(|e| e.name == "test.scope"));
        }
    }

    /// Serializes tests that flip the process-wide span toggle.
    static TOGGLE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn sp_span(ts: u64) -> SpanRecord {
        SpanRecord::at(
            sp_core::trace::trace_id_for_sp(ts),
            sp_core::trace::site::ANALYZE,
            0,
            NO_TUPLE,
            ts,
        )
    }

    #[test]
    fn span_recorder_honors_capacity_and_runtime_toggle() {
        let _guard = TOGGLE.lock().unwrap();
        let mut off = SpanRecorder::disabled();
        off.record(sp_span(1));
        assert!(off.is_empty());

        let mut r = SpanRecorder::new(2);
        span::set_enabled(false);
        r.record(sp_span(1));
        assert!(r.is_empty(), "runtime-off must drop spans");
        span::set_enabled(true);
        for ts in 0..5u64 {
            r.record(sp_span(ts));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.evicted(), 3);
    }

    #[test]
    fn span_sheet_sections_are_canonically_ordered() {
        let _guard = TOGGLE.lock().unwrap();
        span::set_enabled(true);
        let mut rec = SpanRecorder::new(4);
        rec.record(sp_span(1000));
        let (mut a, mut b) = (SpanSheet::new(), SpanSheet::new());
        for op in [AuditOp::Node(1), AuditOp::Ingress, AuditOp::Source(0)] {
            a.push_section(op, rec.clone());
        }
        for op in [AuditOp::Source(0), AuditOp::Node(1), AuditOp::Ingress] {
            b.push_section(op, rec.clone());
        }
        assert_eq!(a.encode_to_vec(), b.encode_to_vec());
        let order: Vec<AuditOp> = a.sections().map(|(op, _)| op).collect();
        assert_eq!(order, vec![AuditOp::Ingress, AuditOp::Source(0), AuditOp::Node(1)]);
    }

    #[test]
    fn ingress_encodes_distinctly_from_other_ops() {
        let mut bufs: Vec<Vec<u8>> = Vec::new();
        for op in [AuditOp::Ingress, AuditOp::Source(0), AuditOp::Node(0), AuditOp::Supervisor] {
            let mut b = Vec::new();
            op.encode(&mut b);
            bufs.push(b);
        }
        for i in 0..bufs.len() {
            for j in (i + 1)..bufs.len() {
                assert_ne!(bufs[i], bufs[j]);
            }
        }
    }

    #[test]
    fn chrome_json_and_tree_link_the_causal_chain() {
        let _guard = TOGGLE.lock().unwrap();
        span::set_enabled(true);
        let sp_ts = 1000u64;
        let trace = sp_core::trace::trace_id_for_sp(sp_ts);
        let mut ingress = SpanRecorder::new(8);
        ingress.record(SpanRecord::at(
            trace,
            sp_core::trace::site::WIRE_FRAME,
            77,
            NO_TUPLE,
            sp_ts,
        ));
        let mut analyzer = SpanRecorder::new(8);
        analyzer.record(SpanRecord::at(
            trace,
            sp_core::trace::site::ANALYZE,
            sp_core::trace::span_id(trace, sp_core::trace::site::WIRE_FRAME),
            NO_TUPLE,
            sp_ts,
        ));
        let mut shield = SpanRecorder::new(8);
        shield.record(SpanRecord::at(
            trace,
            sp_core::trace::site::SHIELD_ENFORCE,
            sp_core::trace::span_id(trace, sp_core::trace::site::ANALYZE),
            NO_TUPLE,
            sp_ts,
        ));
        let mut sheet = SpanSheet::new();
        sheet.push_section(AuditOp::Ingress, ingress);
        sheet.push_section(AuditOp::Source(0), analyzer);
        sheet.push_section(AuditOp::Node(2), shield);

        let json = sheet.render_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"wire_frame\""));
        assert!(json.contains("\"name\":\"analyze\""));
        assert!(json.contains("\"name\":\"shield_enforce\""));
        assert!(json.contains(&format!("{trace:016x}")));

        let tree = sheet.render_tree();
        // Indentation deepens along the causal chain.
        let wire_at = tree.find("[ingress] wire_frame").unwrap();
        let analyze_at = tree.find("[source 0] analyze").unwrap();
        let shield_at = tree.find("[node 2] shield_enforce").unwrap();
        assert!(wire_at < analyze_at && analyze_at < shield_at, "{tree}");
        assert!(tree.contains("\n    [source 0] analyze"), "{tree}");
        assert!(tree.contains("\n      [node 2] shield_enforce"), "{tree}");
    }

    #[test]
    fn lag_tracker_measures_the_three_windows() {
        let mut lag = LagTracker::new();
        // Disarmed: nothing records.
        lag.observe_tuple(10);
        lag.observe_policy(5);
        assert_eq!(lag.enforce().count(), 0);

        lag.set_armed(true);
        lag.observe_tuple(990);
        lag.observe_policy(1000); // in-order sp: clock behind its stamp
        assert_eq!(lag.enforce().count(), 1);
        assert_eq!(lag.enforce().sum(), 0, "in-order enforcement is immediate");
        lag.observe_tuple(1005);
        lag.observe_release(1005);
        lag.observe_release(1010); // only the first release counts
        assert_eq!(lag.release().count(), 1);
        assert_eq!(lag.release().sum(), 5);
        lag.observe_suppress(1020);
        lag.observe_suppress(1030);
        assert_eq!(lag.suppress().count(), 1);
        assert_eq!(lag.suppress().sum(), 20);

        // A late sp: enforcement lag is the reorder gap.
        lag.observe_tuple(2050);
        lag.observe_policy(2000);
        assert_eq!(lag.enforce().count(), 2);
        assert_eq!(lag.enforce().sum(), 50);

        lag.clear();
        assert!(lag.armed(), "clear keeps arming");
        assert_eq!(lag.enforce().count(), 0);
        assert_eq!(lag.release().count(), 0);
        assert_eq!(lag.suppress().count(), 0);
    }

    #[test]
    fn span_config_round_trip() {
        assert!(!TelemetryConfig::disabled().is_enabled());
        let cfg = TelemetryConfig { audit_capacity: 0, span_capacity: 16, metrics: false };
        assert!(cfg.is_enabled());
        assert_eq!(TelemetryConfig::enabled().span_capacity, DEFAULT_SPAN_CAPACITY);
    }
}
