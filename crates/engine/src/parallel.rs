//! Pipeline-parallel plan execution.
//!
//! The reference [`Executor`](crate::plan::Executor) is single-threaded —
//! ideal for deterministic cost accounting, which is what the paper's
//! experiments measure. This module adds a **pipeline-parallel** runner:
//! every operator runs on its own thread, connected by crossbeam channels,
//! the way a multi-threaded DSMS would deploy a plan.
//!
//! Determinism is preserved exactly. Every element leaving a source is
//! tagged with a global sequence number; operators emit outputs under the
//! sequence number of the input that produced them; edges are per-port
//! FIFO channels; and binary operators merge their two input channels in
//! sequence order (ties broken by port). A parallel run therefore produces
//! byte-identical results to the sequential executor — verified by the
//! equivalence tests below — while overlapping the work of pipeline
//! stages.
//!
//! The runner executes *finite recorded inputs* (feed everything, close,
//! drain), the mode used by tests and benchmarks.

use std::collections::HashMap;

use crossbeam::channel::{unbounded, Receiver, Sender};

use sp_core::{StreamElement, StreamId};

use crate::element::Element;
use crate::operator::{Emitter, Operator as _};
use crate::ops::sink::Sink;
use crate::plan::{PlanBuilder, SinkRef, Target};

/// A sequence-tagged element travelling an edge.
#[derive(Debug, Clone)]
struct Envelope {
    seq: u64,
    elem: Element,
}

/// Results of a parallel run.
pub struct ParallelResults {
    sinks: Vec<Sink>,
}

impl ParallelResults {
    /// The collected sink for a query.
    #[must_use]
    pub fn sink(&self, s: SinkRef) -> &Sink {
        &self.sinks[s.index()]
    }
}

/// The pre-resolved outgoing edges of one worker: exactly the senders this
/// worker needs, and nothing more. Holding only these keeps channel
/// closure cascading topologically — a worker exits when its inputs close,
/// which closes its outputs in turn. (Handing every worker senders to
/// every channel would deadlock: no channel could ever close.)
struct Wires {
    senders: Vec<Sender<Envelope>>,
}

impl Wires {
    fn resolve(
        targets: &[Target],
        node_tx: &[Vec<Sender<Envelope>>],
        sink_tx: &[Sender<Envelope>],
    ) -> Self {
        let senders = targets
            .iter()
            .map(|t| match *t {
                Target::Node(n, port) => node_tx[n][port].clone(),
                Target::Sink(s) => sink_tx[s].clone(),
            })
            .collect();
        Self { senders }
    }

    fn send(&self, seq: u64, elem: &Element) {
        for tx in &self.senders {
            // A closed downstream (its thread finished early) is fine.
            let _ = tx.send(Envelope { seq, elem: elem.clone() });
        }
    }
}

/// A port receiver with one-envelope lookahead, for seq-ordered merging.
struct PeekRx {
    rx: Receiver<Envelope>,
    head: Option<Envelope>,
    closed: bool,
}

impl PeekRx {
    fn new(rx: Receiver<Envelope>) -> Self {
        Self { rx, head: None, closed: false }
    }

    /// Blocks until a head envelope is available (or the channel closes);
    /// returns its sequence number.
    fn peek_seq(&mut self) -> Option<u64> {
        if self.head.is_none() && !self.closed {
            match self.rx.recv() {
                Ok(env) => self.head = Some(env),
                Err(_) => self.closed = true,
            }
        }
        self.head.as_ref().map(|e| e.seq)
    }

    fn take(&mut self) -> Envelope {
        self.head.take().expect("peeked head")
    }
}

/// Runs the plan in `builder` over a finite recorded input with one thread
/// per operator, returning every sink's collected output.
///
/// # Panics
///
/// Panics if a worker thread panics (the panic is propagated).
#[must_use]
pub fn run_parallel(
    builder: PlanBuilder,
    inputs: impl IntoIterator<Item = (StreamId, StreamElement)>,
) -> ParallelResults {
    let (nodes, mut sources, sinks) = builder.into_parts();

    // Channels: one per (node, port) and one per sink.
    let mut node_tx: Vec<Vec<Sender<Envelope>>> = Vec::with_capacity(nodes.len());
    let mut node_rx: Vec<Vec<Receiver<Envelope>>> = Vec::with_capacity(nodes.len());
    for node in &nodes {
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for _ in 0..node.op.arity() {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        node_tx.push(txs);
        node_rx.push(rxs);
    }
    let mut sink_tx = Vec::with_capacity(sinks.len());
    let mut sink_rx = Vec::with_capacity(sinks.len());
    for _ in &sinks {
        let (tx, rx) = unbounded();
        sink_tx.push(tx);
        sink_rx.push(rx);
    }
    // Resolve each worker's outgoing edges, then drop the master sender
    // tables so only the per-edge clones keep channels open.
    let node_wires: Vec<Wires> = nodes
        .iter()
        .map(|n| Wires::resolve(&n.outputs, &node_tx, &sink_tx))
        .collect();
    let source_wires: Vec<Wires> = sources
        .iter()
        .map(|s| Wires::resolve(&s.outputs, &node_tx, &sink_tx))
        .collect();
    drop(node_tx);
    drop(sink_tx);

    std::thread::scope(|scope| {
        // Operator threads.
        let mut node_handles = Vec::new();
        let mut node_rx_iter = node_rx.into_iter();
        let mut node_wires_iter = node_wires.into_iter();
        for mut node in nodes {
            let rxs = node_rx_iter.next().expect("one rx set per node");
            let wires = node_wires_iter.next().expect("one wire set per node");
            node_handles.push(scope.spawn(move || {
                let mut emitter = Emitter::new();
                let process = |node: &mut crate::plan::Node,
                                   port: usize,
                                   env: Envelope,
                                   emitter: &mut Emitter| {
                    let seq = env.seq;
                    node.op.process(port, env.elem, emitter);
                    for e in emitter.drain() {
                        wires.send(seq, &e);
                    }
                };
                let mut ports: Vec<PeekRx> = rxs.into_iter().map(PeekRx::new).collect();
                if ports.len() == 1 {
                    // Unary: plain FIFO.
                    let mut port0 = ports.pop().expect("one port");
                    while port0.peek_seq().is_some() {
                        let env = port0.take();
                        process(&mut node, 0, env, &mut emitter);
                    }
                } else {
                    // Binary: merge the two ports in global sequence order.
                    // Each port is FIFO from a single upstream, so the
                    // smaller head is always safe to process; blocking on
                    // an empty port cannot deadlock (upstreams never wait
                    // on us — channels are unbounded).
                    loop {
                        let s0 = ports[0].peek_seq();
                        let s1 = ports[1].peek_seq();
                        let port = match (s0, s1) {
                            (None, None) => break,
                            (Some(_), None) => 0,
                            (None, Some(_)) => 1,
                            (Some(a), Some(b)) => usize::from(b < a),
                        };
                        let env = ports[port].take();
                        process(&mut node, port, env, &mut emitter);
                    }
                }
                // Dropping this worker's wires closes its downstream
                // edges once every other sender to them is gone.
            }));
        }

        // Sink threads: single FIFO upstream each; collect in order.
        let mut sink_handles = Vec::new();
        let mut sink_rx_iter = sink_rx.into_iter();
        for mut sink in sinks {
            let rx = sink_rx_iter.next().expect("one rx per sink");
            sink_handles.push(scope.spawn(move || {
                let mut emitter = Emitter::new();
                for env in rx {
                    sink.process(0, env.elem, &mut emitter);
                }
                sink
            }));
        }

        // Feed: run analyzers inline, tag with the global sequence.
        let mut by_stream: HashMap<StreamId, Vec<usize>> = HashMap::new();
        for (i, s) in sources.iter().enumerate() {
            by_stream.entry(s.stream).or_default().push(i);
        }
        let mut seq = 0u64;
        let mut staged = Vec::new();
        for (stream, elem) in inputs {
            let Some(ids) = by_stream.get(&stream) else { continue };
            for &sid in ids {
                let source = &mut sources[sid];
                staged.clear();
                source.analyzer.push(elem.clone(), &mut staged);
                for e in &staged {
                    seq += 1;
                    source_wires[sid].send(seq, e);
                }
            }
        }
        // Close the graph: drop the feeder's senders; workers cascade.
        drop(source_wires);

        for handle in node_handles {
            handle.join().expect("operator thread panicked");
        }
        let mut out = Vec::new();
        for handle in sink_handles {
            out.push(handle.join().expect("sink thread panicked"));
        }
        ParallelResults { sinks: out }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Expr};
    use crate::ops::{JoinVariant, SAJoin, SecurityShield, Select};
    use crate::plan::PlanBuilder;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use sp_core::{
        RoleCatalog, RoleId, RoleSet, Schema, SecurityPunctuation, Timestamp, Tuple, TupleId,
        Value, ValueType,
    };
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::of("s", &[("id", ValueType::Int), ("v", ValueType::Int)])
    }

    fn catalog() -> Arc<RoleCatalog> {
        let mut c = RoleCatalog::new();
        c.register_synthetic_roles(8);
        Arc::new(c)
    }

    fn workload(seed: u64, n: u64) -> Vec<(StreamId, StreamElement)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for ts in 1..=n {
            let stream = StreamId(1 + (ts % 2) as u32);
            if rng.gen_bool(0.3) {
                let roles: RoleSet = (0..rng.gen_range(0..3))
                    .map(|_| RoleId(rng.gen_range(0..5)))
                    .collect();
                out.push((
                    stream,
                    StreamElement::punctuation(SecurityPunctuation::grant_all(
                        roles,
                        Timestamp(ts),
                    )),
                ));
            }
            let id = rng.gen_range(0..5i64);
            out.push((
                stream,
                StreamElement::tuple(Tuple::new(
                    stream,
                    TupleId(id as u64),
                    Timestamp(ts),
                    vec![Value::Int(id), Value::Int(rng.gen_range(0..10))],
                )),
            ));
        }
        out
    }

    fn pipeline_builder() -> (PlanBuilder, SinkRef) {
        let mut b = PlanBuilder::new(catalog());
        let src = b.source(StreamId(1), schema());
        let sel = b.add(
            Select::new(Expr::cmp(CmpOp::Gt, Expr::Attr(1), Expr::Const(Value::Int(2)))),
            src,
        );
        let ss = b.add(SecurityShield::new(RoleSet::from([1])), sel);
        let sink = b.sink(ss);
        (b, sink)
    }

    fn join_builder() -> (PlanBuilder, SinkRef) {
        let mut b = PlanBuilder::new(catalog());
        let l = b.source(StreamId(1), schema());
        let r = b.source(StreamId(2), schema());
        let j = b.add_binary(SAJoin::new(JoinVariant::Index, 100_000, 0, 0, 2), l, r);
        let ss = b.add(SecurityShield::new(RoleSet::from([1, 2])), j);
        let sink = b.sink(ss);
        (b, sink)
    }

    fn render(sink: &Sink) -> Vec<String> {
        sink.tuples()
            .map(|t| format!("{:?}@{}", t.values(), t.ts))
            .collect()
    }

    #[test]
    fn parallel_pipeline_matches_sequential() {
        let input = workload(3, 400);
        let (seq_builder, seq_sink) = pipeline_builder();
        let mut exec = seq_builder.build();
        exec.push_all(input.clone());
        let expected = render(exec.sink(seq_sink));

        let (par_builder, par_sink) = pipeline_builder();
        let results = run_parallel(par_builder, input);
        assert_eq!(render(results.sink(par_sink)), expected);
        assert!(!expected.is_empty());
    }

    #[test]
    fn parallel_join_matches_sequential() {
        let input = workload(9, 500);
        let (seq_builder, seq_sink) = join_builder();
        let mut exec = seq_builder.build();
        exec.push_all(input.clone());
        let expected = render(exec.sink(seq_sink));

        let (par_builder, par_sink) = join_builder();
        let results = run_parallel(par_builder, input);
        assert_eq!(render(results.sink(par_sink)), expected);
        assert!(!expected.is_empty(), "join workload should produce results");
    }

    #[test]
    fn parallel_shared_subplan() {
        fn build() -> (PlanBuilder, SinkRef, SinkRef) {
            let mut b = PlanBuilder::new(catalog());
            let src = b.source(StreamId(1), schema());
            let shared = b.add(
                Select::new(Expr::cmp(CmpOp::Ge, Expr::Attr(1), Expr::Const(Value::Int(0)))),
                src,
            );
            let ss1 = b.add(SecurityShield::new(RoleSet::from([1])), shared);
            let ss2 = b.add(SecurityShield::new(RoleSet::from([2])), shared);
            let s1 = b.sink(ss1);
            let s2 = b.sink(ss2);
            (b, s1, s2)
        }
        let input = workload(5, 300);
        let (b, s1, s2) = build();
        let mut exec = b.build();
        exec.push_all(input.clone());
        let (e1, e2) = (render(exec.sink(s1)), render(exec.sink(s2)));

        let (b, p1, p2) = build();
        let results = run_parallel(b, input);
        assert_eq!(render(results.sink(p1)), e1);
        assert_eq!(render(results.sink(p2)), e2);
    }

    #[test]
    fn empty_input_yields_empty_sinks() {
        let (b, sink) = pipeline_builder();
        let results = run_parallel(b, Vec::new());
        assert_eq!(results.sink(sink).tuple_count(), 0);
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let input = workload(11, 300);
        let mut previous: Option<Vec<String>> = None;
        for _ in 0..4 {
            let (b, sink) = join_builder();
            let results = run_parallel(b, input.clone());
            let got = render(results.sink(sink));
            if let Some(prev) = &previous {
                assert_eq!(&got, prev);
            }
            previous = Some(got);
        }
    }
}
