//! Pipeline-parallel plan execution, hardened for hostile streams.
//!
//! The reference [`Executor`](crate::plan::Executor) is single-threaded —
//! ideal for deterministic cost accounting, which is what the paper's
//! experiments measure. This module adds a **pipeline-parallel** runner:
//! every operator runs on its own thread, connected by channels, the way a
//! multi-threaded DSMS would deploy a plan.
//!
//! Determinism is preserved exactly. Every batch leaving a source is
//! tagged with a global sequence number; operators emit outputs under the
//! sequence number of the input that produced them; edges are per-port
//! FIFO channels; and binary operators merge their two input channels in
//! sequence order (ties broken by port). A parallel run therefore produces
//! byte-identical results to the sequential executor — verified by the
//! equivalence tests below — while overlapping the work of pipeline
//! stages.
//!
//! Edges carry [`ElementBatch`]es, not single elements. The feeder cuts
//! each push's analyzer output into kind-homogeneous runs (one sequence
//! number per run) when the source has a single consumer; a multi-consumer
//! source sends per-element singletons, because a downstream seq-ordered
//! merge of a fan-out must see the same element-major interleaving the
//! sequential executor routes. Workers likewise forward their emitted
//! outputs as runs under the input's sequence number; since every output
//! of one input already shared a sequence number in element-at-a-time
//! routing and the port-0 tie-break drains equal-seq entries port-major,
//! batching changes neither per-edge element order nor merge decisions.
//!
//! Robustness properties (the reason this runner differs from a naive
//! thread-per-operator sketch):
//!
//! * **classed bounded channels** — unary/sink edges are
//!   [`classed_channel`]s: **data tuples** are bounded at
//!   [`EDGE_CAPACITY`] so a slow operator exerts backpressure on the
//!   feeder instead of letting queues grow without limit, while **control
//!   traffic** — security punctuations and epoch barrier markers — is
//!   always admitted. A stuffed pipe can therefore never block or delay
//!   an sp behind data backpressure: policy updates and checkpoint
//!   barriers propagate even through a fully backlogged edge. Classing
//!   changes admission only, never order (both classes share one FIFO),
//!   so determinism is untouched. Binary-merge input ports are the one
//!   deliberate exception: an ordered two-way merge must be able to
//!   buffer the non-selected port arbitrarily (bounding both ports can
//!   deadlock diamond fan-ins), so those edges are unbounded.
//! * **panic containment** — each `process` call runs under
//!   `catch_unwind`; a panicking operator surfaces as
//!   [`EngineError::OperatorPanic`] from [`run_parallel`] instead of a
//!   poisoned join or a silent hang.
//! * **drain with timeout** — feeding uses a stall deadline and shutdown
//!   polls worker completion against [`DRAIN_TIMEOUT`], so a wedged graph
//!   returns [`EngineError::ShutdownTimeout`] rather than blocking the
//!   caller forever.
//!
//! The runner executes *finite recorded inputs* (feed everything, close,
//! drain), the mode used by tests and benchmarks.
//!
//! **Checkpointing** ([`run_parallel_checkpointed`]) uses aligned epoch
//! barriers, the classic Chandy–Lamport/stream-barrier construction: the
//! feeder broadcasts an `Epoch(n)` marker on every source edge under one
//! global sequence number after each `epoch_interval` raw input elements.
//! Because binary operators already merge their ports in sequence order
//! and both ports' copies of a marker share its sequence number, the merge
//! aligns barriers with no extra machinery: a worker snapshots its
//! operator exactly when every pre-marker element has been processed and
//! no post-marker element has, then forwards the marker once. The
//! per-operator sections of each epoch therefore form a **consistent
//! cut** — byte-identical to the sequential executor's checkpoint at the
//! same input position.

use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::{Duration, Instant};

use sp_core::{StreamElement, StreamId};

use crate::batch::{coalesce_runs, ElementBatch};
use crate::checkpoint::{Checkpoint, CheckpointStore};
use crate::element::Element;
use crate::error::EngineError;
use crate::operator::{Emitter, Operator as _};
use crate::ops::sink::Sink;
use crate::overload::{classed_channel, ClassedReceiver, ClassedSender, DataRejected};
use crate::plan::{PlanBuilder, SinkRef, Target};
use crate::telemetry::{
    merge_recorders, AuditOp, AuditTrail, FlightRecorder, SpanRecorder, SpanSheet,
};

/// Data-class capacity of bounded (unary / sink) edges, counted in batch
/// envelopes. Control traffic (sps, epoch barriers) does not count
/// against it.
pub const EDGE_CAPACITY: usize = 256;

/// How long a bounded edge may refuse an element before the run is
/// declared wedged.
pub const STALL_DEADLINE: Duration = Duration::from_secs(10);

/// How long shutdown waits for workers to drain after the input closes.
pub const DRAIN_TIMEOUT: Duration = Duration::from_secs(30);

/// What travels an edge: a run of stream elements, or an epoch barrier
/// marker.
#[derive(Debug, Clone)]
enum Payload {
    Batch(ElementBatch),
    /// Epoch barrier: every operator snapshots when this marker arrives
    /// (on both ports, for binary operators) and forwards it once.
    Epoch(u64),
}

/// A sequence-tagged payload travelling an edge.
#[derive(Debug, Clone)]
struct Envelope {
    seq: u64,
    payload: Payload,
}

impl Envelope {
    /// Control traffic — security punctuations and epoch barriers — is
    /// lossless: it bypasses the data bound on classed edges and can
    /// never be refused or delayed by a full queue. Batches are
    /// kind-homogeneous, so a whole batch classes as either control
    /// (policies) or data (tuples).
    fn is_control(&self) -> bool {
        match &self.payload {
            Payload::Epoch(_) => true,
            Payload::Batch(b) => b.is_control(),
        }
    }
}

/// Addresses one snapshot section within an epoch's checkpoint.
#[derive(Debug, Clone, Copy)]
enum Section {
    Analyzer(usize),
    Node(usize),
    Sink(usize),
}

/// A snapshot section reported by the feeder or a worker.
type SectionMsg = (u64, Section, Vec<u8>);

/// The telemetry sections shipped back by a finishing worker: its flight
/// recorder and/or sp-trace span recorder, whichever are armed.
type AuditMsg = (AuditOp, Option<FlightRecorder>, Option<SpanRecorder>);

/// Results of a parallel run.
pub struct ParallelResults {
    sinks: Vec<Sink>,
    audit: AuditTrail,
    spans: SpanSheet,
}

impl ParallelResults {
    /// The collected sink for a query.
    #[must_use]
    pub fn sink(&self, s: SinkRef) -> &Sink {
        &self.sinks[s.index()]
    }

    /// The plan-wide security audit trail, assembled in the same canonical
    /// section order as [`Executor::audit_trail`](crate::plan::Executor::audit_trail),
    /// so sequential and parallel runs of one plan encode identically.
    /// Empty unless the builder enabled telemetry with an audit capacity.
    #[must_use]
    pub fn audit_trail(&self) -> &AuditTrail {
        &self.audit
    }

    /// The plan-wide sp-trace span sheet, assembled in the same canonical
    /// section order as [`Executor::span_sheet`](crate::plan::Executor::span_sheet),
    /// so sequential and parallel runs of one plan encode identically.
    /// Empty unless the builder enabled telemetry with a span capacity.
    #[must_use]
    pub fn span_sheet(&self) -> &SpanSheet {
        &self.spans
    }
}

/// One outgoing edge: classed-bounded for unary/sink consumers, unbounded
/// for binary-merge ports (see the module docs for why).
#[derive(Clone)]
enum EdgeTx {
    Bounded(ClassedSender<Envelope>),
    Unbounded(Sender<Envelope>),
}

impl EdgeTx {
    /// Sends with backpressure. Returns `Ok(false)` when the receiver is
    /// gone (a downstream worker finished or failed — not an error for
    /// the sender), `Err` when a bounded edge's *data* class stalls past
    /// the deadline — naming `stage`, the stalled consumer, so a wedged
    /// graph is diagnosable. Control envelopes (sps, epoch barriers) are
    /// always admitted immediately — they cannot stall behind a full
    /// data bound.
    fn send(&self, env: Envelope, stage: &str) -> Result<bool, EngineError> {
        match self {
            EdgeTx::Unbounded(tx) => Ok(tx.send(env).is_ok()),
            EdgeTx::Bounded(tx) => {
                if env.is_control() {
                    return Ok(tx.send_control(env).is_ok());
                }
                let mut env = env;
                let deadline = Instant::now() + STALL_DEADLINE;
                loop {
                    match tx.try_send_data(env) {
                        Ok(()) => return Ok(true),
                        Err(DataRejected::Disconnected(_)) => return Ok(false),
                        Err(DataRejected::Full(back)) => {
                            if Instant::now() >= deadline {
                                return Err(EngineError::ShutdownTimeout {
                                    pending_workers: 1,
                                    stalled: vec![stage.to_string()],
                                });
                            }
                            env = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        }
    }
}

/// The receiving end of an edge, mirroring [`EdgeTx`].
enum EdgeRx {
    Bounded(ClassedReceiver<Envelope>),
    Unbounded(Receiver<Envelope>),
}

impl EdgeRx {
    /// Blocking receive; `None` once every sender is gone and the queue
    /// is drained. Popping a data envelope frees its data-capacity slot.
    fn recv(&self) -> Option<Envelope> {
        match self {
            EdgeRx::Unbounded(rx) => rx.recv().ok(),
            EdgeRx::Bounded(rx) => {
                let env = rx.recv()?;
                if !env.is_control() {
                    rx.data_popped();
                }
                Some(env)
            }
        }
    }
}

/// The pre-resolved outgoing edges of one worker: exactly the senders this
/// worker needs, and nothing more. Holding only these keeps channel
/// closure cascading topologically — a worker exits when its inputs close,
/// which closes its outputs in turn. (Handing every worker senders to
/// every channel would deadlock: no channel could ever close.)
struct Wires {
    /// `(consumer label, sender)` per edge; the label names the stage a
    /// stalled send is waiting on.
    senders: Vec<(String, EdgeTx)>,
}

impl Wires {
    fn resolve(targets: &[Target], node_tx: &[Vec<EdgeTx>], sink_tx: &[EdgeTx]) -> Self {
        let senders = targets
            .iter()
            .map(|t| match *t {
                Target::Node(n, port) => {
                    (format!("node {n} port {port}"), node_tx[n][port].clone())
                }
                Target::Sink(s) => (format!("sink {s}"), sink_tx[s].clone()),
            })
            .collect();
        Self { senders }
    }

    fn send(&self, seq: u64, payload: &Payload) -> Result<(), EngineError> {
        for (label, tx) in &self.senders {
            // `Ok(false)` (closed downstream) is fine; a stall is not.
            tx.send(Envelope { seq, payload: payload.clone() }, label)?;
        }
        Ok(())
    }

    /// Sends one batch to every consumer, cloning only for fan-out: the
    /// last sender takes the batch by move, so single-consumer edges (the
    /// common case) forward without copying.
    fn send_batch(&self, seq: u64, batch: ElementBatch) -> Result<(), EngineError> {
        let Some(((last_label, last), rest)) = self.senders.split_last() else {
            return Ok(());
        };
        for (label, tx) in rest {
            tx.send(Envelope { seq, payload: Payload::Batch(batch.clone()) }, label)?;
        }
        last.send(Envelope { seq, payload: Payload::Batch(batch) }, last_label)?;
        Ok(())
    }
}

/// A port receiver with one-envelope lookahead, for seq-ordered merging.
struct PeekRx {
    rx: EdgeRx,
    head: Option<Envelope>,
    closed: bool,
}

impl PeekRx {
    fn new(rx: EdgeRx) -> Self {
        Self { rx, head: None, closed: false }
    }

    /// Blocks until a head envelope is available (or the channel closes);
    /// returns its sequence number.
    fn peek_seq(&mut self) -> Option<u64> {
        if self.head.is_none() && !self.closed {
            match self.rx.recv() {
                Some(env) => self.head = Some(env),
                None => self.closed = true,
            }
        }
        self.head.as_ref().map(|e| e.seq)
    }

    fn take(&mut self) -> Option<Envelope> {
        self.head.take()
    }

    /// Whether the current head (if any) is an epoch barrier marker.
    fn head_is_epoch(&self) -> bool {
        matches!(self.head, Some(Envelope { payload: Payload::Epoch(_), .. }))
    }
}

/// Runs one input batch through an operator with panic containment, then
/// forwards whatever it emitted as kind-homogeneous runs under the
/// input's sequence number.
fn process_contained(
    node: &mut crate::plan::Node,
    op_name: &str,
    port: usize,
    seq: u64,
    batch: ElementBatch,
    emitter: &mut Emitter,
    wires: &Wires,
) -> Result<(), EngineError> {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        node.op.process_batch(port, batch, emitter)
    }));
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(e)) => return Err(e),
        Err(payload) => return Err(EngineError::from_panic(op_name, payload.as_ref())),
    }
    coalesce_runs(emitter.drain(), |run| wires.send_batch(seq, run))
}

/// Snapshots a node at an epoch barrier, reports the section, and
/// forwards the marker downstream exactly once.
fn barrier_node(
    node: &crate::plan::Node,
    slot: usize,
    seq: u64,
    epoch: u64,
    sections: &Sender<SectionMsg>,
    wires: &Wires,
) -> Result<(), EngineError> {
    let mut bytes = Vec::new();
    node.op.snapshot(&mut bytes);
    // The receiver lives on the coordinating thread for the whole run;
    // a closed channel means the run is already being torn down.
    let _ = sections.send((epoch, Section::Node(slot), bytes));
    wires.send(seq, &Payload::Epoch(epoch))
}

/// Joins a set of worker handles against [`DRAIN_TIMEOUT`], converting
/// worker panics (which containment should have caught already) and
/// propagating the first worker error.
pub(crate) fn join_with_deadline<T>(
    handles: Vec<(String, std::thread::JoinHandle<Result<T, EngineError>>)>,
    deadline: Instant,
) -> Result<Vec<T>, EngineError> {
    // Wait (bounded) for all workers to finish before joining any: join()
    // itself blocks indefinitely, so only poll-then-join is deadline-safe.
    loop {
        let pending = handles.iter().filter(|(_, h)| !h.is_finished()).count();
        if pending == 0 {
            break;
        }
        if Instant::now() >= deadline {
            // Leaves the stragglers detached; they hold only their own
            // channels, which die with them. Name them so the operator
            // wedging the graph is visible in the error.
            let stalled = handles
                .iter()
                .filter(|(_, h)| !h.is_finished())
                .map(|(name, _)| name.clone())
                .collect();
            return Err(EngineError::ShutdownTimeout { pending_workers: pending, stalled });
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut out = Vec::with_capacity(handles.len());
    for (name, handle) in handles {
        match handle.join() {
            Ok(Ok(value)) => out.push(value),
            Ok(Err(e)) => return Err(e),
            Err(payload) => return Err(EngineError::from_panic(&name, payload.as_ref())),
        }
    }
    Ok(out)
}

/// Runs the plan in `builder` over a finite recorded input with one thread
/// per operator, returning every sink's collected output.
///
/// # Errors
///
/// Returns the first [`EngineError`] any worker reports: a typed operator
/// failure, a contained operator panic ([`EngineError::OperatorPanic`]),
/// or [`EngineError::ShutdownTimeout`] when the graph wedges. The runner
/// itself never panics on worker failure and never blocks forever.
pub fn run_parallel(
    builder: PlanBuilder,
    inputs: impl IntoIterator<Item = (StreamId, StreamElement)>,
) -> Result<ParallelResults, EngineError> {
    let (results, _) = run_parallel_inner(builder, inputs, None).map_err(|e| e.0)?;
    Ok(results)
}

/// Runs the plan with one thread per operator **and** aligned-barrier
/// epoch checkpointing: after every `epoch_interval` raw input elements
/// the feeder broadcasts an epoch marker, every operator snapshots at the
/// barrier, and each complete epoch's consistent cut is assembled into a
/// [`Checkpoint`] and saved to `store` (in epoch order, after the run
/// drains). Checkpoints are byte-identical to the sequential
/// [`Executor::checkpoint`](crate::plan::Executor::checkpoint) at the same
/// input positions.
///
/// # Errors
///
/// Everything [`run_parallel`] can return, plus any error from saving to
/// `store`. Complete epochs collected before a failure are still saved.
pub fn run_parallel_checkpointed(
    builder: PlanBuilder,
    inputs: impl IntoIterator<Item = (StreamId, StreamElement)>,
    epoch_interval: u64,
    store: &mut dyn CheckpointStore,
) -> Result<ParallelResults, EngineError> {
    let interval = epoch_interval.max(1);
    let run = run_parallel_inner(builder, inputs, Some(interval));
    // Persist complete cuts whether or not the run itself failed: the
    // sections a crashed run did report still describe consistent states.
    let (outcome, collection) = match run {
        Ok((results, collection)) => (Ok(results), collection),
        Err(boxed) => {
            let (e, collection) = *boxed;
            (Err(e), collection)
        }
    };
    collection.persist(store)?;
    outcome
}

/// Sections and epoch positions collected during a checkpointed run.
#[derive(Default)]
struct CkptCollection {
    /// `(epoch, section, bytes)` in arrival order.
    sections: Vec<SectionMsg>,
    /// `epoch -> raw input position` recorded by the feeder.
    epoch_pos: Vec<(u64, u64)>,
    analyzers: usize,
    nodes: usize,
    sinks: usize,
}

impl CkptCollection {
    /// Assembles every epoch with a full complement of sections into a
    /// [`Checkpoint`] and saves them in epoch order.
    fn persist(self, store: &mut dyn CheckpointStore) -> Result<(), EngineError> {
        let pos: HashMap<u64, u64> = self.epoch_pos.iter().copied().collect();
        let mut cuts: BTreeMap<u64, Checkpoint> = BTreeMap::new();
        for (epoch, section, bytes) in self.sections {
            let Some(&input_pos) = pos.get(&epoch) else { continue };
            let cut = cuts.entry(epoch).or_insert_with(|| Checkpoint {
                epoch,
                input_pos,
                analyzers: vec![Vec::new(); self.analyzers],
                nodes: vec![Vec::new(); self.nodes],
                sinks: vec![Vec::new(); self.sinks],
            });
            match section {
                Section::Analyzer(i) => cut.analyzers[i] = bytes,
                Section::Node(i) => cut.nodes[i] = bytes,
                Section::Sink(i) => cut.sinks[i] = bytes,
            }
        }
        for cut in cuts.values() {
            store.save(cut)?;
        }
        Ok(())
    }
}

type RunOk = (ParallelResults, CkptCollection);

/// Boxed so the `Err` variant stays pointer-sized: the collection rides
/// along even on failure so complete cuts can still be persisted.
type RunErr = Box<(EngineError, CkptCollection)>;

#[allow(clippy::too_many_lines)]
fn run_parallel_inner(
    builder: PlanBuilder,
    inputs: impl IntoIterator<Item = (StreamId, StreamElement)>,
    epoch_interval: Option<u64>,
) -> Result<RunOk, RunErr> {
    let (nodes, mut sources, sinks, _telemetry) = builder.into_parts();

    // Channels: one per (node, port) and one per sink. Binary ports are
    // unbounded (ordered-merge requirement), everything else a classed
    // channel: data bounded, control (sps/barriers) always admitted.
    let mut node_tx: Vec<Vec<EdgeTx>> = Vec::with_capacity(nodes.len());
    let mut node_rx: Vec<Vec<EdgeRx>> = Vec::with_capacity(nodes.len());
    for node in &nodes {
        let arity = node.op.arity();
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for _ in 0..arity {
            if arity > 1 {
                let (tx, rx) = channel();
                txs.push(EdgeTx::Unbounded(tx));
                rxs.push(EdgeRx::Unbounded(rx));
            } else {
                let (tx, rx) = classed_channel(EDGE_CAPACITY);
                txs.push(EdgeTx::Bounded(tx));
                rxs.push(EdgeRx::Bounded(rx));
            }
        }
        node_tx.push(txs);
        node_rx.push(rxs);
    }
    let mut sink_tx = Vec::with_capacity(sinks.len());
    let mut sink_rx = Vec::with_capacity(sinks.len());
    for _ in &sinks {
        let (tx, rx) = classed_channel(EDGE_CAPACITY);
        sink_tx.push(EdgeTx::Bounded(tx));
        sink_rx.push(EdgeRx::Bounded(rx));
    }
    // Resolve each worker's outgoing edges, then drop the master sender
    // tables so only the per-edge clones keep channels open.
    let node_wires: Vec<Wires> =
        nodes.iter().map(|n| Wires::resolve(&n.outputs, &node_tx, &sink_tx)).collect();
    let source_wires: Vec<Wires> =
        sources.iter().map(|s| Wires::resolve(&s.outputs, &node_tx, &sink_tx)).collect();
    drop(node_tx);
    drop(sink_tx);

    // Snapshot-section plumbing: workers and the feeder report
    // `(epoch, section, bytes)` here; the coordinating thread drains the
    // receiver after the run and assembles complete cuts.
    let (sections_tx, sections_rx) = channel::<SectionMsg>();
    // Audit plumbing: each worker ships its operator's flight recorder
    // (if armed) back once its input closes; analyzers are read inline by
    // the coordinating thread after the feed loop.
    let (audit_tx, audit_rx) = channel::<AuditMsg>();
    let mut collection = CkptCollection {
        analyzers: sources.len(),
        nodes: nodes.len(),
        sinks: sinks.len(),
        ..CkptCollection::default()
    };

    // Operator threads.
    let mut node_handles = Vec::new();
    let mut node_rx_iter = node_rx.into_iter();
    let mut node_wires_iter = node_wires.into_iter();
    for (slot, mut node) in nodes.into_iter().enumerate() {
        let Some(rxs) = node_rx_iter.next() else { break };
        let Some(wires) = node_wires_iter.next() else { break };
        let op_name = node.op.name().to_string();
        let thread_name = op_name.clone();
        let sections = sections_tx.clone();
        let audits = audit_tx.clone();
        node_handles.push((
            op_name.clone(),
            std::thread::spawn(move || -> Result<(), EngineError> {
                let mut emitter = Emitter::with_capacity(64);
                let mut ports: Vec<PeekRx> = rxs.into_iter().map(PeekRx::new).collect();
                if ports.len() == 1 {
                    // Unary: plain FIFO.
                    let Some(mut port0) = ports.pop() else {
                        return Err(EngineError::ChannelDisconnected { stage: thread_name });
                    };
                    while port0.peek_seq().is_some() {
                        let Some(env) = port0.take() else { break };
                        match env.payload {
                            Payload::Batch(batch) => process_contained(
                                &mut node,
                                &op_name,
                                0,
                                env.seq,
                                batch,
                                &mut emitter,
                                &wires,
                            )?,
                            Payload::Epoch(epoch) => {
                                barrier_node(&node, slot, env.seq, epoch, &sections, &wires)?;
                            }
                        }
                    }
                } else {
                    // Binary: merge the two ports in global sequence order.
                    // Each port is FIFO from a single upstream, so the
                    // smaller head is always safe to process; blocking on
                    // an empty port cannot deadlock (these input edges are
                    // unbounded — upstreams never wait on us).
                    loop {
                        let s0 = ports[0].peek_seq();
                        let s1 = ports[1].peek_seq();
                        let port = match (s0, s1) {
                            (None, None) => break,
                            (Some(_), None) => 0,
                            (None, Some(_)) => 1,
                            (Some(a), Some(b)) => {
                                // Both copies of a marker share its seq, so
                                // the seq-ordered merge aligns the barrier:
                                // when both heads are the same marker, every
                                // pre-marker element on either port has been
                                // processed. Consume both, snapshot once,
                                // forward once.
                                if a == b && ports[0].head_is_epoch() && ports[1].head_is_epoch() {
                                    let Some(env) = ports[0].take() else { break };
                                    ports[1].take();
                                    if let Payload::Epoch(epoch) = env.payload {
                                        barrier_node(
                                            &node, slot, env.seq, epoch, &sections, &wires,
                                        )?;
                                    }
                                    continue;
                                }
                                usize::from(b < a)
                            }
                        };
                        let Some(env) = ports[port].take() else { break };
                        match env.payload {
                            Payload::Batch(batch) => process_contained(
                                &mut node,
                                &op_name,
                                port,
                                env.seq,
                                batch,
                                &mut emitter,
                                &wires,
                            )?,
                            Payload::Epoch(epoch) => {
                                // One port closed early (its upstream
                                // finished); the surviving port still
                                // delivers every marker.
                                barrier_node(&node, slot, env.seq, epoch, &sections, &wires)?;
                            }
                        }
                    }
                }
                // Input closed cleanly: ship this operator's audit and
                // span sections home. (A failed worker returns above and
                // loses its records — the run's telemetry is only
                // published on success.)
                let audit_rec = node.op.audit().cloned();
                let span_rec = node.op.spans().cloned();
                #[allow(clippy::cast_possible_truncation)] // plan slots fit u32
                if audit_rec.is_some() || span_rec.is_some() {
                    let _ = audits.send((AuditOp::Node(slot as u32), audit_rec, span_rec));
                }
                // Dropping this worker's wires closes its downstream
                // edges once every other sender to them is gone.
                Ok(())
            }),
        ));
    }

    // Sink threads: single FIFO upstream each; collect in order.
    let mut sink_handles = Vec::new();
    let mut sink_rx_iter = sink_rx.into_iter();
    for (slot, mut sink) in sinks.into_iter().enumerate() {
        let Some(rx) = sink_rx_iter.next() else { break };
        let sections = sections_tx.clone();
        sink_handles.push((
            "sink".to_string(),
            std::thread::spawn(move || -> Result<Sink, EngineError> {
                let mut emitter = Emitter::with_capacity(8);
                while let Some(env) = rx.recv() {
                    match env.payload {
                        Payload::Batch(batch) => sink.process_batch(0, batch, &mut emitter)?,
                        Payload::Epoch(epoch) => {
                            let mut bytes = Vec::new();
                            crate::operator::Operator::snapshot(&sink, &mut bytes);
                            let _ = sections.send((epoch, Section::Sink(slot), bytes));
                        }
                    }
                }
                Ok(sink)
            }),
        ));
    }

    // Feed: run analyzers inline, tag with the global sequence. Feeding
    // errors (a stalled edge) still fall through to the drain below so
    // worker threads are reaped, not leaked.
    let mut by_stream: HashMap<StreamId, Vec<usize>> = HashMap::new();
    for (i, s) in sources.iter().enumerate() {
        by_stream.entry(s.stream).or_default().push(i);
    }
    // Stages one raw element through a source's analyzer and ships the
    // resolved run. A single-consumer source coalesces the run into
    // kind-homogeneous batches, one seq per batch; a fan-out source sends
    // per-element singletons, each under a fresh seq, preserving the
    // element-major interleaving a downstream seq-ordered merge expects.
    fn feed_source(
        source: &mut crate::plan::Source,
        wires: &Wires,
        raw: StreamElement,
        staged: &mut Vec<Element>,
        seq: &mut u64,
    ) -> Result<(), EngineError> {
        source.analyzer.push(raw, staged);
        if source.outputs.len() == 1 {
            coalesce_runs(staged.drain(..), |run| {
                *seq += 1;
                wires.send_batch(*seq, run)
            })
        } else {
            for e in staged.drain(..) {
                *seq += 1;
                wires.send_batch(*seq, ElementBatch::single(e))?;
            }
            Ok(())
        }
    }

    let mut feed_error = None;
    let mut seq = 0u64;
    let mut raw_pos = 0u64;
    let mut staged = Vec::new();
    'feed: for (stream, elem) in inputs {
        if let Some(ids) = by_stream.get(&stream) {
            // Clone the raw element only for multiply-registered streams:
            // the last source takes it by move.
            let mut elem = Some(elem);
            for (k, &sid) in ids.iter().enumerate() {
                let Some(raw) = (if k + 1 == ids.len() { elem.take() } else { elem.clone() })
                else {
                    break;
                };
                if let Err(e) =
                    feed_source(&mut sources[sid], &source_wires[sid], raw, &mut staged, &mut seq)
                {
                    feed_error = Some(e);
                    break 'feed;
                }
            }
        }
        // Epoch boundary: count every raw input element (matching the
        // sequential supervisor), snapshot the analyzers at this instant,
        // and broadcast one marker — same seq on every source edge — so
        // downstream merges align the barrier.
        raw_pos += 1;
        if let Some(interval) = epoch_interval {
            if raw_pos.is_multiple_of(interval) {
                let epoch = raw_pos / interval;
                collection.epoch_pos.push((epoch, raw_pos));
                // One seq for the whole broadcast: a binary operator fed
                // by two different sources then sees the marker at the
                // same seq on both ports and the merge aligns the barrier.
                seq += 1;
                for (sid, source) in sources.iter().enumerate() {
                    let mut bytes = Vec::new();
                    source.analyzer.snapshot(&mut bytes);
                    let _ = sections_tx.send((epoch, Section::Analyzer(sid), bytes));
                    if let Err(e) = source_wires[sid].send(seq, &Payload::Epoch(epoch)) {
                        feed_error = Some(e);
                        break 'feed;
                    }
                }
            }
        }
    }
    // Close the graph: drop the feeder's senders; workers cascade.
    drop(source_wires);

    let deadline = Instant::now() + DRAIN_TIMEOUT;
    let joined_nodes = join_with_deadline(node_handles, deadline);
    let joined_sinks = join_with_deadline(sink_handles, deadline);
    // All worker-held section senders are gone once the joins return (even
    // a timeout leaves only detached stragglers whose sends we may miss —
    // their epochs will simply be incomplete and skipped). Drop ours and
    // drain whatever arrived.
    drop(sections_tx);
    collection.sections.extend(sections_rx.try_iter());
    // Assemble the audit trail: analyzer recorders live on this thread
    // (the feeder runs them inline); worker recorders arrived over the
    // audit channel. `push_section` keeps canonical order, so the trail
    // encodes identically to the sequential executor's.
    drop(audit_tx);
    let worker_sections: Vec<AuditMsg> = audit_rx.try_iter().collect();
    #[allow(clippy::cast_possible_truncation)] // plan slots fit u32
    let audit: AuditTrail = merge_recorders(
        sources
            .iter()
            .enumerate()
            .map(|(sid, s)| (AuditOp::Source(sid as u32), s.analyzer.audit().cloned()))
            .chain(worker_sections.iter().map(|(op, a, _)| (*op, a.clone()))),
    );
    #[allow(clippy::cast_possible_truncation)] // plan slots fit u32
    let spans: SpanSheet = merge_recorders(
        sources
            .iter()
            .enumerate()
            .map(|(sid, s)| (AuditOp::Source(sid as u32), s.analyzer.spans().cloned()))
            .chain(worker_sections.iter().map(|(op, _, s)| (*op, s.clone()))),
    );
    if let Some(e) = feed_error {
        return Err(Box::new((e, collection)));
    }
    if let Err(e) = joined_nodes {
        return Err(Box::new((e, collection)));
    }
    match joined_sinks {
        Ok(sinks) => Ok((ParallelResults { sinks, audit, spans }, collection)),
        Err(e) => Err(Box::new((e, collection))),
    }
}

impl std::fmt::Debug for ParallelResults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelResults").field("sinks", &self.sinks.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::checkpoint::MemStore;
    use crate::expr::{CmpOp, Expr};
    use crate::operator::Operator;
    use crate::ops::{JoinVariant, SAJoin, SecurityShield, Select};
    use crate::plan::PlanBuilder;
    use crate::stats::OperatorStats;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use sp_core::{
        RoleCatalog, RoleId, RoleSet, Schema, SecurityPunctuation, Timestamp, Tuple, TupleId,
        Value, ValueType,
    };
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::of("s", &[("id", ValueType::Int), ("v", ValueType::Int)])
    }

    fn catalog() -> Arc<RoleCatalog> {
        let mut c = RoleCatalog::new();
        c.register_synthetic_roles(8);
        Arc::new(c)
    }

    fn workload(seed: u64, n: u64) -> Vec<(StreamId, StreamElement)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for ts in 1..=n {
            let stream = StreamId(1 + (ts % 2) as u32);
            if rng.gen_bool(0.3) {
                let roles: RoleSet =
                    (0..rng.gen_range(0..3)).map(|_| RoleId(rng.gen_range(0..5))).collect();
                out.push((
                    stream,
                    StreamElement::punctuation(SecurityPunctuation::grant_all(
                        roles,
                        Timestamp(ts),
                    )),
                ));
            }
            let id = rng.gen_range(0..5i64);
            out.push((
                stream,
                StreamElement::tuple(Tuple::new(
                    stream,
                    TupleId(id as u64),
                    Timestamp(ts),
                    vec![Value::Int(id), Value::Int(rng.gen_range(0..10))],
                )),
            ));
        }
        out
    }

    fn pipeline_builder() -> (PlanBuilder, SinkRef) {
        let mut b = PlanBuilder::new(catalog());
        let src = b.source(StreamId(1), schema());
        let sel = b
            .add(Select::new(Expr::cmp(CmpOp::Gt, Expr::Attr(1), Expr::Const(Value::Int(2)))), src);
        let ss = b.add(SecurityShield::new(RoleSet::from([1])), sel);
        let sink = b.sink(ss);
        (b, sink)
    }

    fn join_builder() -> (PlanBuilder, SinkRef) {
        let mut b = PlanBuilder::new(catalog());
        let l = b.source(StreamId(1), schema());
        let r = b.source(StreamId(2), schema());
        let j = b.add_binary(SAJoin::new(JoinVariant::Index, 100_000, 0, 0, 2), l, r);
        let ss = b.add(SecurityShield::new(RoleSet::from([1, 2])), j);
        let sink = b.sink(ss);
        (b, sink)
    }

    fn render(sink: &Sink) -> Vec<String> {
        sink.tuples().map(|t| format!("{:?}@{}", t.values(), t.ts)).collect()
    }

    #[test]
    fn parallel_pipeline_matches_sequential() {
        let input = workload(3, 400);
        let (seq_builder, seq_sink) = pipeline_builder();
        let mut exec = seq_builder.build();
        exec.push_all(input.clone()).unwrap();
        let expected = render(exec.sink(seq_sink));

        let (par_builder, par_sink) = pipeline_builder();
        let results = run_parallel(par_builder, input).unwrap();
        assert_eq!(render(results.sink(par_sink)), expected);
        assert!(!expected.is_empty());
    }

    #[test]
    fn parallel_join_matches_sequential() {
        let input = workload(9, 500);
        let (seq_builder, seq_sink) = join_builder();
        let mut exec = seq_builder.build();
        exec.push_all(input.clone()).unwrap();
        let expected = render(exec.sink(seq_sink));

        let (par_builder, par_sink) = join_builder();
        let results = run_parallel(par_builder, input).unwrap();
        assert_eq!(render(results.sink(par_sink)), expected);
        assert!(!expected.is_empty(), "join workload should produce results");
    }

    #[test]
    fn parallel_shared_subplan() {
        fn build() -> (PlanBuilder, SinkRef, SinkRef) {
            let mut b = PlanBuilder::new(catalog());
            let src = b.source(StreamId(1), schema());
            let shared = b.add(
                Select::new(Expr::cmp(CmpOp::Ge, Expr::Attr(1), Expr::Const(Value::Int(0)))),
                src,
            );
            let ss1 = b.add(SecurityShield::new(RoleSet::from([1])), shared);
            let ss2 = b.add(SecurityShield::new(RoleSet::from([2])), shared);
            let s1 = b.sink(ss1);
            let s2 = b.sink(ss2);
            (b, s1, s2)
        }
        let input = workload(5, 300);
        let (b, s1, s2) = build();
        let mut exec = b.build();
        exec.push_all(input.clone()).unwrap();
        let (e1, e2) = (render(exec.sink(s1)), render(exec.sink(s2)));

        let (b, p1, p2) = build();
        let results = run_parallel(b, input).unwrap();
        assert_eq!(render(results.sink(p1)), e1);
        assert_eq!(render(results.sink(p2)), e2);
    }

    /// A test store that keeps every checkpoint decoded, so each epoch's
    /// cut can be compared — not just the latest one.
    struct VecStore(Vec<crate::checkpoint::Checkpoint>);

    impl CheckpointStore for VecStore {
        fn save(&mut self, ckpt: &crate::checkpoint::Checkpoint) -> Result<(), EngineError> {
            self.0.push(ckpt.clone());
            Ok(())
        }
        fn load_latest(&self) -> Option<crate::checkpoint::Checkpoint> {
            self.0.last().cloned()
        }
        fn count(&self) -> usize {
            self.0.len()
        }
    }

    /// Sequential reference cuts at every `interval` boundary.
    fn sequential_cuts(
        mut exec: crate::plan::Executor,
        input: &[(StreamId, StreamElement)],
        interval: u64,
    ) -> Vec<crate::checkpoint::Checkpoint> {
        let mut cuts = Vec::new();
        for (i, (stream, elem)) in input.iter().enumerate() {
            exec.push(*stream, elem.clone()).unwrap();
            let pos = i as u64 + 1;
            if pos.is_multiple_of(interval) {
                cuts.push(exec.checkpoint(pos / interval, pos));
            }
        }
        cuts
    }

    #[test]
    fn parallel_checkpoints_match_sequential_pipeline() {
        let input = workload(21, 400);
        let interval = 64;
        let (b, _) = pipeline_builder();
        let expected = sequential_cuts(b.build(), &input, interval);
        assert!(expected.len() >= 5, "workload should span several epochs");

        let (b, _) = pipeline_builder();
        let mut store = VecStore(Vec::new());
        run_parallel_checkpointed(b, input, interval, &mut store).unwrap();
        assert_eq!(store.0.len(), expected.len());
        for (got, want) in store.0.iter().zip(&expected) {
            assert_eq!(
                got.encode_to_vec(),
                want.encode_to_vec(),
                "epoch {} cut diverged from the sequential executor",
                want.epoch
            );
        }
    }

    #[test]
    fn parallel_checkpoints_match_sequential_join() {
        // The join plan exercises barrier alignment: markers reach the
        // binary operator on both ports and must be merged into one cut.
        let input = workload(33, 500);
        let interval = 100;
        let (b, _) = join_builder();
        let expected = sequential_cuts(b.build(), &input, interval);

        let (b, _) = join_builder();
        let mut store = VecStore(Vec::new());
        run_parallel_checkpointed(b, input, interval, &mut store).unwrap();
        assert_eq!(store.0.len(), expected.len());
        for (got, want) in store.0.iter().zip(&expected) {
            assert_eq!(
                got.encode_to_vec(),
                want.encode_to_vec(),
                "epoch {} cut diverged from the sequential executor",
                want.epoch
            );
        }
    }

    #[test]
    fn checkpointed_run_matches_plain_parallel_results() {
        let input = workload(3, 400);
        let (b, sink) = pipeline_builder();
        let plain = run_parallel(b, input.clone()).unwrap();

        let (b, csink) = pipeline_builder();
        let mut store = MemStore::default();
        let ckpt = run_parallel_checkpointed(b, input, 50, &mut store).unwrap();
        assert_eq!(render(ckpt.sink(csink)), render(plain.sink(sink)));
        assert!(store.count() >= 8, "expected one durable cut per epoch");
    }

    #[test]
    fn empty_input_yields_empty_sinks() {
        let (b, sink) = pipeline_builder();
        let results = run_parallel(b, Vec::new()).unwrap();
        assert_eq!(results.sink(sink).tuple_count(), 0);
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let input = workload(11, 300);
        let mut previous: Option<Vec<String>> = None;
        for _ in 0..4 {
            let (b, sink) = join_builder();
            let results = run_parallel(b, input.clone()).unwrap();
            let got = render(results.sink(sink));
            if let Some(prev) = &previous {
                assert_eq!(&got, prev);
            }
            previous = Some(got);
        }
    }

    /// An operator that panics when it sees a tuple with a chosen id.
    struct PanicOn {
        id: i64,
        stats: OperatorStats,
    }

    impl Operator for PanicOn {
        fn name(&self) -> &str {
            "panic-on"
        }
        fn process(
            &mut self,
            _port: usize,
            elem: Element,
            out: &mut Emitter,
        ) -> Result<(), EngineError> {
            if let Element::Tuple(t) = &elem {
                if t.value(0).and_then(Value::as_i64) == Some(self.id) {
                    panic!("injected operator failure");
                }
            }
            out.push(elem);
            Ok(())
        }
        fn stats(&self) -> &OperatorStats {
            &self.stats
        }
    }

    #[test]
    fn operator_panic_surfaces_as_engine_error() {
        // Silence the default "thread panicked" stderr noise for the
        // deliberately-injected panic.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut b = PlanBuilder::new(catalog());
        let src = b.source(StreamId(1), schema());
        let boom = b.add(PanicOn { id: 3, stats: OperatorStats::new() }, src);
        let _sink = b.sink(boom);
        let input = workload(3, 400);
        let started = Instant::now();
        let result = run_parallel(b, input);
        std::panic::set_hook(prev_hook);
        match result {
            Err(EngineError::OperatorPanic { operator, message }) => {
                assert_eq!(operator, "panic-on");
                assert!(message.contains("injected"), "{message}");
            }
            other => panic!("expected OperatorPanic, got {other:?}"),
        }
        // No hang: the failed worker's closed channels cascade shutdown
        // long before the drain deadline.
        assert!(started.elapsed() < DRAIN_TIMEOUT / 2);
    }

    #[test]
    fn operator_error_propagates_without_hanging() {
        // BadPort from a deliberately mis-wired plan: route a stream into
        // port 1 of a unary operator via a binary add on the same op is
        // not expressible through the builder, so exercise the error path
        // directly through a failing operator instead.
        struct FailOn {
            id: i64,
            stats: OperatorStats,
        }
        impl Operator for FailOn {
            fn name(&self) -> &str {
                "fail-on"
            }
            fn process(
                &mut self,
                _port: usize,
                elem: Element,
                out: &mut Emitter,
            ) -> Result<(), EngineError> {
                if let Element::Tuple(t) = &elem {
                    if t.value(0).and_then(Value::as_i64) == Some(self.id) {
                        return Err(EngineError::MalformedElement {
                            operator: "fail-on".into(),
                            reason: "injected failure".into(),
                        });
                    }
                }
                out.push(elem);
                Ok(())
            }
            fn stats(&self) -> &OperatorStats {
                &self.stats
            }
        }
        let mut b = PlanBuilder::new(catalog());
        let src = b.source(StreamId(1), schema());
        let fail = b.add(FailOn { id: 2, stats: OperatorStats::new() }, src);
        let _sink = b.sink(fail);
        let result = run_parallel(b, workload(7, 300));
        assert!(matches!(result, Err(EngineError::MalformedElement { .. })), "{result:?}");
    }
}
