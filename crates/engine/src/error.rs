//! Typed engine errors.
//!
//! Streaming input is adversarial by assumption: frames arrive corrupted,
//! punctuations go missing, operators built from user queries can fail.
//! Every runtime path that ingests stream data reports failures through
//! [`EngineError`] instead of panicking, so a hostile stream can at worst
//! terminate one query with a diagnosable error — never the process.

use std::fmt;

/// An error surfaced by the streaming engine at runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An element arrived on a port the operator does not have.
    BadPort {
        /// Operator name.
        operator: String,
        /// The offending port.
        port: usize,
        /// The operator's input arity.
        arity: usize,
    },
    /// An element failed the operator's structural expectations.
    MalformedElement {
        /// Operator name.
        operator: String,
        /// Human-readable cause.
        reason: String,
    },
    /// A worker thread's operator panicked; the panic was contained and
    /// converted (parallel runtime).
    OperatorPanic {
        /// Operator (or stage) name.
        operator: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A runtime channel disconnected before the stream completed,
    /// usually because a peer stage failed.
    ChannelDisconnected {
        /// The stage that observed the disconnect.
        stage: String,
    },
    /// Workers failed to drain within the shutdown deadline.
    ShutdownTimeout {
        /// Number of workers still running at the deadline.
        pending_workers: usize,
        /// Stage names of the stalled workers, when known, so a wedged
        /// graph names the culprit instead of just counting it.
        stalled: Vec<String>,
    },
    /// Two shard replicas of the same plan disagreed on policy state at
    /// a consistent cut. Replicated policy state (security punctuations
    /// are broadcast to every shard) must be byte-identical everywhere;
    /// a divergence means enforcement can no longer be trusted, so the
    /// sharded executor fails closed rather than pick a winner.
    ShardDivergence {
        /// The plan component whose replicas disagreed.
        stage: String,
        /// Human-readable detail.
        reason: String,
    },
    /// The plan cannot run sharded: it contains an operator whose state
    /// depends on seeing the *whole* tuple stream (joins, dup-elim,
    /// aggregation, load shedders), which hash partitioning would
    /// silently corrupt. Fail-closed: refused at build time.
    ShardUnsupported {
        /// The offending operator's name.
        operator: String,
        /// Why the plan shape cannot be partitioned.
        reason: String,
    },
    /// A checkpoint (or one operator's snapshot within it) failed to
    /// decode during recovery. Restore is fail-closed: a corrupt snapshot
    /// aborts the restore rather than starting with partial policy state.
    CheckpointCorrupt {
        /// The component whose snapshot failed ("supervisor", an operator
        /// name, "analyzer", …).
        stage: String,
        /// Human-readable cause.
        reason: String,
    },
    /// The supervisor exhausted its restart budget and entered the
    /// terminal fail-closed state; the rest of the input was refused.
    RecoveryExhausted {
        /// Restart attempts made before giving up.
        attempts: u32,
        /// Input elements refused (never processed) after the terminal
        /// failure.
        refused: u64,
    },
    /// The ingestion boundary refused an element because the session is
    /// over its admitted rate (token bucket empty beyond the enqueue
    /// deadline). Unlike the other variants this is *not* a pipeline
    /// death: the element was never enqueued and the caller should retry
    /// after the indicated delay. Security punctuations are never refused
    /// this way — only data tuples pay admission tokens.
    Overloaded {
        /// Milliseconds (stream time) until a token accrues and a retry
        /// can succeed.
        retry_after_ms: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadPort { operator, port, arity } => write!(
                f,
                "operator {operator:?} received input on port {port} but has arity {arity}"
            ),
            Self::MalformedElement { operator, reason } => {
                write!(f, "operator {operator:?} rejected element: {reason}")
            }
            Self::OperatorPanic { operator, message } => {
                write!(f, "operator {operator:?} panicked: {message}")
            }
            Self::ChannelDisconnected { stage } => {
                write!(f, "stage {stage:?} lost its channel before end of stream")
            }
            Self::ShutdownTimeout { pending_workers, stalled } => {
                write!(f, "{pending_workers} worker(s) still running at shutdown deadline")?;
                if stalled.is_empty() {
                    Ok(())
                } else {
                    write!(f, " (stalled: {})", stalled.join(", "))
                }
            }
            Self::ShardDivergence { stage, reason } => {
                write!(f, "shard replicas diverged at {stage:?}: {reason}")
            }
            Self::ShardUnsupported { operator, reason } => {
                write!(f, "operator {operator:?} cannot run key-partitioned: {reason}")
            }
            Self::CheckpointCorrupt { stage, reason } => {
                write!(f, "checkpoint snapshot for {stage:?} is corrupt: {reason}")
            }
            Self::RecoveryExhausted { attempts, refused } => write!(
                f,
                "recovery exhausted after {attempts} restart attempt(s); \
                 {refused} element(s) refused fail-closed"
            ),
            Self::Overloaded { retry_after_ms } => {
                write!(f, "session overloaded; retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl EngineError {
    /// Builds [`EngineError::OperatorPanic`] from a `catch_unwind` payload,
    /// extracting the message when the panic carried one.
    #[must_use]
    pub fn from_panic(operator: &str, payload: &(dyn std::any::Any + Send)) -> Self {
        let message = payload
            .downcast_ref::<&'static str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Self::OperatorPanic { operator: operator.to_string(), message }
    }

    /// Builds [`EngineError::CheckpointCorrupt`] from a codec error string.
    #[must_use]
    pub fn corrupt(stage: &str, reason: impl Into<String>) -> Self {
        Self::CheckpointCorrupt { stage: stage.to_string(), reason: reason.into() }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::BadPort { operator: "sajoin".into(), port: 3, arity: 2 };
        assert!(e.to_string().contains("port 3"));
        let e = EngineError::ShutdownTimeout { pending_workers: 2, stalled: vec![] };
        assert!(e.to_string().contains("2 worker"));
        let e = EngineError::ShutdownTimeout {
            pending_workers: 2,
            stalled: vec!["node 1 shield".into(), "sink 0".into()],
        };
        assert!(e.to_string().contains("stalled: node 1 shield, sink 0"));
        let e = EngineError::Overloaded { retry_after_ms: 40 };
        assert!(e.to_string().contains("retry after 40 ms"));
    }

    #[test]
    fn panic_payloads_extract() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new("boom");
        let e = EngineError::from_panic("select", boxed.as_ref());
        assert_eq!(
            e,
            EngineError::OperatorPanic { operator: "select".into(), message: "boom".into() }
        );
        let boxed: Box<dyn std::any::Any + Send> = Box::new(format!("bad {}", 7));
        let e = EngineError::from_panic("x", boxed.as_ref());
        assert!(matches!(e, EngineError::OperatorPanic { message, .. } if message == "bad 7"));
    }
}
