//! The SP Analyzer (§II-B, Fig. 1).
//!
//! The analyzer sits between arriving raw streams and the query plans. It
//! (1) assembles consecutive same-timestamp punctuations into sp-batches and
//! resolves them — patterns evaluated against the role catalog and the
//! stream's schema — into [`SegmentPolicy`] elements; (2) combines the
//! data-provider policies with **server-specified policies** using
//! `intersect()` semantics, so the server may refine but never broaden
//! access (immutable sps opt out); and (3) *combines sps with similar
//! policies*: a segment policy identical to the previous one is not
//! re-emitted, saving downstream sp processing.

use std::collections::VecDeque;
use std::sync::Arc;

use sp_core::{
    combine_batch, Policy, RoleCatalog, Schema, SecurityPunctuation, StreamElement, Timestamp,
    Tuple,
};

use crate::element::{Element, PolicyEntry, SegmentPolicy};
use crate::stats::DegradationStats;
use crate::telemetry::{
    AuditEvent, FlightRecorder, QuarantineReason, SpanRecord, SpanRecorder, NO_TUPLE,
};

/// Hardened-mode parameters: how fresh a policy must be to govern a
/// tuple, and how long an uncovered tuple may wait for its policy.
///
/// All times are stream timestamps (milliseconds), so behaviour is
/// deterministic and replayable — no wall clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinePolicy {
    /// A policy with timestamp `p` governs tuples with
    /// `p <= ts <= p + ttl_ms`. Tuples outside every policy's window are
    /// quarantined instead of inheriting a stale policy.
    pub ttl_ms: u64,
    /// How long (in stream time) a quarantined tuple may wait for its
    /// sp-batch before being dropped.
    pub slack_ms: u64,
    /// Maximum quarantined tuples held; the oldest is dropped when full.
    pub capacity: usize,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        Self { ttl_ms: 1_000, slack_ms: 1_000, capacity: 1_024 }
    }
}

/// Per-stream punctuation analyzer.
#[derive(Debug)]
pub struct SpAnalyzer {
    schema: Arc<Schema>,
    catalog: Arc<RoleCatalog>,
    /// Server-side policy applied (by intersection) to every mutable
    /// data-provider policy on this stream.
    server_policy: Option<Policy>,
    batch: Vec<Arc<SecurityPunctuation>>,
    last_emitted: Option<Arc<SegmentPolicy>>,
    /// Incremental-policy mode (§IX future work): an sp-batch *modifies*
    /// the previous policy (grants add roles, negative sps revoke them)
    /// instead of replacing it wholesale. Applies to unscoped
    /// (whole-segment) batches; scoped batches always replace.
    incremental: bool,
    /// Punctuations dropped because their DDP does not cover this stream.
    pub sps_filtered: u64,
    /// Segment policies suppressed because they repeated the previous one.
    pub sps_merged: u64,
    /// Hardened fail-closed mode; `None` (the default) preserves the
    /// paper's pass-through behaviour.
    hardening: Option<QuarantinePolicy>,
    /// Timestamp of the governing policy (hardened mode only).
    current_ts: Option<Timestamp>,
    /// High-water mark over every element timestamp seen.
    clock: u64,
    /// Tuples awaiting a governing policy, in arrival order.
    quarantine: VecDeque<Arc<Tuple>>,
    /// Sp-batches discarded for arriving older than the governing policy.
    pub stale_sp_batches: u64,
    /// Tuples ever sent to quarantine.
    pub quarantined: u64,
    /// Quarantined tuples released by a policy that arrived in time.
    pub quarantine_released: u64,
    /// Quarantined tuples dropped: timed out, evicted by the capacity
    /// bound, or passed over by a newer policy. Never emitted unshielded.
    pub quarantine_dropped: u64,
    /// Security flight recorder: quarantine decisions and stale-sp
    /// discards, each with its [`QuarantineReason`]. Disabled by default.
    recorder: FlightRecorder,
    /// sp-trace span recorder: one `analyze` span per emitted segment
    /// policy, linking the wire frame that carried the sp-batch to the
    /// shield enforcement downstream. Disabled by default.
    spans: SpanRecorder,
}

impl SpAnalyzer {
    /// An analyzer for one registered stream.
    #[must_use]
    pub fn new(schema: Arc<Schema>, catalog: Arc<RoleCatalog>) -> Self {
        Self {
            schema,
            catalog,
            server_policy: None,
            batch: Vec::new(),
            last_emitted: None,
            incremental: false,
            sps_filtered: 0,
            sps_merged: 0,
            hardening: None,
            current_ts: None,
            clock: 0,
            quarantine: VecDeque::new(),
            stale_sp_batches: 0,
            quarantined: 0,
            quarantine_released: 0,
            quarantine_dropped: 0,
            recorder: FlightRecorder::disabled(),
            spans: SpanRecorder::disabled(),
        }
    }

    /// Enables the security flight recorder with the given ring capacity
    /// (0 disables it again).
    pub fn set_audit(&mut self, capacity: usize) {
        self.recorder = FlightRecorder::new(capacity);
    }

    /// The flight recorder, when enabled.
    #[must_use]
    pub fn audit(&self) -> Option<&FlightRecorder> {
        self.recorder.enabled().then_some(&self.recorder)
    }

    /// Enables the sp-trace span recorder with the given ring capacity
    /// (0 disables it again).
    pub fn set_spans(&mut self, capacity: usize) {
        self.spans = SpanRecorder::new(capacity);
    }

    /// The span recorder, when enabled.
    #[must_use]
    pub fn spans(&self) -> Option<&SpanRecorder> {
        (self.spans.capacity() > 0).then_some(&self.spans)
    }

    /// Switches this analyzer into hardened fail-closed mode: a tuple not
    /// governed by a fresh-enough policy is quarantined instead of
    /// forwarded, a late sp-batch cannot roll authorizations back, and the
    /// bounded buffer plus stream-time timeout cap the memory a hostile
    /// stream can pin.
    pub fn harden(&mut self, policy: QuarantinePolicy) {
        self.hardening = Some(policy);
    }

    /// Whether hardened fail-closed mode is active.
    #[must_use]
    pub fn is_hardened(&self) -> bool {
        self.hardening.is_some()
    }

    /// Fail-closed degradation counters accumulated by this stream.
    #[must_use]
    pub fn degradation(&self) -> DegradationStats {
        DegradationStats {
            sps_filtered: self.sps_filtered,
            sps_merged: self.sps_merged,
            stale_sp_batches: self.stale_sp_batches,
            quarantined: self.quarantined,
            quarantine_released: self.quarantine_released,
            quarantine_dropped: self.quarantine_dropped,
            ..DegradationStats::new()
        }
    }

    /// Enables or disables incremental-policy mode (§IX future work):
    /// subsequent unscoped sp-batches apply on top of the previous policy
    /// — a positive sp adds its roles, a negative sp revokes them —
    /// instead of starting from denial-by-default.
    pub fn set_incremental(&mut self, incremental: bool) {
        self.incremental = incremental;
    }

    /// Installs a server-specified policy (§II-B: organizations may refine
    /// data-provider policies, e.g. a hospital adding constraints on top of
    /// a patient's own).
    pub fn set_server_policy(&mut self, policy: Option<Policy>) {
        self.server_policy = policy;
        // The cached last emission no longer reflects the combination.
        self.last_emitted = None;
    }

    /// The stream schema this analyzer serves.
    #[must_use]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Processes one raw stream element, appending engine elements to `out`.
    pub fn push(&mut self, elem: StreamElement, out: &mut Vec<Element>) {
        match elem {
            StreamElement::Punctuation(sp) => {
                if !sp.matches_stream(self.schema.name()) {
                    self.sps_filtered += 1;
                    return;
                }
                self.advance_clock(sp.ts.0);
                if let Some(first) = self.batch.first() {
                    if sp.ts != first.ts {
                        self.flush(out);
                    }
                }
                self.batch.push(sp);
            }
            StreamElement::Tuple(tuple) => {
                self.advance_clock(tuple.ts.0);
                self.flush(out);
                match self.hardening {
                    Some(qp) if !self.governs(tuple.ts, qp.ttl_ms) => {
                        self.quarantined += 1;
                        self.recorder.record(
                            tuple.tid.raw(),
                            tuple.ts.0,
                            AuditEvent::Quarantined { reason: QuarantineReason::Uncovered },
                        );
                        if self.quarantine.len() >= qp.capacity {
                            if let Some(evicted) = self.quarantine.pop_front() {
                                self.quarantine_dropped += 1;
                                self.recorder.record(
                                    evicted.tid.raw(),
                                    evicted.ts.0,
                                    AuditEvent::QuarantineDropped {
                                        reason: QuarantineReason::CapacityEvicted,
                                    },
                                );
                            }
                        }
                        self.quarantine.push_back(tuple);
                    }
                    _ => out.push(Element::Tuple(tuple)),
                }
            }
        }
    }

    /// Whether the governing policy covers a tuple at `ts`: the policy must
    /// precede the tuple and still be within its freshness window.
    fn governs(&self, ts: Timestamp, ttl_ms: u64) -> bool {
        self.current_ts.is_some_and(|p| p <= ts && ts.0 - p.0 <= ttl_ms)
    }

    /// Advances stream time and expires quarantined tuples whose slack ran
    /// out before their policy arrived.
    fn advance_clock(&mut self, ts: u64) {
        if ts > self.clock {
            self.clock = ts;
        }
        if let Some(qp) = self.hardening {
            // Reordered arrivals mean the queue is not ts-sorted, so scan
            // it all rather than popping from the front.
            let clock = self.clock;
            if self.recorder.enabled() {
                // Separate pre-pass: `retain`'s closure cannot reach the
                // recorder, and this path costs nothing when auditing is
                // off.
                for t in &self.quarantine {
                    if t.ts.0.saturating_add(qp.slack_ms) < clock {
                        self.recorder.record(
                            t.tid.raw(),
                            t.ts.0,
                            AuditEvent::QuarantineDropped {
                                reason: QuarantineReason::SlackExpired,
                            },
                        );
                    }
                }
            }
            let before = self.quarantine.len();
            self.quarantine.retain(|t| t.ts.0.saturating_add(qp.slack_ms) >= clock);
            self.quarantine_dropped += (before - self.quarantine.len()) as u64;
        }
    }

    /// Resolves and emits the pending batch, if any.
    pub fn flush(&mut self, out: &mut Vec<Element>) {
        if self.batch.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.batch);
        let ts = batch[0].ts;
        if self.hardening.is_some() && self.current_ts.is_some_and(|cur| ts < cur) {
            // A batch older than the governing policy must not roll
            // authorizations back — a delayed or replayed grant could widen
            // access retroactively. Fail closed: discard the whole batch.
            self.stale_sp_batches += 1;
            self.recorder.record(NO_TUPLE, ts.0, AuditEvent::StaleSpDiscarded);
            return;
        }
        // Group the batch by tuple scope: sps with identical tuple patterns
        // combine into one policy entry.
        let mut groups: Vec<(&str, Vec<Arc<SecurityPunctuation>>)> = Vec::new();
        for sp in &batch {
            let scope = sp.ddp.tuple.source();
            match groups.iter_mut().find(|(s, _)| *s == scope) {
                Some((_, list)) => list.push(sp.clone()),
                None => groups.push((scope, vec![sp.clone()])),
            }
        }
        // Incremental mode: a single unscoped batch modifies the previous
        // uniform policy instead of replacing it.
        let incremental_base = if self.incremental && groups.len() == 1 && groups[0].0 == "*" {
            self.last_emitted.as_ref().and_then(|seg| seg.as_uniform()).map(|p| (**p).clone())
        } else {
            None
        };
        let entries: Vec<PolicyEntry> = groups
            .into_iter()
            .map(|(_, sps)| {
                let scope = sps[0].ddp.tuple.clone();
                let mut policy = match &incremental_base {
                    Some(base) => {
                        let mut p = base.clone();
                        p.ts = ts;
                        for sp in &sps {
                            sp.apply_to(&mut p, &self.catalog, &self.schema);
                        }
                        p
                    }
                    None => combine_batch(&sps, &self.catalog, &self.schema),
                };
                if let Some(server) = &self.server_policy {
                    // `Policy::intersect` honours the immutable flag.
                    policy = policy.intersect(server);
                }
                PolicyEntry { scope, policy: Arc::new(policy) }
            })
            .collect();
        let seg = Arc::new(SegmentPolicy::new(entries, ts));
        // Similar-policy combining: skip emission when the authorizations
        // are unchanged (timestamps aside).
        let merged = self.last_emitted.as_ref().is_some_and(|prev| {
            prev.entries().len() == seg.entries().len()
                && prev
                    .entries()
                    .iter()
                    .zip(seg.entries())
                    .all(|(a, b)| a.scope == b.scope && a.policy.same_authorizations(&b.policy))
        });
        if merged {
            self.sps_merged += 1;
        } else {
            self.last_emitted = Some(seg.clone());
            if self.spans.enabled() {
                // The analyze span for an sp-batch hangs off the wire
                // frame that carried it: same trace id (derived from the
                // batch timestamp), parent = the wire_frame span.
                use sp_core::trace::{site, span_id, trace_id_for_sp};
                let trace = trace_id_for_sp(ts.0);
                self.spans.record(SpanRecord::at(
                    trace,
                    site::ANALYZE,
                    span_id(trace, site::WIRE_FRAME),
                    NO_TUPLE,
                    ts.0,
                ));
            }
            out.push(Element::Policy(seg));
        }
        if let Some(qp) = self.hardening {
            // Even a merge-suppressed batch re-asserts its authorizations
            // at `ts`, so it refreshes the governing timestamp.
            self.current_ts = Some(ts);
            // Settle the quarantine against the new policy: release tuples
            // it governs, condemn tuples now permanently ungovernable (the
            // governing timestamp only advances, so a tuple older than it
            // can never be covered), keep the rest waiting.
            for t in std::mem::take(&mut self.quarantine) {
                if ts <= t.ts && t.ts.0 - ts.0 <= qp.ttl_ms {
                    self.quarantine_released += 1;
                    self.recorder.record(t.tid.raw(), t.ts.0, AuditEvent::QuarantineReleased);
                    out.push(Element::Tuple(t));
                } else if t.ts < ts {
                    self.quarantine_dropped += 1;
                    self.recorder.record(
                        t.tid.raw(),
                        t.ts.0,
                        AuditEvent::QuarantineDropped { reason: QuarantineReason::PassedOver },
                    );
                } else {
                    self.quarantine.push_back(t);
                }
            }
        }
    }

    /// Canonical encoding of the analyzer's **policy table** alone — the
    /// pending sp-batch, the last emitted segment policy, and the
    /// governing policy timestamp — excluding every tuple-dependent
    /// field (stream clock, quarantine contents, degradation counters).
    ///
    /// This is the overload suite's leak-detection probe: load shedding
    /// and admission control may refuse *data tuples*, but must never
    /// shed, delay, or reorder security punctuations, so this encoding
    /// must be byte-identical between an overloaded run and an unloaded
    /// run over the same input. Comparing only policy state (rather than
    /// the full [`SpAnalyzer::snapshot`]) keeps the check valid even for
    /// admission-controlled runs, where fewer tuples reaching the
    /// analyzer legitimately changes the clock and quarantine.
    #[must_use]
    pub fn policy_table_bytes(&self) -> Vec<u8> {
        use bytes::BufMut;
        let mut buf = Vec::new();
        buf.put_u32(self.batch.len() as u32);
        for sp in &self.batch {
            sp.encode(&mut buf);
        }
        crate::checkpoint::encode_opt_segment(self.last_emitted.as_ref(), &mut buf);
        match self.current_ts {
            Some(ts) => {
                buf.put_u8(1);
                buf.put_u64(ts.0);
            }
            None => buf.put_u8(0),
        }
        buf
    }

    /// Serializes the analyzer's dynamic state: the pending sp-batch, the
    /// last emitted segment policy (the similar-policy-combining cache and
    /// incremental-mode base), the governing policy timestamp, the stream
    /// clock, the quarantine queue, and the degradation counters.
    /// Configuration — schema, catalog, server policy, incremental flag,
    /// hardening parameters — is not serialized; it is rebuilt from the
    /// plan on recovery.
    pub fn snapshot(&self, buf: &mut Vec<u8>) {
        use bytes::BufMut;
        buf.put_u32(self.batch.len() as u32);
        for sp in &self.batch {
            sp.encode(buf);
        }
        crate::checkpoint::encode_opt_segment(self.last_emitted.as_ref(), buf);
        match self.current_ts {
            Some(ts) => {
                buf.put_u8(1);
                buf.put_u64(ts.0);
            }
            None => buf.put_u8(0),
        }
        buf.put_u64(self.clock);
        buf.put_u32(self.quarantine.len() as u32);
        for t in &self.quarantine {
            sp_core::wire::encode_tuple(t, buf);
        }
        for counter in [
            self.sps_filtered,
            self.sps_merged,
            self.stale_sp_batches,
            self.quarantined,
            self.quarantine_released,
            self.quarantine_dropped,
        ] {
            buf.put_u64(counter);
        }
    }

    /// Restores state serialized by [`SpAnalyzer::snapshot`] into an
    /// analyzer built with the same configuration.
    ///
    /// # Errors
    ///
    /// Fails closed ([`crate::EngineError::CheckpointCorrupt`]) on any
    /// truncation, trailing bytes, or malformed field.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), crate::EngineError> {
        use crate::checkpoint as ckpt;
        use bytes::Buf;
        let mut slice = bytes;
        let buf = &mut slice;
        let mut apply = || -> Result<(), ckpt::CodecError> {
            ckpt::need(buf, 4, "analyzer batch length")?;
            let n = buf.get_u32() as usize;
            let mut batch = Vec::with_capacity(n);
            for _ in 0..n {
                batch.push(Arc::new(SecurityPunctuation::decode(buf)?));
            }
            self.batch = batch;
            self.last_emitted = ckpt::decode_opt_segment(buf)?;
            ckpt::need(buf, 1, "analyzer governing-ts flag")?;
            self.current_ts = match buf.get_u8() {
                0 => None,
                1 => {
                    ckpt::need(buf, 8, "analyzer governing ts")?;
                    Some(Timestamp(buf.get_u64()))
                }
                b => return Err(format!("bad governing-ts flag {b}")),
            };
            ckpt::need(buf, 8, "analyzer clock")?;
            self.clock = buf.get_u64();
            ckpt::need(buf, 4, "analyzer quarantine length")?;
            let n = buf.get_u32() as usize;
            let mut quarantine = VecDeque::with_capacity(n);
            for _ in 0..n {
                quarantine.push_back(Arc::new(
                    sp_core::wire::decode_tuple(buf).map_err(|e| e.to_string())?,
                ));
            }
            self.quarantine = quarantine;
            ckpt::need(buf, 6 * 8, "analyzer counters")?;
            self.sps_filtered = buf.get_u64();
            self.sps_merged = buf.get_u64();
            self.stale_sp_batches = buf.get_u64();
            self.quarantined = buf.get_u64();
            self.quarantine_released = buf.get_u64();
            self.quarantine_dropped = buf.get_u64();
            ckpt::done(buf)
        };
        apply().map_err(|e| ckpt::corrupt("analyzer", e))?;
        // Audit/span state is not checkpointed; replay repopulates the rings.
        self.recorder.clear();
        self.spans.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use sp_core::{
        DataDescription, RoleId, RoleSet, StreamId, Timestamp, Tuple, TupleId, Value, ValueType,
    };

    fn setup() -> SpAnalyzer {
        let mut catalog = RoleCatalog::new();
        catalog.register_synthetic_roles(8);
        SpAnalyzer::new(Schema::of("loc", &[("id", ValueType::Int)]), Arc::new(catalog))
    }

    fn sp(roles: &[u32], ts: u64) -> StreamElement {
        StreamElement::punctuation(SecurityPunctuation::grant_all(
            roles.iter().map(|&r| RoleId(r)).collect(),
            Timestamp(ts),
        ))
    }

    fn tup(tid: u64, ts: u64) -> StreamElement {
        StreamElement::tuple(Tuple::new(
            StreamId(0),
            TupleId(tid),
            Timestamp(ts),
            vec![Value::Int(tid as i64)],
        ))
    }

    fn push_all(a: &mut SpAnalyzer, elems: Vec<StreamElement>) -> Vec<Element> {
        let mut out = Vec::new();
        for e in elems {
            a.push(e, &mut out);
        }
        out
    }

    #[test]
    fn batches_same_timestamp_sps() {
        let mut a = setup();
        let out = push_all(&mut a, vec![sp(&[1], 5), sp(&[2], 5), tup(1, 6)]);
        assert_eq!(out.len(), 2);
        let seg = out[0].as_policy().unwrap();
        let p = seg.as_uniform().unwrap();
        assert!(p.allows(&RoleSet::from([1])) && p.allows(&RoleSet::from([2])));
    }

    #[test]
    fn different_timestamps_split_batches() {
        let mut a = setup();
        let out = push_all(&mut a, vec![sp(&[1], 5), sp(&[2], 6), tup(1, 7)]);
        // Two policies emitted; the second (newer) replaces the first
        // downstream via the override rule.
        let policies: Vec<_> = out.iter().filter_map(|e| e.as_policy()).collect();
        assert_eq!(policies.len(), 2);
        assert_eq!(policies[0].ts, Timestamp(5));
        assert_eq!(policies[1].ts, Timestamp(6));
    }

    #[test]
    fn foreign_stream_sps_are_dropped() {
        let mut a = setup();
        let foreign = StreamElement::punctuation(
            SecurityPunctuation::grant_all(RoleSet::from([1]), Timestamp(1))
                .with_ddp(DataDescription::stream("other")),
        );
        let out = push_all(&mut a, vec![foreign, tup(1, 2)]);
        assert_eq!(out.len(), 1, "only the tuple passes");
        assert_eq!(a.sps_filtered, 1);
    }

    #[test]
    fn identical_policies_are_merged() {
        let mut a = setup();
        let out = push_all(
            &mut a,
            vec![sp(&[1], 1), tup(1, 2), sp(&[1], 3), tup(2, 4), sp(&[2], 5), tup(3, 6)],
        );
        let policies = out.iter().filter(|e| e.as_policy().is_some()).count();
        assert_eq!(policies, 2, "repeat of {{r1}} suppressed");
        assert_eq!(a.sps_merged, 1);
    }

    #[test]
    fn server_policy_refines_by_intersection() {
        let mut a = setup();
        a.set_server_policy(Some(Policy::tuple_level(RoleSet::from([1]), Timestamp(0))));
        let out = push_all(&mut a, vec![sp(&[1, 2], 1), tup(1, 2)]);
        let p = out[0].as_policy().unwrap().policy_for(out[1].as_tuple().unwrap());
        assert!(p.allows(&RoleSet::from([1])));
        assert!(!p.allows(&RoleSet::from([2])), "server removed role 2");
    }

    #[test]
    fn immutable_sps_ignore_server_policy() {
        let mut a = setup();
        a.set_server_policy(Some(Policy::tuple_level(RoleSet::from([1]), Timestamp(0))));
        let immutable = StreamElement::punctuation(
            SecurityPunctuation::grant_all(RoleSet::from([1, 2]), Timestamp(1)).immutable(),
        );
        let out = push_all(&mut a, vec![immutable, tup(1, 2)]);
        let p = out[0].as_policy().unwrap().policy_for(out[1].as_tuple().unwrap());
        assert!(p.allows(&RoleSet::from([2])), "immutable sp wins");
    }

    #[test]
    fn scoped_sps_group_by_tuple_pattern() {
        let mut a = setup();
        let scoped = |lo: u64, hi: u64, role: u32, ts: u64| {
            StreamElement::punctuation(
                SecurityPunctuation::grant_all(RoleSet::from([role]), Timestamp(ts))
                    .with_ddp(DataDescription::tuple_range(lo, hi)),
            )
        };
        let out = push_all(
            &mut a,
            vec![scoped(0, 10, 1, 5), scoped(20, 30, 2, 5), tup(5, 6), tup(25, 7)],
        );
        let seg = out[0].as_policy().unwrap();
        assert_eq!(seg.entries().len(), 2);
        let p5 = seg.policy_for(out[1].as_tuple().unwrap());
        assert!(p5.allows(&RoleSet::from([1])) && !p5.allows(&RoleSet::from([2])));
        let p25 = seg.policy_for(out[2].as_tuple().unwrap());
        assert!(p25.allows(&RoleSet::from([2])) && !p25.allows(&RoleSet::from([1])));
    }

    #[test]
    fn incremental_mode_accumulates_grants_and_revocations() {
        let mut a = setup();
        a.set_incremental(true);
        let deny = |roles: &[u32], ts: u64| {
            StreamElement::punctuation(
                SecurityPunctuation::grant_all(
                    roles.iter().map(|&r| RoleId(r)).collect(),
                    Timestamp(ts),
                )
                .negative(),
            )
        };
        let out = push_all(
            &mut a,
            vec![
                sp(&[1], 1),
                tup(1, 2),
                sp(&[2], 3), // incremental: ADDS role 2
                tup(2, 4),
                deny(&[1], 5), // incremental: REVOKES role 1
                tup(3, 6),
            ],
        );
        let policies: Vec<_> = out.iter().filter_map(|e| e.as_policy()).collect();
        assert_eq!(policies.len(), 3);
        let p1 = policies[0].as_uniform().unwrap();
        assert!(p1.allows(&RoleSet::from([1])) && !p1.allows(&RoleSet::from([2])));
        let p2 = policies[1].as_uniform().unwrap();
        assert!(p2.allows(&RoleSet::from([1])) && p2.allows(&RoleSet::from([2])));
        let p3 = policies[2].as_uniform().unwrap();
        assert!(!p3.allows(&RoleSet::from([1])) && p3.allows(&RoleSet::from([2])));
    }

    #[test]
    fn absolute_mode_replaces_wholesale() {
        let mut a = setup();
        let out = push_all(&mut a, vec![sp(&[1], 1), tup(1, 2), sp(&[2], 3), tup(2, 4)]);
        let policies: Vec<_> = out.iter().filter_map(|e| e.as_policy()).collect();
        let p2 = policies[1].as_uniform().unwrap();
        assert!(!p2.allows(&RoleSet::from([1])), "override replaces the policy");
    }

    #[test]
    fn trailing_batch_flushes_on_demand() {
        let mut a = setup();
        let mut out = Vec::new();
        a.push(sp(&[3], 9), &mut out);
        assert!(out.is_empty(), "batch still open");
        a.flush(&mut out);
        assert_eq!(out.len(), 1);
    }

    fn hardened(ttl: u64, slack: u64, cap: usize) -> SpAnalyzer {
        let mut a = setup();
        a.harden(QuarantinePolicy { ttl_ms: ttl, slack_ms: slack, capacity: cap });
        a
    }

    #[test]
    fn hardened_quarantines_uncovered_tuples() {
        let mut a = hardened(10, 100, 16);
        // No policy yet: the tuple must not pass.
        let out = push_all(&mut a, vec![tup(1, 5)]);
        assert!(out.is_empty(), "unshielded tuple held back");
        assert_eq!(a.quarantined, 1);
        // Its sp arrives late but within slack: released after the policy.
        let out = push_all(&mut a, vec![sp(&[1], 5), tup(2, 6)]);
        let kinds: Vec<bool> = out.iter().map(Element::is_tuple).collect();
        assert_eq!(kinds, vec![false, true, true], "policy, then releases");
        assert_eq!(a.quarantine_released, 1);
        assert_eq!(a.quarantine_dropped, 0);
    }

    #[test]
    fn hardened_drops_quarantined_tuples_on_timeout() {
        let mut a = hardened(10, 20, 16);
        // Tuple at ts 5 with no policy; stream time then advances past
        // 5 + slack without its sp ever arriving.
        let out = push_all(&mut a, vec![tup(1, 5), tup(2, 40)]);
        assert!(out.is_empty(), "neither tuple has a policy");
        assert_eq!(a.quarantine_dropped, 1, "ts-5 tuple timed out");
        assert_eq!(a.quarantined, 2);
        // A much later policy governs only the survivor... which has also
        // timed out by the time ts 80 rolls around.
        let out = push_all(&mut a, vec![sp(&[1], 80), tup(3, 81)]);
        assert_eq!(out.iter().filter(|e| e.is_tuple()).count(), 1);
        assert_eq!(a.quarantine_dropped, 2);
    }

    #[test]
    fn hardened_caps_quarantine_capacity() {
        let mut a = hardened(10, 1_000, 2);
        let out = push_all(&mut a, vec![tup(1, 1), tup(2, 2), tup(3, 3)]);
        assert!(out.is_empty());
        assert_eq!(a.quarantine_dropped, 1, "oldest evicted at capacity");
        assert_eq!(a.quarantine.len(), 2);
    }

    #[test]
    fn hardened_rejects_stale_sp_batches() {
        let mut a = hardened(100, 100, 16);
        let out = push_all(&mut a, vec![sp(&[1, 2], 50), tup(1, 55)]);
        assert_eq!(out.len(), 2);
        // A delayed batch from ts 10 must not replace the ts-50 policy.
        let out = push_all(&mut a, vec![sp(&[3], 10), tup(2, 56)]);
        let policies = out.iter().filter(|e| e.as_policy().is_some()).count();
        assert_eq!(policies, 0, "stale batch discarded");
        assert_eq!(a.stale_sp_batches, 1);
        // The ts-56 tuple is still governed by the ts-50 policy.
        assert_eq!(out.iter().filter(|e| e.is_tuple()).count(), 1);
    }

    #[test]
    fn hardened_expires_policy_after_ttl() {
        let mut a = hardened(10, 5, 16);
        let out = push_all(&mut a, vec![sp(&[1], 10), tup(1, 15), tup(2, 30)]);
        // ts-15 governed (within ttl); ts-30 is 20 past the policy: held.
        assert_eq!(out.iter().filter(|e| e.is_tuple()).count(), 1);
        assert_eq!(a.quarantined, 1);
    }

    #[test]
    fn merge_suppressed_batch_still_refreshes_governing_ts() {
        let mut a = hardened(10, 100, 16);
        let out = push_all(&mut a, vec![sp(&[1], 10), tup(1, 11), sp(&[1], 30), tup(2, 31)]);
        // Second batch repeats {r1}: no policy re-emitted, but the ts-31
        // tuple is governed by the refreshed ts-30 policy.
        assert_eq!(out.iter().filter(|e| e.as_policy().is_some()).count(), 1);
        assert_eq!(out.iter().filter(|e| e.is_tuple()).count(), 2);
        assert_eq!(a.sps_merged, 1);
        assert_eq!(a.quarantined, 0);
    }

    #[test]
    fn degradation_reports_all_counters() {
        let mut a = hardened(10, 20, 16);
        let _ = push_all(&mut a, vec![tup(1, 5), tup(2, 40), sp(&[1], 50), tup(3, 51)]);
        let d = a.degradation();
        assert_eq!(d.quarantined, 2);
        assert_eq!(d.quarantine_dropped, 2);
        assert_eq!(d.total_dropped(), 2);
    }
}
