//! The SP Analyzer (§II-B, Fig. 1).
//!
//! The analyzer sits between arriving raw streams and the query plans. It
//! (1) assembles consecutive same-timestamp punctuations into sp-batches and
//! resolves them — patterns evaluated against the role catalog and the
//! stream's schema — into [`SegmentPolicy`] elements; (2) combines the
//! data-provider policies with **server-specified policies** using
//! `intersect()` semantics, so the server may refine but never broaden
//! access (immutable sps opt out); and (3) *combines sps with similar
//! policies*: a segment policy identical to the previous one is not
//! re-emitted, saving downstream sp processing.

use std::sync::Arc;

use sp_core::{
    combine_batch, Policy, RoleCatalog, Schema, SecurityPunctuation, StreamElement,
};

use crate::element::{Element, PolicyEntry, SegmentPolicy};

/// Per-stream punctuation analyzer.
#[derive(Debug)]
pub struct SpAnalyzer {
    schema: Arc<Schema>,
    catalog: Arc<RoleCatalog>,
    /// Server-side policy applied (by intersection) to every mutable
    /// data-provider policy on this stream.
    server_policy: Option<Policy>,
    batch: Vec<Arc<SecurityPunctuation>>,
    last_emitted: Option<Arc<SegmentPolicy>>,
    /// Incremental-policy mode (§IX future work): an sp-batch *modifies*
    /// the previous policy (grants add roles, negative sps revoke them)
    /// instead of replacing it wholesale. Applies to unscoped
    /// (whole-segment) batches; scoped batches always replace.
    incremental: bool,
    /// Punctuations dropped because their DDP does not cover this stream.
    pub sps_filtered: u64,
    /// Segment policies suppressed because they repeated the previous one.
    pub sps_merged: u64,
}

impl SpAnalyzer {
    /// An analyzer for one registered stream.
    #[must_use]
    pub fn new(schema: Arc<Schema>, catalog: Arc<RoleCatalog>) -> Self {
        Self {
            schema,
            catalog,
            server_policy: None,
            batch: Vec::new(),
            last_emitted: None,
            incremental: false,
            sps_filtered: 0,
            sps_merged: 0,
        }
    }

    /// Enables or disables incremental-policy mode (§IX future work):
    /// subsequent unscoped sp-batches apply on top of the previous policy
    /// — a positive sp adds its roles, a negative sp revokes them —
    /// instead of starting from denial-by-default.
    pub fn set_incremental(&mut self, incremental: bool) {
        self.incremental = incremental;
    }

    /// Installs a server-specified policy (§II-B: organizations may refine
    /// data-provider policies, e.g. a hospital adding constraints on top of
    /// a patient's own).
    pub fn set_server_policy(&mut self, policy: Option<Policy>) {
        self.server_policy = policy;
        // The cached last emission no longer reflects the combination.
        self.last_emitted = None;
    }

    /// The stream schema this analyzer serves.
    #[must_use]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Processes one raw stream element, appending engine elements to `out`.
    pub fn push(&mut self, elem: StreamElement, out: &mut Vec<Element>) {
        match elem {
            StreamElement::Punctuation(sp) => {
                if !sp.matches_stream(self.schema.name()) {
                    self.sps_filtered += 1;
                    return;
                }
                if let Some(first) = self.batch.first() {
                    if sp.ts != first.ts {
                        self.flush(out);
                    }
                }
                self.batch.push(sp);
            }
            StreamElement::Tuple(tuple) => {
                self.flush(out);
                out.push(Element::Tuple(tuple));
            }
        }
    }

    /// Resolves and emits the pending batch, if any.
    pub fn flush(&mut self, out: &mut Vec<Element>) {
        if self.batch.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.batch);
        let ts = batch[0].ts;
        // Group the batch by tuple scope: sps with identical tuple patterns
        // combine into one policy entry.
        let mut groups: Vec<(&str, Vec<Arc<SecurityPunctuation>>)> = Vec::new();
        for sp in &batch {
            let scope = sp.ddp.tuple.source();
            match groups.iter_mut().find(|(s, _)| *s == scope) {
                Some((_, list)) => list.push(sp.clone()),
                None => groups.push((scope, vec![sp.clone()])),
            }
        }
        // Incremental mode: a single unscoped batch modifies the previous
        // uniform policy instead of replacing it.
        let incremental_base = if self.incremental && groups.len() == 1 && groups[0].0 == "*" {
            self.last_emitted
                .as_ref()
                .and_then(|seg| seg.as_uniform())
                .map(|p| (**p).clone())
        } else {
            None
        };
        let entries: Vec<PolicyEntry> = groups
            .into_iter()
            .map(|(_, sps)| {
                let scope = sps[0].ddp.tuple.clone();
                let mut policy = match &incremental_base {
                    Some(base) => {
                        let mut p = base.clone();
                        p.ts = ts;
                        for sp in &sps {
                            sp.apply_to(&mut p, &self.catalog, &self.schema);
                        }
                        p
                    }
                    None => combine_batch(&sps, &self.catalog, &self.schema),
                };
                if let Some(server) = &self.server_policy {
                    // `Policy::intersect` honours the immutable flag.
                    policy = policy.intersect(server);
                }
                PolicyEntry { scope, policy: Arc::new(policy) }
            })
            .collect();
        let seg = Arc::new(SegmentPolicy::new(entries, ts));
        // Similar-policy combining: skip emission when the authorizations
        // are unchanged (timestamps aside).
        if self.last_emitted.as_ref().is_some_and(|prev| {
            prev.entries().len() == seg.entries().len()
                && prev.entries().iter().zip(seg.entries()).all(|(a, b)| {
                    a.scope == b.scope && a.policy.same_authorizations(&b.policy)
                })
        }) {
            self.sps_merged += 1;
            return;
        }
        self.last_emitted = Some(seg.clone());
        out.push(Element::Policy(seg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_core::{
        DataDescription, RoleId, RoleSet, StreamId, Timestamp, Tuple, TupleId, Value, ValueType,
    };

    fn setup() -> SpAnalyzer {
        let mut catalog = RoleCatalog::new();
        catalog.register_synthetic_roles(8);
        SpAnalyzer::new(
            Schema::of("loc", &[("id", ValueType::Int)]),
            Arc::new(catalog),
        )
    }

    fn sp(roles: &[u32], ts: u64) -> StreamElement {
        StreamElement::punctuation(SecurityPunctuation::grant_all(
            roles.iter().map(|&r| RoleId(r)).collect(),
            Timestamp(ts),
        ))
    }

    fn tup(tid: u64, ts: u64) -> StreamElement {
        StreamElement::tuple(Tuple::new(
            StreamId(0),
            TupleId(tid),
            Timestamp(ts),
            vec![Value::Int(tid as i64)],
        ))
    }

    fn push_all(a: &mut SpAnalyzer, elems: Vec<StreamElement>) -> Vec<Element> {
        let mut out = Vec::new();
        for e in elems {
            a.push(e, &mut out);
        }
        out
    }

    #[test]
    fn batches_same_timestamp_sps() {
        let mut a = setup();
        let out = push_all(&mut a, vec![sp(&[1], 5), sp(&[2], 5), tup(1, 6)]);
        assert_eq!(out.len(), 2);
        let seg = out[0].as_policy().unwrap();
        let p = seg.as_uniform().unwrap();
        assert!(p.allows(&RoleSet::from([1])) && p.allows(&RoleSet::from([2])));
    }

    #[test]
    fn different_timestamps_split_batches() {
        let mut a = setup();
        let out = push_all(&mut a, vec![sp(&[1], 5), sp(&[2], 6), tup(1, 7)]);
        // Two policies emitted; the second (newer) replaces the first
        // downstream via the override rule.
        let policies: Vec<_> = out.iter().filter_map(|e| e.as_policy()).collect();
        assert_eq!(policies.len(), 2);
        assert_eq!(policies[0].ts, Timestamp(5));
        assert_eq!(policies[1].ts, Timestamp(6));
    }

    #[test]
    fn foreign_stream_sps_are_dropped() {
        let mut a = setup();
        let foreign = StreamElement::punctuation(
            SecurityPunctuation::grant_all(RoleSet::from([1]), Timestamp(1))
                .with_ddp(DataDescription::stream("other")),
        );
        let out = push_all(&mut a, vec![foreign, tup(1, 2)]);
        assert_eq!(out.len(), 1, "only the tuple passes");
        assert_eq!(a.sps_filtered, 1);
    }

    #[test]
    fn identical_policies_are_merged() {
        let mut a = setup();
        let out = push_all(
            &mut a,
            vec![sp(&[1], 1), tup(1, 2), sp(&[1], 3), tup(2, 4), sp(&[2], 5), tup(3, 6)],
        );
        let policies = out.iter().filter(|e| e.as_policy().is_some()).count();
        assert_eq!(policies, 2, "repeat of {{r1}} suppressed");
        assert_eq!(a.sps_merged, 1);
    }

    #[test]
    fn server_policy_refines_by_intersection() {
        let mut a = setup();
        a.set_server_policy(Some(Policy::tuple_level(RoleSet::from([1]), Timestamp(0))));
        let out = push_all(&mut a, vec![sp(&[1, 2], 1), tup(1, 2)]);
        let p = out[0].as_policy().unwrap().policy_for(
            out[1].as_tuple().unwrap(),
        );
        assert!(p.allows(&RoleSet::from([1])));
        assert!(!p.allows(&RoleSet::from([2])), "server removed role 2");
    }

    #[test]
    fn immutable_sps_ignore_server_policy() {
        let mut a = setup();
        a.set_server_policy(Some(Policy::tuple_level(RoleSet::from([1]), Timestamp(0))));
        let immutable = StreamElement::punctuation(
            SecurityPunctuation::grant_all(RoleSet::from([1, 2]), Timestamp(1)).immutable(),
        );
        let out = push_all(&mut a, vec![immutable, tup(1, 2)]);
        let p = out[0].as_policy().unwrap().policy_for(out[1].as_tuple().unwrap());
        assert!(p.allows(&RoleSet::from([2])), "immutable sp wins");
    }

    #[test]
    fn scoped_sps_group_by_tuple_pattern() {
        let mut a = setup();
        let scoped = |lo: u64, hi: u64, role: u32, ts: u64| {
            StreamElement::punctuation(
                SecurityPunctuation::grant_all(RoleSet::from([role]), Timestamp(ts))
                    .with_ddp(DataDescription::tuple_range(lo, hi)),
            )
        };
        let out = push_all(
            &mut a,
            vec![scoped(0, 10, 1, 5), scoped(20, 30, 2, 5), tup(5, 6), tup(25, 7)],
        );
        let seg = out[0].as_policy().unwrap();
        assert_eq!(seg.entries().len(), 2);
        let p5 = seg.policy_for(out[1].as_tuple().unwrap());
        assert!(p5.allows(&RoleSet::from([1])) && !p5.allows(&RoleSet::from([2])));
        let p25 = seg.policy_for(out[2].as_tuple().unwrap());
        assert!(p25.allows(&RoleSet::from([2])) && !p25.allows(&RoleSet::from([1])));
    }

    #[test]
    fn incremental_mode_accumulates_grants_and_revocations() {
        let mut a = setup();
        a.set_incremental(true);
        let deny = |roles: &[u32], ts: u64| {
            StreamElement::punctuation(
                SecurityPunctuation::grant_all(
                    roles.iter().map(|&r| RoleId(r)).collect(),
                    Timestamp(ts),
                )
                .negative(),
            )
        };
        let out = push_all(
            &mut a,
            vec![
                sp(&[1], 1),
                tup(1, 2),
                sp(&[2], 3), // incremental: ADDS role 2
                tup(2, 4),
                deny(&[1], 5), // incremental: REVOKES role 1
                tup(3, 6),
            ],
        );
        let policies: Vec<_> = out.iter().filter_map(|e| e.as_policy()).collect();
        assert_eq!(policies.len(), 3);
        let p1 = policies[0].as_uniform().unwrap();
        assert!(p1.allows(&RoleSet::from([1])) && !p1.allows(&RoleSet::from([2])));
        let p2 = policies[1].as_uniform().unwrap();
        assert!(p2.allows(&RoleSet::from([1])) && p2.allows(&RoleSet::from([2])));
        let p3 = policies[2].as_uniform().unwrap();
        assert!(!p3.allows(&RoleSet::from([1])) && p3.allows(&RoleSet::from([2])));
    }

    #[test]
    fn absolute_mode_replaces_wholesale() {
        let mut a = setup();
        let out = push_all(&mut a, vec![sp(&[1], 1), tup(1, 2), sp(&[2], 3), tup(2, 4)]);
        let policies: Vec<_> = out.iter().filter_map(|e| e.as_policy()).collect();
        let p2 = policies[1].as_uniform().unwrap();
        assert!(!p2.allows(&RoleSet::from([1])), "override replaces the policy");
    }

    #[test]
    fn trailing_batch_flushes_on_demand() {
        let mut a = setup();
        let mut out = Vec::new();
        a.push(sp(&[3], 9), &mut out);
        assert!(out.is_empty(), "batch still open");
        a.flush(&mut out);
        assert_eq!(out.len(), 1);
    }
}
